//! # cats — Cross-platform Anti-fraud System (ICDE 2019 reproduction)
//!
//! Umbrella crate re-exporting every subsystem of the CATS reproduction.
//! See the workspace `README.md` for an architecture overview and
//! `DESIGN.md` for the system inventory and experiment index.
//!
//! ```
//! use cats::prelude::*;
//! ```

pub use cats_analysis as analysis;
pub use cats_collector as collector;
pub use cats_core as core;
pub use cats_embedding as embedding;
pub use cats_io as io;
pub use cats_ml as ml;
pub use cats_obs as obs;
pub use cats_par as par;
pub use cats_platform as platform;
pub use cats_sentiment as sentiment;
pub use cats_serve as serve;
pub use cats_stream as stream;
pub use cats_text as text;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use cats_par::Parallelism;
    pub use cats_text::{Lexicon, Segmenter, Vocab, WhitespaceSegmenter};
}
