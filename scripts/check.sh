#!/usr/bin/env bash
# Fast gate: style, lints, and the test suite — no release build, no
# benches. CI's quick job runs exactly this; see scripts/verify.sh for
# the full gate.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_TERM_COLOR=always
# --locked once a lockfile exists; without one (fresh checkout, offline
# image) cargo would hard-fail instead of resolving.
LOCKED=()
[ -f Cargo.lock ] && LOCKED=(--locked)

cargo fmt --all -- --check
cargo clippy --workspace --all-targets "${LOCKED[@]}" -- -D warnings
cargo test -q "${LOCKED[@]}"
