#!/usr/bin/env bash
# Full local verification, in order of increasing cost. CI's verify job
# runs exactly this; a clean exit here means the tree is mergeable.
# scripts/check.sh is the fast subset (fmt + clippy + tests).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_TERM_COLOR=always
LOCKED=()
[ -f Cargo.lock ] && LOCKED=(--locked)

# Every bench invocation goes through bench(): its output is teed to
# target/bench-logs/<bin>.log (uploaded by CI as an artifact when the
# job fails) and its wall time printed, so a slow phase is attributable
# from the job summary alone.
LOG_DIR=target/bench-logs
mkdir -p "$LOG_DIR"

bench() {
  local bin="$1"
  shift
  local t0 t1
  t0=$(date +%s)
  cargo run --release "${LOCKED[@]}" -p cats-bench --bin "$bin" -- "$@" \
    2>&1 | tee "$LOG_DIR/$bin.log"
  t1=$(date +%s)
  echo "verify: $bin wall time $((t1 - t0))s"
}

scripts/check.sh
cargo build --release "${LOCKED[@]}"
# Smoke-run the full-pipeline scaling sweep at a tiny scale; exercises
# every parallel stage end-to-end and regenerates BENCH_scaling.json
# plus the per-run profile artifact PROFILE_scaling.json.
bench exp_scaling --scale 0.002
# Serving benchmark: sustained load, hot-swap under load, overload
# probe. Regenerates BENCH_serve.json and asserts the serving
# invariants (zero drops, 429s under overload) internally.
bench exp_serve --scale 0.01
# Robustness soak: deterministic chaos injection (slow-loris clients,
# torn snapshot rewrites under the hot-swap watcher, worker panics,
# kill/resume training, kill-and-restart from the last-good mirror).
# Regenerates BENCH_soak.json and asserts the DESIGN.md §10 invariants
# (zero lost/torn responses, bounded respawns, bit-identical resume)
# internally; bench_gate.sh re-checks them off the JSON.
bench exp_soak --scale 0.004
# Sharded cluster: 4 shard child processes behind the consistent-hash
# router; measures 1->4 shard scaling against a machine-aware floor,
# then SIGKILLs a shard mid-load, requires ejection -> respawn ->
# re-admission and a rolling swap with zero lost responses and zero
# version-skewed merges. Regenerates BENCH_cluster.json.
bench exp_cluster --scale 0.004
# Streaming velocity lane (DESIGN.md §13): replays the platform as a
# temporal comment stream through the cats-stream sliding windows,
# asserting zero in-skew drops, bit-identical verdicts at 1/2/8
# threads, a bounded peak footprint on a 2x trace, and the catch rate
# vs the batch oracle. Regenerates BENCH_stream.json.
bench exp_stream --scale 0.004
# Adversarial drift survival (DESIGN.md §15): sweeps the epoch-indexed
# drift process against a frozen and an adaptive lane, requires the
# monitor to fire before the frozen lane decays, the closed
# label-lag -> retrain -> validate -> hot-swap loop to recover, a
# poisoned retrain to be rejected, and zero lost responses while
# drift-triggered rewrites hot-swap under live HTTP load. Regenerates
# BENCH_drift.json.
bench exp_drift --scale 0.004
# Regression gate: fresh BENCH_*.json vs results/baselines/.
scripts/bench_gate.sh
