#!/usr/bin/env bash
# Full local verification, in order of increasing cost. CI runs exactly
# this; a clean exit here means the tree is mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace -- -D warnings
# Smoke-run the full-pipeline scaling sweep at a tiny scale; exercises
# every parallel stage end-to-end and regenerates BENCH_scaling.json.
cargo run --release -p cats-bench --bin exp_scaling -- --scale 0.002
