#!/usr/bin/env bash
# Full local verification, in order of increasing cost. CI runs exactly
# this; a clean exit here means the tree is mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy -- -D warnings
