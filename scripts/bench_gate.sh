#!/usr/bin/env bash
# Bench regression gate: compares freshly generated BENCH_*.json results
# against the committed baselines in results/baselines/ and exits
# nonzero on a throughput regression beyond the tolerance.
#
#   scripts/bench_gate.sh            compare; exit 1 on regression
#   scripts/bench_gate.sh --update   refresh the baselines from the
#                                    fresh results (commit the diff)
#
# Policy (see EXPERIMENTS.md "Bench gate"):
#   * throughput (serve sustained_rps, scaling items/s) is a HARD gate:
#     measured must stay >= TOLERANCE x baseline. The committed
#     baselines are conservative floors, far below what any developer
#     machine produces, so the gate trips on real regressions (or
#     doctored results), never on runner noise.
#   * latency percentiles WARN only — absolute latency varies with
#     hardware too much for a portable hard gate.
#   * serving-correctness invariants (zero dropped requests under
#     hot-swap, 429s observed under overload, zero socket failures) are
#     hard-gated: they are hardware-independent.
#   * streaming invariants (bit-identical verdicts across thread counts,
#     bounded window memory, zero in-skew sheds) and the virtual-clock
#     detection metrics (catch rate vs the batch oracle, latency in
#     virtual ms — fixed by the trace seed, not the machine) are
#     hard-gated; only the sustained ingest rate uses a baseline floor.
#   * a missing baseline bootstraps: the fresh result is copied into
#     place and the gate passes (commit the new baseline).
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE=0.8 # measured must stay >= TOLERANCE x baseline
BASELINES=results/baselines
FAILURES=0

# First numeric value of `"key": N` in a JSON file (empty if absent —
# callers supply defaults, so a malformed file fails the gate loudly
# instead of aborting the script mid-parse).
num() {
  { grep -o "\"$2\": *-*[0-9.][0-9.]*" "$1" | head -n1 | sed 's/.*: *//'; } || true
}

# Smallest "total_s" across a scaling sweep's rows.
min_total() {
  { grep -o '"total_s": *[0-9.][0-9.]*' "$1" | sed 's/.*: *//' \
    | awk 'NR==1 || $1 < m { m = $1 } END { print m }'; } || true
}

# gte <a> <b>: succeeds when a >= b (floats).
gte() {
  awk -v a="$1" -v b="$2" 'BEGIN { exit !(a + 0 >= b + 0) }'
}

fail() {
  echo "bench-gate: FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

# hard_floor <label> <measured> <baseline>: hard-gates measured against
# TOLERANCE x baseline.
hard_floor() {
  local label="$1" measured="$2" baseline="$3"
  local floor
  floor=$(awk -v b="$baseline" -v t="$TOLERANCE" 'BEGIN { printf "%.4f", b * t }')
  if gte "$measured" "$floor"; then
    echo "bench-gate: ok: $label $measured >= $floor (${TOLERANCE}x baseline $baseline)"
  else
    fail "$label regressed: $measured < $floor (${TOLERANCE}x baseline $baseline)"
  fi
}

# ensure_baseline <fresh> <baseline>: bootstraps a missing baseline.
# Returns 1 when the caller should skip comparison this run.
ensure_baseline() {
  local fresh="$1" baseline="$2"
  if [ ! -f "$baseline" ]; then
    mkdir -p "$(dirname "$baseline")"
    cp "$fresh" "$baseline"
    echo "bench-gate: bootstrapped $baseline from $fresh (commit it)"
    return 1
  fi
}

if [ "${1:-}" = "--update" ]; then
  mkdir -p "$BASELINES"
  for f in BENCH_serve.json BENCH_scaling.json BENCH_cluster.json BENCH_stream.json BENCH_drift.json; do
    [ -f "$f" ] && cp "$f" "$BASELINES/$f" && echo "bench-gate: updated $BASELINES/$f"
  done
  exit 0
fi

# --- serving benchmark -------------------------------------------------
if [ -f BENCH_serve.json ]; then
  # Hardware-independent correctness invariants, straight off the fresh
  # run: hot-swap may drop nothing, overload must surface as 429s.
  dropped=$(num BENCH_serve.json dropped)
  rejected=$(num BENCH_serve.json rejected_429)
  failed=$(num BENCH_serve.json failed)
  [ "${dropped:-1}" = "0" ] || fail "hot-swap dropped $dropped requests (want 0)"
  gte "${rejected:-0}" 1 || fail "overload produced no 429 rejections"
  [ "${failed:-1}" = "0" ] || fail "overload broke $failed sockets (want 0)"

  if ensure_baseline BENCH_serve.json "$BASELINES/BENCH_serve.json"; then
    hard_floor "serve sustained_rps" \
      "$(num BENCH_serve.json sustained_rps)" \
      "$(num "$BASELINES/BENCH_serve.json" sustained_rps)"
    # Latency: warn-only.
    p95=$(num BENCH_serve.json p95_ms)
    base_p95=$(num "$BASELINES/BENCH_serve.json" p95_ms)
    if ! gte "$(awk -v b="$base_p95" 'BEGIN { print b * 4 }')" "$p95"; then
      echo "bench-gate: warn: serve p95 ${p95}ms > 4x baseline ${base_p95}ms (not gated)"
    fi
  fi
else
  fail "BENCH_serve.json missing (run: cargo run --release -p cats-bench --bin exp_serve)"
fi

# --- robustness soak ---------------------------------------------------
# Pure hardware-independent invariants (DESIGN.md §10); no baseline —
# the fresh run must satisfy them outright.
if [ -f BENCH_soak.json ]; then
  lost=$(num BENCH_soak.json lost)
  torn=$(num BENCH_soak.json torn)
  resume=$(num BENCH_soak.json bit_identical)
  respawn=$(num BENCH_soak.json respawn_bound_ok)
  restart=$(num BENCH_soak.json restart_ok)
  [ "${lost:-1}" = "0" ] || fail "chaos soak lost ${lost:-?} responses (want 0)"
  [ "${torn:-1}" = "0" ] || fail "chaos soak returned ${torn:-?} torn responses (want 0)"
  [ "${resume:-0}" = "1" ] || fail "kill-resumed training not bit-identical to uninterrupted"
  [ "${respawn:-0}" = "1" ] || fail "worker respawns unmatched or beyond the injected panic budget"
  [ "${restart:-0}" = "1" ] || fail "restart from the last-good mirror failed"
  if [ "${lost:-1}${torn:-1}${resume:-0}${respawn:-0}${restart:-0}" = "00111" ]; then
    echo "bench-gate: ok: soak invariants (0 lost, 0 torn, resume bit-identical, respawns bounded, restart ok)"
  fi
else
  fail "BENCH_soak.json missing (run: cargo run --release -p cats-bench --bin exp_soak)"
fi

# --- sharded cluster ---------------------------------------------------
# Hardware-independent chaos invariants are hard gates; the 1->N shard
# scaling check is computed in-bench against a machine-aware floor
# (0.7 x threads, capped at 2.5x) and surfaced here as scaling_ok.
if [ -f BENCH_cluster.json ]; then
  lost=$(num BENCH_cluster.json lost)
  skew=$(num BENCH_cluster.json skew_merges)
  ejections=$(num BENCH_cluster.json ejections)
  readmissions=$(num BENCH_cluster.json readmissions)
  scaling_ok=$(num BENCH_cluster.json scaling_ok)
  [ "${lost:-1}" = "0" ] || fail "cluster chaos lost ${lost:-?} responses (want 0)"
  [ "${skew:-1}" = "0" ] || fail "cluster produced ${skew:-?} version-skewed merges (want 0)"
  gte "${ejections:-0}" 1 || fail "killed shard was never ejected"
  gte "${readmissions:-0}" 1 || fail "respawned shard was never re-admitted"
  [ "${scaling_ok:-0}" = "1" ] || fail "1->N shard scaling below the machine-aware floor"
  if [ "${lost:-1}${skew:-1}${scaling_ok:-0}" = "001" ]; then
    echo "bench-gate: ok: cluster invariants (0 lost, 0 skew, ejected+readmitted, scaling floor met)"
  fi
  if ensure_baseline BENCH_cluster.json "$BASELINES/BENCH_cluster.json"; then
    hard_floor "cluster rps_1shard" \
      "$(num BENCH_cluster.json rps_1shard)" \
      "$(num "$BASELINES/BENCH_cluster.json" rps_1shard)"
  fi
else
  fail "BENCH_cluster.json missing (run: cargo run --release -p cats-bench --bin exp_cluster)"
fi

# --- streaming velocity ------------------------------------------------
# Determinism, the memory bound, in-skew delivery and the virtual-clock
# detection metrics are hardware-independent (latency is measured in
# *virtual* ms, fixed by the trace seed) — all hard gates. Only the
# sustained ingest rate depends on the machine and goes through the
# baseline floor.
if [ -f BENCH_stream.json ]; then
  deterministic=$(num BENCH_stream.json deterministic)
  mem_ok=$(num BENCH_stream.json memory_bounded)
  late=$(num BENCH_stream.json late_dropped)
  catch=$(num BENCH_stream.json catch_rate_vs_oracle)
  lat_p95=$(num BENCH_stream.json latency_p95_virtual_ms)
  [ "${deterministic:-0}" = "1" ] \
    || fail "stream verdicts not bit-identical across 1/2/8 threads + rerun"
  [ "${mem_ok:-0}" = "1" ] \
    || fail "stream peak footprint grew with trace length (memory bound broken)"
  [ "${late:-1}" = "0" ] || fail "stream shed ${late:-?} in-skew events (want 0)"
  gte "${catch:-0}" 0.5 || fail "stream catch rate vs batch oracle ${catch:-?} (want >=0.5)"
  gte 60000 "${lat_p95:-999999}" \
    || fail "stream detection p95 ${lat_p95:-?} virtual ms (ceiling 60000)"
  if [ "${deterministic:-0}${mem_ok:-0}${late:-1}" = "110" ] \
    && gte "${catch:-0}" 0.5 && gte 60000 "${lat_p95:-999999}"; then
    echo "bench-gate: ok: stream invariants (deterministic, memory bounded, 0 shed, catch ${catch}, p95 ${lat_p95} virtual ms)"
  fi
  if ensure_baseline BENCH_stream.json "$BASELINES/BENCH_stream.json"; then
    hard_floor "stream sustained_comments_per_s" \
      "$(num BENCH_stream.json sustained_comments_per_s)" \
      "$(num "$BASELINES/BENCH_stream.json" sustained_comments_per_s)"
  fi
else
  fail "BENCH_stream.json missing (run: cargo run --release -p cats-bench --bin exp_stream)"
fi

# --- adversarial drift survival ----------------------------------------
# The closed monitor -> label-lag -> retrain -> hot-swap loop (DESIGN.md
# §15). Everything here is pinned by the bench seed, not the machine:
# the monitor must fire before the frozen lane decays, the adaptive lane
# must end ahead of the frozen one, a poisoned (label-flipped) retrain
# must be rejected by the promotion guard, and drift-triggered snapshot
# rewrites under live HTTP load must lose zero responses — all hard
# gates. The absolute adaptive tail F1 additionally holds a baseline
# floor so the recovery cannot quietly erode while the margin survives.
if [ -f BENCH_drift.json ]; then
  fired=$(num BENCH_drift.json drift_monitor_fired_before_floor)
  recovery=$(num BENCH_drift.json drift_recovery_ok)
  promotions=$(num BENCH_drift.json drift_promotions)
  poisoned=$(num BENCH_drift.json drift_poisoned_rejected)
  zero_loss=$(num BENCH_drift.json drift_zero_loss)
  versions=$(num BENCH_drift.json drift_versions_observed)
  [ "${fired:-0}" = "1" ] \
    || fail "drift monitor fired after the frozen lane had already decayed"
  [ "${recovery:-0}" = "1" ] \
    || fail "adaptive lane did not recover past the frozen lane's decay"
  gte "${promotions:-0}" 1 || fail "closed loop never promoted a retrained model"
  [ "${poisoned:-0}" = "1" ] || fail "poisoned retrain candidate was not rejected"
  [ "${zero_loss:-0}" = "1" ] \
    || fail "drift-triggered hot-swaps lost $(num BENCH_drift.json drift_http_lost) responses (want 0)"
  gte "${versions:-0}" 2 || fail "HTTP load never observed a promoted model version"
  if [ "${fired:-0}${recovery:-0}${poisoned:-0}${zero_loss:-0}" = "1111" ]; then
    echo "bench-gate: ok: drift invariants (fired before decay, recovered, poisoned rejected, 0 lost)"
  fi
  if ensure_baseline BENCH_drift.json "$BASELINES/BENCH_drift.json"; then
    hard_floor "drift adaptive_tail_f1" \
      "$(num BENCH_drift.json adaptive_tail_f1)" \
      "$(num "$BASELINES/BENCH_drift.json" adaptive_tail_f1)"
  fi
else
  fail "BENCH_drift.json missing (run: cargo run --release -p cats-bench --bin exp_drift)"
fi

# --- scaling benchmark -------------------------------------------------
if [ -f BENCH_scaling.json ]; then
  # Model-format invariants (hardware-independent ratios, gated
  # outright): CATS-IO2 snapshots must load >=5x faster and score
  # batches >=2x faster than the JSON/recursive baseline, stay smaller
  # than JSON, and the flat scorer must agree with the recursive walk
  # bit-for-bit.
  load_speedup=$(num BENCH_scaling.json load_speedup)
  score_speedup=$(num BENCH_scaling.json score_speedup)
  size_ratio=$(num BENCH_scaling.json size_ratio)
  bit_identical=$(num BENCH_scaling.json score_bit_identical)
  gte "${load_speedup:-0}" 5 \
    || fail "IO2 snapshot load only ${load_speedup:-?}x faster than JSON (want >=5x)"
  gte "${score_speedup:-0}" 2 \
    || fail "flat batch scoring only ${score_speedup:-?}x faster than recursive (want >=2x)"
  gte "${size_ratio:-0}" 1.2 \
    || fail "IO2 snapshot not smaller than JSON (ratio ${size_ratio:-?}, want >=1.2x)"
  [ "${bit_identical:-0}" = "1" ] || fail "flat scoring diverged from the recursive walk"
  if [ "${bit_identical:-0}" = "1" ] && gte "${load_speedup:-0}" 5 \
    && gte "${score_speedup:-0}" 2 && gte "${size_ratio:-0}" 1.2; then
    echo "bench-gate: ok: model format (load ${load_speedup}x, score ${score_speedup}x, size ${size_ratio}x, bit-identical)"
  fi
  if ensure_baseline BENCH_scaling.json "$BASELINES/BENCH_scaling.json"; then
    items=$(num BENCH_scaling.json items)
    best=$(min_total BENCH_scaling.json)
    base_items=$(num "$BASELINES/BENCH_scaling.json" items)
    base_best=$(min_total "$BASELINES/BENCH_scaling.json")
    measured=$(awk -v i="$items" -v t="$best" 'BEGIN { printf "%.4f", i / t }')
    baseline=$(awk -v i="$base_items" -v t="$base_best" 'BEGIN { printf "%.4f", i / t }')
    hard_floor "scaling items/s" "$measured" "$baseline"
    # Model load + batch-scoring throughput floors vs the committed
    # baseline (hardware-dependent, so TOLERANCE applies). An old
    # baseline without the model_format block skips quietly until
    # refreshed with --update.
    base_loads=$(num "$BASELINES/BENCH_scaling.json" io2_loads_per_s)
    base_flat=$(num "$BASELINES/BENCH_scaling.json" score_flat_items_s)
    if [ -n "${base_loads:-}" ]; then
      hard_floor "scaling io2_loads_per_s" \
        "$(num BENCH_scaling.json io2_loads_per_s)" "$base_loads"
    else
      echo "bench-gate: skip: baseline predates model_format (refresh with --update)"
    fi
    if [ -n "${base_flat:-}" ]; then
      hard_floor "scaling score_flat_items_s" \
        "$(num BENCH_scaling.json score_flat_items_s)" "$base_flat"
    fi
  fi
else
  echo "bench-gate: skip: BENCH_scaling.json missing (exp_scaling not run)"
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "bench-gate: $FAILURES failure(s)" >&2
  exit 1
fi
echo "bench-gate: all gates passed"
