//! Measurement study: after detecting frauds on a crawled platform, run
//! the paper's §V analyses — word frequencies, buyer reliability, client
//! sources, and risky-user-pair mining — from the public data alone.
//!
//! ```sh
//! cargo run --release --example measurement_study
//! ```

use cats::analysis::orders::client_distribution;
use cats::analysis::users::{mine_risky_pairs, share_below, unique_buyers};
use cats::analysis::WordFrequency;
use cats::collector::{CollectedItem, Collector, CollectorConfig, PublicSite, SiteConfig};
use cats::core::semantic::SemanticConfig;
use cats::core::{CatsPipeline, Detector, DetectorConfig, ItemComments, SemanticAnalyzer};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::platform::comment_model::{generate_comment, CommentStyle};
use cats::platform::datasets;
use cats::text::{Lexicon, Segmenter, WhitespaceSegmenter};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // --- Train on the labeled platform, deploy at high precision. ---
    let train = datasets::d0(0.01, 51);
    let corpus: Vec<&str> =
        train.items().iter().flat_map(|i| i.comments.iter().map(|c| c.content.as_str())).collect();
    let mut rng = StdRng::seed_from_u64(51);
    let pos: Vec<String> = (0..800)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicPositive, &mut rng))
        .collect();
    let neg: Vec<String> = (0..800)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicNegative, &mut rng))
        .collect();
    let analyzer = SemanticAnalyzer::train(
        &corpus,
        &train.lexicon().positive_seeds(),
        &train.lexicon().negative_seeds(),
        &pos.iter().map(String::as_str).collect::<Vec<_>>(),
        &neg.iter().map(String::as_str).collect::<Vec<_>>(),
        SemanticConfig {
            word2vec: Word2VecConfig { dim: 48, epochs: 4, ..Word2VecConfig::default() },
            expansion: ExpansionConfig::default(),
            ..SemanticConfig::default()
        },
    );
    let mut detector = Detector::with_default_classifier(DetectorConfig {
        threshold: 0.97,
        ..DetectorConfig::default()
    });
    let items: Vec<ItemComments> = train
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let labels: Vec<u8> = train.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
    detector.fit(&items, &labels, &analyzer);
    let pipeline = CatsPipeline::from_parts(analyzer, detector);

    // --- Crawl the second platform and detect. ---
    let target = datasets::e_platform(0.001, 1234);
    let site = PublicSite::new(&target, SiteConfig::default());
    let collected = Collector::new(CollectorConfig::default()).crawl(&site);
    let test_items: Vec<ItemComments> =
        collected.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
    let sales: Vec<u64> = collected.items.iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&test_items, &sales);

    let fraud_items: Vec<&CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| r.is_fraud).map(|(i, _)| i).collect();
    let normal_items: Vec<&CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| !r.is_fraud).map(|(i, _)| i).collect();
    println!("reported {} fraud / {} normal items\n", fraud_items.len(), normal_items.len());

    // --- Item aspect: word frequencies. ---
    let seg = WhitespaceSegmenter;
    let mut wf_fraud = WordFrequency::new();
    for item in &fraud_items {
        for c in &item.comments {
            wf_fraud.add_comment(&seg.segment(&c.content));
        }
    }
    let lex =
        Lexicon::new(train.lexicon().positive().to_vec(), train.lexicon().negative().to_vec());
    let top: Vec<String> =
        wf_fraud.top_k(12).into_iter().map(|(w, c)| format!("{w}({c})")).collect();
    println!("item aspect — fraud items' most frequent words: {}", top.join(", "));
    println!(
        "  positive fraction of top-50 words: {:.0}%",
        100.0 * wf_fraud.top_k_positive_fraction(50, &lex)
    );

    // --- User aspect: buyer reliability and risky pairs. ---
    let fraud_buyers = unique_buyers(&fraud_items);
    let normal_buyers = unique_buyers(&normal_items);
    println!(
        "\nuser aspect — buyers below userExpValue 2000: fraud {:.0}% vs normal {:.0}%",
        100.0 * share_below(&fraud_buyers, 2_000),
        100.0 * share_below(&normal_buyers, 2_000)
    );
    let pairs = mine_risky_pairs(&fraud_items, 2);
    println!(
        "  risky pairs sharing 2+ fraud items: {} pairs over {} users \
         (max purchases by one user: {})",
        pairs.n_pairs, pairs.n_users, pairs.max_purchases_by_one_user
    );

    // --- Order aspect: client sources. ---
    let df = client_distribution(&fraud_items);
    let dn = client_distribution(&normal_items);
    println!("\norder aspect — client shares (fraud vs normal):");
    for client in ["Web", "Android", "iPhone", "Wechat"] {
        println!(
            "  {client:<8} {:>5.1}% vs {:>5.1}%",
            100.0 * df.share(client),
            100.0 * dn.share(client)
        );
    }
}
