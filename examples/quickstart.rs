//! Quickstart: train CATS on a small labeled platform and detect frauds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cats::core::semantic::SemanticConfig;
use cats::core::{CatsPipeline, Detector, DetectorConfig, ItemComments, SemanticAnalyzer};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::platform::datasets;

fn main() {
    // 1. A small labeled platform (D0-shaped: fraud + normal items with
    //    ground-truth labels). In a real deployment this is your labeled
    //    training corpus.
    let train = datasets::d0(0.005, 1);
    println!(
        "training platform: {} items, {} comments",
        train.items().len(),
        train.comment_count()
    );

    // 2. Train the semantic analyzer: word2vec over the public comments,
    //    seed expansion into the positive/negative lexicon, and the
    //    sentiment model from labeled reviews.
    let corpus: Vec<&str> =
        train.items().iter().flat_map(|i| i.comments.iter().map(|c| c.content.as_str())).collect();
    // Labeled sentiment reviews (here: generated; in production, any
    // rating-labeled review corpus).
    use cats::platform::comment_model::{generate_comment, CommentStyle};
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(9);
    let pos_reviews: Vec<String> = (0..500)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicPositive, &mut rng))
        .collect();
    let neg_reviews: Vec<String> = (0..500)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicNegative, &mut rng))
        .collect();

    let analyzer = SemanticAnalyzer::train(
        &corpus,
        &train.lexicon().positive_seeds(),
        &train.lexicon().negative_seeds(),
        &pos_reviews.iter().map(String::as_str).collect::<Vec<_>>(),
        &neg_reviews.iter().map(String::as_str).collect::<Vec<_>>(),
        SemanticConfig {
            word2vec: Word2VecConfig { dim: 48, epochs: 4, ..Word2VecConfig::default() },
            expansion: ExpansionConfig::default(),
            ..SemanticConfig::default()
        },
    );
    println!(
        "semantic analyzer: |P| = {}, |N| = {}",
        analyzer.lexicon().positive_len(),
        analyzer.lexicon().negative_len()
    );

    // 3. Fit the two-stage detector (rule filter + GBT classifier).
    let mut detector = Detector::with_default_classifier(DetectorConfig::default());
    let items: Vec<ItemComments> = train
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let labels: Vec<u8> = train.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
    detector.fit(&items, &labels, &analyzer);
    let pipeline = CatsPipeline::from_parts(analyzer, detector);

    // 4. Detect on unseen items.
    let unseen = datasets::d0(0.005, 2);
    let test_items: Vec<ItemComments> = unseen
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let sales: Vec<u64> = unseen.items().iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&test_items, &sales);

    let labels: Vec<u8> = unseen.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
    let metrics = CatsPipeline::evaluate(&reports, &labels);
    println!(
        "detected {} frauds among {} unseen items — {}",
        reports.iter().filter(|r| r.is_fraud).count(),
        reports.len(),
        metrics
    );

    // Peek at the highest-scoring report.
    if let Some(top) =
        reports.iter().filter(|r| r.is_fraud).max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
    {
        println!(
            "top report: item #{} score {:.3}, first comment: {:?}",
            top.index,
            top.score,
            unseen.items()[top.index].comments.first().map(|c| c
                .content
                .chars()
                .take(60)
                .collect::<String>())
        );
    }
}
