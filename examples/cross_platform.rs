//! Cross-platform deployment: train on the labeled platform, crawl a
//! second platform's public site, detect, and audit — the paper's §IV
//! scenario end to end.
//!
//! ```sh
//! cargo run --release --example cross_platform
//! ```

use cats::analysis::ExpertPanel;
use cats::collector::{Collector, CollectorConfig, PublicSite, SiteConfig};
use cats::core::{DetectorConfig, ItemComments};
use cats::platform::datasets;
use cats_bench_like::train_pipeline_with;

/// A miniature copy of the experiment harness's training routine so the
/// example is self-contained (the `cats-bench` crate is not a library
/// dependency of the umbrella crate).
mod cats_bench_like {
    use cats::core::semantic::SemanticConfig;
    use cats::core::{CatsPipeline, Detector, DetectorConfig, ItemComments, SemanticAnalyzer};
    use cats::embedding::{ExpansionConfig, Word2VecConfig};
    use cats::platform::comment_model::{generate_comment, CommentStyle};
    use cats::platform::Platform;
    use rand::{rngs::StdRng, SeedableRng};

    pub fn train_pipeline_with(
        platform: &Platform,
        seed: u64,
        config: DetectorConfig,
    ) -> CatsPipeline {
        let corpus: Vec<&str> = platform
            .items()
            .iter()
            .flat_map(|i| i.comments.iter().map(|c| c.content.as_str()))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let pos: Vec<String> = (0..800)
            .map(|_| generate_comment(platform.lexicon(), CommentStyle::OrganicPositive, &mut rng))
            .collect();
        let neg: Vec<String> = (0..800)
            .map(|_| generate_comment(platform.lexicon(), CommentStyle::OrganicNegative, &mut rng))
            .collect();
        let analyzer = SemanticAnalyzer::train(
            &corpus,
            &platform.lexicon().positive_seeds(),
            &platform.lexicon().negative_seeds(),
            &pos.iter().map(String::as_str).collect::<Vec<_>>(),
            &neg.iter().map(String::as_str).collect::<Vec<_>>(),
            SemanticConfig {
                word2vec: Word2VecConfig { dim: 48, epochs: 4, ..Word2VecConfig::default() },
                expansion: ExpansionConfig::default(),
                ..SemanticConfig::default()
            },
        );
        let mut detector = Detector::with_default_classifier(config);
        let items: Vec<ItemComments> = platform
            .items()
            .iter()
            .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
            .collect();
        let labels: Vec<u8> =
            platform.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
        detector.fit(&items, &labels, &analyzer);
        CatsPipeline::from_parts(analyzer, detector)
    }
}

fn main() {
    // Train on platform A (labeled), at a high-precision operating point
    // for deployment on an unlabeled stream.
    let platform_a = datasets::d0(0.01, 21);
    let pipeline = train_pipeline_with(
        &platform_a,
        21,
        DetectorConfig { threshold: 0.97, ..DetectorConfig::default() },
    );
    println!("trained on platform A ({} items)", platform_a.items().len());

    // Crawl platform B's public site — noisy pagination and all.
    let platform_b = datasets::e_platform(0.001, 777);
    let site = PublicSite::new(&platform_b, SiteConfig::default());
    let mut collector = Collector::new(CollectorConfig::default());
    let collected = collector.crawl(&site);
    println!(
        "crawled platform B: {} items / {} comments ({} duplicates and {} malformed records dropped)",
        collected.items.len(),
        collected.comment_count(),
        collector.stats().duplicate_records,
        collector.stats().malformed_records,
    );

    // Detect over the crawl.
    let items: Vec<ItemComments> =
        collected.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
    let sales: Vec<u64> = collected.items.iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);
    let reported: Vec<usize> = reports.iter().filter(|r| r.is_fraud).map(|r| r.index).collect();
    println!("reported {} suspected fraud items", reported.len());

    // Audit a sample against latent ground truth (the expert-panel
    // stand-in for Alibaba's analysts).
    let truth: Vec<bool> = reported
        .iter()
        .map(|&i| {
            platform_b
                .item(collected.items[i].item_id)
                .map(|it| it.label.is_fraud())
                .unwrap_or(false)
        })
        .collect();
    let verdict = ExpertPanel::default().audit(&truth);
    println!(
        "expert audit: {}/{} confirmed → precision {:.3}",
        verdict.confirmed, verdict.sampled, verdict.precision
    );
}
