//! Lexicon expansion: train word2vec on an e-commerce comment corpus and
//! expand a handful of seed words into the positive/negative sets —
//! including the homograph variants human reviewers miss (the paper's
//! Table I workflow).
//!
//! ```sh
//! cargo run --release --example lexicon_expansion
//! ```

use cats::embedding::{expand_lexicon, ExpansionConfig, Word2VecConfig, Word2VecTrainer};
use cats::platform::datasets;
use cats::platform::lexicon::HAOPING_VARIANTS;
use cats::text::{Corpus, WhitespaceSegmenter};

fn main() {
    // Public comments of a platform are the training corpus.
    let platform = datasets::d0(0.05, 31);
    let seg = WhitespaceSegmenter;
    let mut corpus = Corpus::new();
    for item in platform.items() {
        for c in &item.comments {
            corpus.push_text(&c.content, &seg);
        }
    }
    println!(
        "corpus: {} comments, {} tokens, vocab {}",
        corpus.len(),
        corpus.token_count(),
        corpus.vocab().len()
    );

    // Skip-gram negative sampling, from scratch.
    let embedding = Word2VecTrainer::new(Word2VecConfig {
        dim: 48,
        window: 4,
        epochs: 4,
        ..Word2VecConfig::default()
    })
    .train(&corpus);

    // Nearest neighbours of the canonical positive seed.
    println!("\nnearest neighbours of `haoping` (good reputation):");
    for (w, sim) in embedding.nearest("haoping", 10).unwrap_or_default() {
        println!("  {w:<16} cosine {sim:.3}");
    }

    // Iterative frontier expansion into P and N.
    let lexicon = expand_lexicon(
        &embedding,
        &platform.lexicon().positive_seeds(),
        &platform.lexicon().negative_seeds(),
        ExpansionConfig::default(),
    );
    println!(
        "\nexpanded: |P| = {}, |N| = {} (paper: ~200 each)",
        lexicon.positive_len(),
        lexicon.negative_len()
    );

    // Did the expansion discover the planted homographs of `haoping`?
    for v in HAOPING_VARIANTS {
        println!(
            "homograph {v}: {}",
            if lexicon.is_positive(v) { "discovered ✔" } else { "missed ✘" }
        );
    }

    // Precision vs the latent ground-truth word classes.
    let truth = platform.lexicon();
    let pos_ok =
        lexicon.positive_words().filter(|w| truth.positive().iter().any(|p| p == w)).count();
    println!(
        "\nexpansion precision: {}/{} expanded positive words are truly positive",
        pos_ok,
        lexicon.positive_len()
    );
}
