//! Deployment workflow: train once, persist the model to disk, restore it
//! in a fresh process, and read the operator's batch summary — the §VI
//! story of shipping a pre-trained CATS into a platform.
//!
//! ```sh
//! cargo run --release --example deploy_and_persist
//! ```

use cats::core::pipeline::PipelineSnapshot;
use cats::core::semantic::SemanticConfig;
use cats::core::{CatsPipeline, DetectionSummary, DetectorConfig, ItemComments, SemanticAnalyzer};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats::ml::{Classifier, Dataset};
use cats::platform::comment_model::{generate_comment, CommentStyle};
use cats::platform::datasets;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // --- Training process ---------------------------------------------
    let train = datasets::d0(0.006, 81);
    let corpus: Vec<&str> =
        train.items().iter().flat_map(|i| i.comments.iter().map(|c| c.content.as_str())).collect();
    let mut rng = StdRng::seed_from_u64(81);
    let pos: Vec<String> = (0..600)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicPositive, &mut rng))
        .collect();
    let neg: Vec<String> = (0..600)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicNegative, &mut rng))
        .collect();
    let analyzer = SemanticAnalyzer::train(
        &corpus,
        &train.lexicon().positive_seeds(),
        &train.lexicon().negative_seeds(),
        &pos.iter().map(String::as_str).collect::<Vec<_>>(),
        &neg.iter().map(String::as_str).collect::<Vec<_>>(),
        SemanticConfig {
            word2vec: Word2VecConfig { dim: 48, epochs: 3, ..Word2VecConfig::default() },
            expansion: ExpansionConfig::default(),
            ..SemanticConfig::default()
        },
    );

    // Train the concrete GBT on extracted features (the snapshot keeps the
    // concrete model type).
    let items: Vec<ItemComments> = train
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let labels: Vec<u8> = train.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
    let rows = cats::core::features::extract_batch(&items, &analyzer, 0);
    let mut data = Dataset::new(cats::core::N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }
    let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
    gbt.fit(&data);

    // --- Persist to disk -----------------------------------------------
    let snapshot = CatsPipeline::snapshot(
        analyzer,
        DetectorConfig { threshold: 0.9, ..DetectorConfig::default() },
        gbt,
    );
    let path = std::env::temp_dir().join("cats_detector.json");
    let json = serde_json::to_string(&snapshot).expect("serialize snapshot");
    std::fs::write(&path, &json).expect("write model file");
    println!("persisted trained detector: {} ({} KiB)", path.display(), json.len() / 1024);

    // --- A "fresh process": restore and run ----------------------------
    let loaded = std::fs::read_to_string(&path).expect("read model file");
    let restored: PipelineSnapshot = serde_json::from_str(&loaded).expect("parse model");
    let pipeline = CatsPipeline::restore(restored);

    let stream = datasets::d1(0.003, 4242);
    let batch: Vec<ItemComments> = stream
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let sales: Vec<u64> = stream.items().iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&batch, &sales);

    // --- Operator view --------------------------------------------------
    let summary = DetectionSummary::from_reports(&reports);
    println!("\n{summary}");
    let queue = DetectionSummary::review_queue(&reports, 5);
    println!("expert review queue (top {} by score):", queue.len());
    for idx in queue {
        println!(
            "  item #{idx} score {:.3} — first comment: {:?}",
            reports[idx].score,
            stream.items()[idx].comments.first().map(|c| c
                .content
                .chars()
                .take(48)
                .collect::<String>())
        );
    }
    std::fs::remove_file(&path).ok();
}
