//! Feature-extraction throughput: one item, a sequential batch, and the
//! parallel batch path (the paper notes its extractor is parallelized).

use cats_bench::setup;
use cats_core::{features, ItemComments};
use cats_platform::datasets;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_extract(c: &mut Criterion) {
    let platform = datasets::d0(0.01, 42);
    let analyzer = setup::train_analyzer(&platform, 42);
    let items: Vec<ItemComments> =
        platform.items().iter().take(200).map(setup::item_comments).collect();

    c.bench_function("extract_single_item", |b| {
        b.iter(|| black_box(features::extract(&items[0], &analyzer)))
    });
    c.bench_function("extract_batch_200_seq", |b| {
        b.iter(|| black_box(features::extract_batch(&items, &analyzer, 1)))
    });
    c.bench_function("extract_batch_200_par", |b| {
        b.iter(|| black_box(features::extract_batch(&items, &analyzer, 0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_extract
}
criterion_main!(benches);
