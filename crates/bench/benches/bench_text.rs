//! Microbenchmarks for the text substrate: segmentation, per-comment
//! statistics, lexicon counting, and sentiment scoring — the inner loops
//! of the feature extractor.

use cats_bench::setup;
use cats_platform::comment_model::{generate_comment, CommentStyle};
use cats_platform::SyntheticLexicon;
use cats_sentiment::SentimentModel;
use cats_text::{stats, Lexicon, Segmenter, WhitespaceSegmenter};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn fixture_comments(n: usize) -> Vec<String> {
    let lex = SyntheticLexicon::generate(Default::default(), 7);
    let mut rng = StdRng::seed_from_u64(1);
    (0..n)
        .map(|i| {
            let style =
                if i % 2 == 0 { CommentStyle::FraudPromo } else { CommentStyle::OrganicNeutral };
            generate_comment(&lex, style, &mut rng)
        })
        .collect()
}

fn bench_segment(c: &mut Criterion) {
    let comments = fixture_comments(200);
    let seg = WhitespaceSegmenter;
    c.bench_function("segment_200_comments", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut buf = Vec::new();
            for t in &comments {
                seg.segment_into(t, &mut buf);
                total += buf.len();
            }
            black_box(total)
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    let comments = fixture_comments(200);
    let seg = WhitespaceSegmenter;
    let tokenized: Vec<(String, Vec<String>)> = comments
        .into_iter()
        .map(|t| {
            let toks = seg.segment(&t);
            (t, toks)
        })
        .collect();
    c.bench_function("comment_stats_200", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (text, toks) in &tokenized {
                acc += stats::CommentStats::compute(text, toks).entropy;
            }
            black_box(acc)
        })
    });
}

fn bench_lexicon_count(c: &mut Criterion) {
    let lex_src = SyntheticLexicon::generate(Default::default(), 7);
    let lex = Lexicon::new(lex_src.positive().to_vec(), lex_src.negative().to_vec());
    let comments = fixture_comments(200);
    let seg = WhitespaceSegmenter;
    let tokenized: Vec<Vec<String>> = comments.iter().map(|t| seg.segment(t)).collect();
    c.bench_function("lexicon_positive_count_200", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for toks in &tokenized {
                acc += lex.positive_count(toks);
            }
            black_box(acc)
        })
    });
}

fn bench_sentiment(c: &mut Criterion) {
    let lex = SyntheticLexicon::generate(Default::default(), 7);
    let (pos, neg) = setup::sentiment_corpus(&lex, 500, 3);
    let seg = WhitespaceSegmenter;
    let model = SentimentModel::train(
        &pos.iter().map(|t| seg.segment(t)).collect::<Vec<_>>(),
        &neg.iter().map(|t| seg.segment(t)).collect::<Vec<_>>(),
    );
    let comments = fixture_comments(200);
    let tokenized: Vec<Vec<String>> = comments.iter().map(|t| seg.segment(t)).collect();
    c.bench_function("sentiment_score_200", |b| {
        b.iter_batched(
            || tokenized.clone(),
            |toks| {
                let mut acc = 0.0;
                for t in &toks {
                    acc += model.score(t);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_segment, bench_stats, bench_lexicon_count, bench_sentiment
}
criterion_main!(benches);
