//! End-to-end costs: the detector over an item batch, and the collector
//! crawling the simulated site.

use cats_bench::setup;
use cats_collector::{Collector, CollectorConfig, PublicSite, SiteConfig};
use cats_core::ItemComments;
use cats_platform::datasets;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_detect(c: &mut Criterion) {
    let d0 = datasets::d0(0.01, 5);
    let pipeline = setup::train_pipeline(&d0, 5);
    let holdout = datasets::d0(0.01, 6);
    let items: Vec<ItemComments> =
        holdout.items().iter().take(300).map(setup::item_comments).collect();
    let sales: Vec<u64> = holdout.items().iter().take(300).map(|i| i.sales_volume).collect();
    c.bench_function("detector_detect_300_items", |b| {
        b.iter(|| black_box(pipeline.detect(&items, &sales)))
    });
}

fn bench_crawl(c: &mut Criterion) {
    let e = datasets::e_platform(0.0003, 9);
    let site = PublicSite::new(&e, SiteConfig::default());
    c.bench_function("collector_crawl_1500_items", |b| {
        b.iter(|| {
            let mut collector = Collector::new(CollectorConfig::default());
            black_box(collector.crawl(&site).comment_count())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_detect, bench_crawl
}
criterion_main!(benches);
