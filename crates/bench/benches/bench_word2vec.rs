//! Word2vec training and k-NN query cost.

use cats_embedding::{Word2VecConfig, Word2VecTrainer};
use cats_platform::comment_model::{generate_comment, CommentStyle};
use cats_platform::SyntheticLexicon;
use cats_text::{Corpus, WhitespaceSegmenter};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn fixture_corpus(n_comments: usize) -> Corpus {
    let lex = SyntheticLexicon::generate(Default::default(), 7);
    let mut rng = StdRng::seed_from_u64(2);
    let seg = WhitespaceSegmenter;
    let mut corpus = Corpus::new();
    for i in 0..n_comments {
        let style = match i % 3 {
            0 => CommentStyle::FraudPromo,
            1 => CommentStyle::OrganicPositive,
            _ => CommentStyle::OrganicNeutral,
        };
        corpus.push_text(&generate_comment(&lex, style, &mut rng), &seg);
    }
    corpus
}

fn bench_train(c: &mut Criterion) {
    let corpus = fixture_corpus(2_000);
    let cfg = Word2VecConfig { dim: 32, epochs: 1, window: 4, ..Word2VecConfig::default() };
    c.bench_function("word2vec_train_2k_comments_1_epoch", |b| {
        b.iter(|| black_box(Word2VecTrainer::new(cfg).train(&corpus)))
    });
}

fn bench_nearest(c: &mut Criterion) {
    let corpus = fixture_corpus(2_000);
    let cfg = Word2VecConfig { dim: 32, epochs: 1, window: 4, ..Word2VecConfig::default() };
    let emb = Word2VecTrainer::new(cfg).train(&corpus);
    c.bench_function("word2vec_nearest_k10", |b| b.iter(|| black_box(emb.nearest("haoping", 10))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train, bench_nearest
}
criterion_main!(benches);
