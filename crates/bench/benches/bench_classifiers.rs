//! Training and prediction cost of the six Table III classifiers on
//! CATS-shaped feature data.

use cats_bench::setup;
use cats_core::N_FEATURES;
use cats_ml::model_selection::paper_panel;
use cats_ml::Dataset;
use cats_platform::datasets;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn feature_dataset() -> Dataset {
    let platform = datasets::d0(0.02, 13);
    let analyzer = setup::train_analyzer(&platform, 13);
    let items: Vec<_> = platform.items().iter().map(setup::item_comments).collect();
    let labels: Vec<u8> = platform.items().iter().map(setup::item_label).collect();
    let rows = cats_core::features::extract_batch(&items, &analyzer, 0);
    let mut data = Dataset::new(N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }
    data
}

fn bench_fit(c: &mut Criterion) {
    let data = feature_dataset();
    let mut group = c.benchmark_group("fit");
    for model in paper_panel() {
        let name = model.name();
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    // fresh untrained model each iteration
                    paper_panel().into_iter().find(|m| m.name() == name).unwrap()
                },
                |mut m| {
                    m.fit(&data);
                    black_box(m.predict_proba(data.row(0)))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = feature_dataset();
    let mut group = c.benchmark_group("predict_row");
    for mut model in paper_panel() {
        model.fit(&data);
        let name = model.name();
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.predict_proba(black_box(data.row(7)))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fit, bench_predict
}
criterion_main!(benches);
