//! Loopback listener startup for the serving benches.
//!
//! The load phases churn through thousands of short-lived client
//! sockets; on a busy CI runner a later bind can collide with a
//! lingering socket and fail with `AddrInUse` even when asking for an
//! ephemeral port. `cats_serve::shard` already retries its own
//! fixed-address respawn path; these wrappers give the benches' *own*
//! listeners (`exp_serve`, `exp_cluster`) the same robustness — on
//! `AddrInUse` the retry switches to `127.0.0.1:0` so each attempt asks
//! the OS for a fresh ephemeral port instead of waiting on a specific
//! one.

use cats_serve::{ModelSlot, Router, RouterConfig, ServeConfig, Server};
use std::io::ErrorKind;
use std::sync::Arc;
use std::time::Duration;

/// Bind attempts before giving up.
const BIND_ATTEMPTS: u32 = 10;

/// Delay before retry `attempt` (bounded backoff for kernel cleanup).
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis(25 << attempt.min(4))
}

/// [`Server::start`] that retries `AddrInUse` on a fresh ephemeral
/// port. Panics (the bench convention) on any other error or once the
/// attempts are exhausted.
pub fn start_server_retrying(slot: Arc<ModelSlot>, config: ServeConfig) -> Server {
    start_server_with_drift_retrying(slot, config, None)
}

/// [`Server::start_with_drift`] with the same `AddrInUse` retry contract
/// as [`start_server_retrying`] — the drift bench wires a live
/// [`cats_obs::DriftMonitor`] into the listener it load-tests.
pub fn start_server_with_drift_retrying(
    slot: Arc<ModelSlot>,
    config: ServeConfig,
    drift: Option<Arc<cats_obs::DriftMonitor>>,
) -> Server {
    let mut config = config;
    for attempt in 0..BIND_ATTEMPTS {
        match Server::start_with_drift(slot.clone(), config.clone(), drift.clone()) {
            Ok(server) => return server,
            Err(e) if e.kind() == ErrorKind::AddrInUse => {
                eprintln!(
                    "bench: serve bind of {} hit AddrInUse (attempt {attempt}); \
                     retrying on a fresh ephemeral port",
                    config.addr
                );
                config.addr = "127.0.0.1:0".to_string();
                std::thread::sleep(backoff(attempt));
            }
            Err(e) => panic!("bind serve socket {}: {e}", config.addr),
        }
    }
    panic!("serve socket still AddrInUse after {BIND_ATTEMPTS} attempts");
}

/// [`Router::start`] that retries `AddrInUse` on a fresh ephemeral
/// port, same contract as [`start_server_retrying`].
pub fn start_router_retrying(shard_addrs: &[String], config: RouterConfig) -> Router {
    let mut config = config;
    for attempt in 0..BIND_ATTEMPTS {
        match Router::start(shard_addrs.to_vec(), config.clone()) {
            Ok(router) => return router,
            Err(e) if e.kind() == ErrorKind::AddrInUse => {
                eprintln!(
                    "bench: router bind of {} hit AddrInUse (attempt {attempt}); \
                     retrying on a fresh ephemeral port",
                    config.addr
                );
                config.addr = "127.0.0.1:0".to_string();
                std::thread::sleep(backoff(attempt));
            }
            Err(e) => panic!("bind router socket {}: {e}", config.addr),
        }
    }
    panic!("router socket still AddrInUse after {BIND_ATTEMPTS} attempts");
}
