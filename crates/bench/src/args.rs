//! Minimal CLI parsing for the experiment binaries.

/// Common experiment arguments.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// Dataset scale multiplier (1.0 = paper size).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl Args {
    /// Parses `--scale <f64>` and `--seed <u64>` from `std::env::args`,
    /// with the given defaults. Unknown flags abort with a usage message.
    pub fn parse(default_scale: f64, default_seed: u64) -> Self {
        Self::parse_from(std::env::args().skip(1), default_scale, default_seed)
    }

    /// Testable core of [`Args::parse`].
    pub fn parse_from<I: IntoIterator<Item = String>>(
        args: I,
        default_scale: f64,
        default_seed: u64,
    ) -> Self {
        let mut out = Self { scale: default_scale, seed: default_seed };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    out.scale = v.parse().expect("--scale must be a float");
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    out.seed = v.parse().expect("--seed must be an integer");
                }
                other => {
                    eprintln!("unknown flag {other}; usage: --scale <f64> --seed <u64>");
                    std::process::exit(2);
                }
            }
        }
        assert!(out.scale > 0.0, "scale must be positive");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse_from(v(&[]), 0.5, 9);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn flags_override() {
        let a = Args::parse_from(v(&["--scale", "0.01", "--seed", "42"]), 1.0, 0);
        assert_eq!(a.scale, 0.01);
        assert_eq!(a.seed, 42);
    }

    #[test]
    #[should_panic(expected = "--scale must be a float")]
    fn bad_scale_panics() {
        Args::parse_from(v(&["--scale", "abc"]), 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        Args::parse_from(v(&["--scale", "0"]), 1.0, 0);
    }
}
