//! # cats-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §3 for the
//! index), plus Criterion micro-benchmarks in `benches/`. This library
//! holds the shared machinery: CLI parsing, the standard "train CATS on a
//! D0-shaped platform" setup, sentiment-corpus generation, and ASCII
//! table rendering.
//!
//! Every experiment accepts `--scale <f64>` and `--seed <u64>`; the scale
//! applied to each dataset preset is recorded in `EXPERIMENTS.md`
//! alongside paper-vs-measured numbers.

pub mod args;
pub mod net;
pub mod render;
pub mod setup;

pub use args::Args;
