//! ASCII table rendering for experiment output.

/// Renders a simple aligned table: headers plus rows of cells.
///
/// ```
/// let t = cats_bench::render::table(
///     &["Classifier", "Precision"],
///     &[vec!["Xgboost".into(), "0.93".into()]],
/// );
/// assert!(t.contains("Xgboost"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), n, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:<w$} |", w = w));
        }
        line.push('\n');
        line
    };
    let sep = {
        let mut line = String::from("+");
        for w in &widths {
            line.push_str(&"-".repeat(w + 2));
            line.push('+');
        }
        line.push('\n');
        line
    };
    out.push_str(&sep);
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out.push_str(&sep);
    out
}

/// Formats a float with 3 decimals (the paper's table precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer-name".into(), "2".into()]],
        );
        assert!(t.contains("| name "));
        assert!(t.contains("| longer-name | 2"));
        assert_eq!(t.matches('\n').count(), 6);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.93456), "0.935");
        assert_eq!(pct(0.968), "96.8%");
    }
}
