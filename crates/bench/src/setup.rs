//! Shared experiment setup: platform → trained CATS instance.
//!
//! The paper's protocol, reproduced once here and reused by every
//! experiment binary:
//!
//! 1. instantiate the D0-shaped training platform;
//! 2. train the semantic analyzer: word2vec over the platform's comment
//!    corpus, seed expansion into *P*/*N*, and the sentiment model from a
//!    generated labeled review corpus (the SnowNLP stand-in);
//! 3. extract features for the labeled items and fit the detector's
//!    classifier (GBT by default).
//!
//! The detector is then applied *unchanged* to other platforms (D1,
//! E-platform) — the cross-platform deployment under evaluation.

use cats_core::{
    CatsPipeline, DetectorConfig, ItemComments, PipelineConfig, SemanticAnalyzer, SemanticConfig,
};
use cats_embedding::{ExpansionConfig, Word2VecConfig};
use cats_platform::comment_model::{generate_comment, CommentStyle};
use cats_platform::{datasets, Item, ItemLabel, Platform, SyntheticLexicon};
use rand::{rngs::StdRng, SeedableRng};

/// Caps the word2vec training corpus so experiments stay laptop-scale even
/// at large `--scale` (the embedding only needs enough co-occurrence
/// statistics to cluster the lexicon).
pub const MAX_W2V_COMMENTS: usize = 60_000;

/// Number of labeled reviews per polarity for the sentiment model.
pub const SENTIMENT_REVIEWS: usize = 3_000;

/// Generates the labeled review corpus the sentiment model trains on —
/// the stand-in for SnowNLP's pre-training data (large-scale e-commerce
/// reviews with rating labels).
pub fn sentiment_corpus(
    lexicon: &SyntheticLexicon,
    n_per_class: usize,
    seed: u64,
) -> (Vec<String>, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E47);
    let pos = (0..n_per_class)
        .map(|_| generate_comment(lexicon, CommentStyle::OrganicPositive, &mut rng))
        .collect();
    let neg = (0..n_per_class)
        .map(|_| generate_comment(lexicon, CommentStyle::OrganicNegative, &mut rng))
        .collect();
    (pos, neg)
}

/// Converts a platform item into the extractor's input shape.
pub fn item_comments(item: &Item) -> ItemComments {
    ItemComments::from_texts(item.comments.iter().map(|c| c.content.as_str()))
}

/// Binary label of an item (fraud = 1).
pub fn item_label(item: &Item) -> u8 {
    u8::from(item.label.is_fraud())
}

/// Word2vec configuration used by the experiments (smaller than the
/// library defaults so the corpus pass stays fast).
pub fn experiment_w2v() -> Word2VecConfig {
    Word2VecConfig { dim: 48, window: 4, negative: 5, epochs: 3, ..Word2VecConfig::default() }
}

/// Trains the semantic analyzer from a platform's own public comments.
pub fn train_analyzer(platform: &Platform, seed: u64) -> SemanticAnalyzer {
    train_analyzer_with(platform, seed, cats_par::Parallelism::default())
}

/// [`train_analyzer`] with an explicit parallelism setting — the scaling
/// experiment sweeps this over thread counts.
pub fn train_analyzer_with(
    platform: &Platform,
    seed: u64,
    parallelism: cats_par::Parallelism,
) -> SemanticAnalyzer {
    let corpus: Vec<&str> = platform
        .items()
        .iter()
        .flat_map(|i| i.comments.iter().map(|c| c.content.as_str()))
        .take(MAX_W2V_COMMENTS)
        .collect();
    let (sent_pos, sent_neg) = sentiment_corpus(platform.lexicon(), SENTIMENT_REVIEWS, seed);
    let sp: Vec<&str> = sent_pos.iter().map(String::as_str).collect();
    let sn: Vec<&str> = sent_neg.iter().map(String::as_str).collect();
    SemanticAnalyzer::train(
        &corpus,
        &platform.lexicon().positive_seeds(),
        &platform.lexicon().negative_seeds(),
        &sp,
        &sn,
        SemanticConfig {
            word2vec: experiment_w2v(),
            expansion: ExpansionConfig::default(),
            parallelism,
        },
    )
}

/// The standard trained pipeline: analyzer + detector fit on the given
/// (usually D0-shaped) platform, at the default 0.5 operating point.
pub fn train_pipeline(train_platform: &Platform, seed: u64) -> CatsPipeline {
    train_pipeline_with(train_platform, seed, DetectorConfig::default())
}

/// Audited-precision target of the deployment operating point (the paper
/// reports 0.96 on the E-platform sample).
pub const DEPLOY_PRECISION_TARGET: f64 = 0.99;

/// [`train_pipeline`] with an explicit detector configuration (e.g. the
/// deployment threshold).
pub fn train_pipeline_with(
    train_platform: &Platform,
    seed: u64,
    config: DetectorConfig,
) -> CatsPipeline {
    let analyzer = train_analyzer(train_platform, seed);
    let mut detector = cats_core::Detector::with_default_classifier(config);
    let items: Vec<ItemComments> = train_platform.items().iter().map(item_comments).collect();
    let labels: Vec<u8> = train_platform.items().iter().map(item_label).collect();
    detector.fit(&items, &labels, &analyzer);
    CatsPipeline::from_parts(analyzer, detector)
}

/// [`train_pipeline`] calibrated to the deployment operating point: the
/// threshold is chosen on a small labeled production-shaped holdout so
/// that holdout precision reaches [`DEPLOY_PRECISION_TARGET`] — the
/// classifier trains on the balanced D0 set, but production prevalence is
/// ~0.3%, and reporting only high-confidence items is what gives the
/// paper its 0.96 audited precision on 10,720 reports.
pub fn train_deploy_pipeline(train_platform: &Platform, seed: u64) -> CatsPipeline {
    let mut pipeline = train_pipeline(train_platform, seed);
    // The audited calibration sample must match the *deployment* platform's
    // comment density: items with few comments have noisy feature averages,
    // so a threshold tuned on dense-comment data under-filters sparse ones.
    let holdout = datasets::e_platform(0.001, seed.wrapping_add(0xCA11));
    let items: Vec<ItemComments> = holdout.items().iter().map(item_comments).collect();
    let sales: Vec<u64> = holdout.items().iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);
    let labels: Vec<u8> = holdout.items().iter().map(item_label).collect();
    let threshold = cats_core::pipeline::calibrate_precision_threshold(
        &reports,
        &labels,
        DEPLOY_PRECISION_TARGET,
    );
    pipeline.detector_mut().set_threshold(threshold);
    pipeline
}

/// D0 at `scale` (see `cats_platform::datasets::d0`).
pub fn d0(scale: f64, seed: u64) -> Platform {
    datasets::d0(scale, seed)
}

/// Splits a platform's items into (fraud, normal) reference vectors.
pub fn split_by_label(platform: &Platform) -> (Vec<&Item>, Vec<&Item>) {
    let mut fraud = Vec::new();
    let mut normal = Vec::new();
    for item in platform.items() {
        if item.label.is_fraud() {
            fraud.push(item);
        } else {
            normal.push(item);
        }
    }
    (fraud, normal)
}

/// Label-kind conversion for Table VI slicing.
pub fn label_kind(label: ItemLabel) -> cats_core::pipeline::LabelKind {
    match label {
        ItemLabel::FraudSufficientEvidence => cats_core::pipeline::LabelKind::FraudSufficient,
        ItemLabel::FraudExpertLabeled => cats_core::pipeline::LabelKind::FraudExpert,
        ItemLabel::Normal => cats_core::pipeline::LabelKind::Normal,
    }
}

/// The default `PipelineConfig` used across experiments.
pub fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        semantic: SemanticConfig {
            word2vec: experiment_w2v(),
            expansion: ExpansionConfig::default(),
            ..SemanticConfig::default()
        },
        detector: DetectorConfig::default(),
        ..PipelineConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentiment_corpus_has_requested_sizes_and_polarity() {
        let lex = SyntheticLexicon::generate(Default::default(), 3);
        let (pos, neg) = sentiment_corpus(&lex, 50, 1);
        assert_eq!(pos.len(), 50);
        assert_eq!(neg.len(), 50);
        // positive reviews mention positive words more often
        let count_hits = |texts: &[String], words: &[String]| -> usize {
            texts
                .iter()
                .flat_map(|t| t.split_whitespace())
                .filter(|w| words.iter().any(|p| p == w))
                .count()
        };
        let pos_hits = count_hits(&pos, lex.positive());
        let neg_hits = count_hits(&neg, lex.negative());
        assert!(pos_hits > 0 && neg_hits > 0);
    }

    #[test]
    fn train_pipeline_detects_on_holdout() {
        let d0 = datasets::d0(0.004, 11); // ~56 fraud / 80 normal
        let pipeline = train_pipeline(&d0, 11);
        // Evaluate on a different platform instance (cross-platform claim).
        let holdout = datasets::d0(0.004, 99);
        let items: Vec<ItemComments> = holdout.items().iter().map(item_comments).collect();
        let sales: Vec<u64> = holdout.items().iter().map(|i| i.sales_volume).collect();
        let reports = pipeline.detect(&items, &sales);
        let labels: Vec<u8> = holdout.items().iter().map(item_label).collect();
        let m = CatsPipeline::evaluate(&reports, &labels);
        assert!(m.f1 > 0.8, "holdout F1 {} too low", m.f1);
    }

    #[test]
    fn split_by_label_partitions() {
        let p = datasets::d0(0.002, 2);
        let (f, n) = split_by_label(&p);
        assert_eq!(f.len() + n.len(), p.items().len());
        assert!(f.iter().all(|i| i.label.is_fraud()));
        assert!(n.iter().all(|i| !i.label.is_fraud()));
    }
}
