//! §IV — the E-platform application: crawl → detect → expert audit.
//!
//! The paper crawls ~4.5M items / 100M+ comments from E-platform's public
//! site over one week, runs the detector pre-trained on D0, reports
//! 10,720 fraud items, and has experts audit a 1,000-item random sample,
//! confirming 96%. This binary runs the full chain on the E-platform
//! preset: simulated site, real collector, pre-trained detector, and the
//! simulated expert panel against the generator's latent labels.

use cats_analysis::ExpertPanel;
use cats_bench::{render, setup, Args};
use cats_collector::politeness::human_duration;
use cats_collector::{Collector, CollectorConfig, PolitenessPolicy, PublicSite, SiteConfig};
use cats_core::ItemComments;
use cats_platform::datasets;

fn main() {
    let args = Args::parse(0.002, 0xE91A);
    println!("== §IV: E-platform crawl + detection + audit (scale={}) ==", args.scale);

    // 1. Pre-train CATS on the labeled D0-shaped platform.
    let d0 = datasets::d0(args.scale * 25.0, args.seed);
    let pipeline = setup::train_deploy_pipeline(&d0, args.seed);
    println!("pre-trained on D0 ({} items)", d0.items().len());

    // 2. Crawl E-platform's public site.
    let e = datasets::e_platform(args.scale, args.seed.wrapping_add(3));
    let site = PublicSite::new(&e, SiteConfig::default());
    let mut collector = Collector::new(CollectorConfig::default());
    let collected = collector.crawl(&site);
    let stats = collector.stats();
    println!(
        "crawl: {} shops, {} items, {} comments (paper: ~4.5M items, 100M+ comments)",
        collected.shops.len(),
        collected.items.len(),
        collected.comment_count()
    );
    println!(
        "crawl hygiene: {} pages, {} transient errors, {} malformed dropped, {} duplicates dropped",
        stats.pages_fetched,
        stats.transient_errors,
        stats.malformed_records,
        stats.duplicate_records
    );
    let policy = PolitenessPolicy::default();
    let budget = policy.account(&stats);
    println!(
        "politeness: {} requests at {:.1} rps aggregate → {} wall-clock \
         (paper: ~1 week on 3 servers at full scale)",
        budget.total_requests,
        budget.effective_rps,
        human_duration(budget.duration_secs)
    );

    // 3. Detect over the collected (unlabeled) data.
    let items: Vec<ItemComments> =
        collected.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
    let sales: Vec<u64> = collected.items.iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);
    let reported: Vec<usize> = reports.iter().filter(|r| r.is_fraud).map(|r| r.index).collect();
    println!(
        "reported {} fraud items of {} collected (paper: 10,720 of ~4.5M ≈ {:.2}%; measured {:.2}%)",
        reported.len(),
        collected.items.len(),
        100.0 * 10_720.0 / 4_500_000.0,
        100.0 * reported.len() as f64 / collected.items.len().max(1) as f64
    );

    // 4. Expert audit of a random sample of the reports, against latent
    //    ground truth.
    let truth: Vec<bool> = reported
        .iter()
        .map(|&idx| {
            let item_id = collected.items[idx].item_id;
            e.item(item_id).map(|it| it.label.is_fraud()).unwrap_or(false)
        })
        .collect();
    let panel = ExpertPanel { sample_size: 1_000, ..ExpertPanel::default() };
    let verdict = panel.audit(&truth);
    println!(
        "{}",
        render::table(
            &["Audit", "Sampled", "Confirmed", "Precision", "Paper"],
            &[vec![
                "expert panel".into(),
                verdict.sampled.to_string(),
                verdict.confirmed.to_string(),
                render::f3(verdict.precision),
                "1,000 / 960 / 0.96".into(),
            ]],
        )
    );
}
