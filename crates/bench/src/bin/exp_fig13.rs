//! Fig 13 (a–k) — cross-platform feature-distribution comparison.
//!
//! The paper plots all 11 feature distributions for fraud/normal items on
//! both platforms and argues (1) the fraud signatures agree across
//! platforms and (2) the fraud-vs-normal contrasts are similar. This
//! binary quantifies both with Kolmogorov–Smirnov distances per feature.

use cats_analysis::compare::FeatureComparison;
use cats_bench::{render, setup, Args};
use cats_core::{features, ItemComments};
use cats_platform::datasets;

fn main() {
    let args = Args::parse(0.004, 0xF1613);
    println!("== Fig 13: feature distributions across platforms (scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale * 10.0, args.seed);
    let pipeline = setup::train_deploy_pipeline(&d0, args.seed);
    let analyzer = pipeline.analyzer();

    // Platform A (labeled) rows by ground truth.
    let (fraud_a, normal_a) = setup::split_by_label(&d0);
    let rows_of = |items: &[&cats_platform::Item]| -> Vec<cats_core::FeatureVector> {
        let ics: Vec<ItemComments> = items.iter().map(|i| setup::item_comments(i)).collect();
        features::extract_batch(&ics, analyzer, 0)
    };
    let fa = rows_of(&fraud_a);
    let na = rows_of(&normal_a);

    // Platform B (crawled) rows by the detector's reports.
    let e = datasets::e_platform(args.scale, args.seed.wrapping_add(3));
    let items: Vec<ItemComments> = e.items().iter().map(setup::item_comments).collect();
    let sales: Vec<u64> = e.items().iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);
    let mut fraud_b = Vec::new();
    let mut normal_b = Vec::new();
    for (item, rep) in e.items().iter().zip(&reports) {
        if rep.is_fraud {
            fraud_b.push(item);
        } else {
            normal_b.push(item);
        }
    }
    println!("platform B reports: {} fraud / {} normal items", fraud_b.len(), normal_b.len());
    if fraud_b.is_empty() {
        println!("no reported frauds at this scale; rerun with a larger --scale");
        return;
    }
    let fb = rows_of(&fraud_b);
    let nb = rows_of(&normal_b);

    let cmp = FeatureComparison::compute(&fa, &na, &fb, &nb);
    let table_rows: Vec<Vec<String>> = cmp
        .rows()
        .into_iter()
        .map(|(name, ff, nn, ca, cb)| {
            vec![name.to_string(), render::f3(ff), render::f3(nn), render::f3(ca), render::f3(cb)]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &["Feature", "KS fraud A↔B", "KS normal A↔B", "KS F vs N (A)", "KS F vs N (B)"],
            &table_rows
        )
    );
    println!(
        "platforms agree (mean cross-platform KS < mean class contrast): {} \
         (paper: distributions 'roughly agree')",
        cmp.platforms_agree()
    );
}
