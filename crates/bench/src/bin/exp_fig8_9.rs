//! Figs 8–9 & Tables VIII–IX — word clouds / top-50 word lists.
//!
//! The paper's findings: (1) fraud items' top-50 words are dominated by
//! positive words on *both* platforms (the top 50 occupy ~28% of total
//! occurrences); (2) the fraud word lists of the two platforms agree;
//! (3) normal items' frequent words include genuine negative words.

use cats_analysis::WordFrequency;
use cats_bench::{render, setup, Args};
use cats_platform::datasets;
use cats_text::{Segmenter, WhitespaceSegmenter};

fn freq_of(items: &[&cats_platform::Item], stopwords: &[String]) -> WordFrequency {
    let seg = WhitespaceSegmenter;
    let mut wf = WordFrequency::with_stopwords(stopwords.iter().cloned());
    for item in items {
        for c in &item.comments {
            wf.add_comment(&seg.segment(&c.content));
        }
    }
    wf
}

fn main() {
    let args = Args::parse(0.01, 0xF189);
    println!("== Figs 8-9 / Tables VIII-IX: word frequency analysis (scale={}) ==", args.scale);

    // Platform A = the labeled (Taobao-like) platform; platform B = the
    // crawled (E-platform-like) one. Both speak the same synthetic
    // language, as the paper's platforms share Chinese.
    let a = datasets::d0(args.scale * 5.0, args.seed);
    let b = datasets::e_platform(args.scale, args.seed.wrapping_add(1));

    let (fraud_a, normal_a) = setup::split_by_label(&a);
    let (fraud_b, normal_b) = setup::split_by_label(&b);

    // The paper's lists contain no function words; drop the platform's
    // function vocabulary plus the template intensifiers, as its
    // segmentation pipeline evidently did.
    let mut stopwords: Vec<String> = a.lexicon().function().to_vec();
    stopwords.extend(["hen", "zhen", "feichang", "jiushi", "queshi"].map(String::from));
    let wf_fraud_a = freq_of(&fraud_a, &stopwords);
    let wf_fraud_b = freq_of(&fraud_b, &stopwords);
    let wf_normal_a = freq_of(&normal_a, &stopwords);
    let wf_normal_b = freq_of(&normal_b, &stopwords);

    // Ground-truth lexicon for the positivity measurements.
    let lex =
        cats_text::Lexicon::new(a.lexicon().positive().to_vec(), a.lexicon().negative().to_vec());

    for (name, wf, paper) in [
        ("fraud items, platform A (Taobao-like)", &wf_fraud_a, "top-50 all positive, ~28% of mass"),
        ("fraud items, platform B (E-platform-like)", &wf_fraud_b, "same as platform A"),
    ] {
        let top: Vec<String> = wf.top_k(15).into_iter().map(|(w, c)| format!("{w}({c})")).collect();
        println!("\n{name} (paper: {paper})");
        println!("top-15: {}", top.join(", "));
        println!(
            "top-50 positive-word share of total mass: {} ; positive fraction of top-50 words: {}",
            render::pct(wf.top_k_positive_share(50, &lex)),
            render::pct(wf.top_k_positive_fraction(50, &lex)),
        );
    }

    println!(
        "\ncross-platform agreement (Jaccard of top-50 sets): fraud {} / normal {} \
         (paper: the lists are 'very similar')",
        render::f3(wf_fraud_a.top_k_overlap(&wf_fraud_b, 50)),
        render::f3(wf_normal_a.top_k_overlap(&wf_normal_b, 50)),
    );

    // Fig 9: normal items contain negative words among frequent terms.
    for (name, wf) in
        [("normal items, platform A", &wf_normal_a), ("normal items, platform B", &wf_normal_b)]
    {
        let negs: Vec<String> = wf
            .top_k(100)
            .into_iter()
            .filter(|(w, _)| lex.is_negative(w))
            .map(|(w, c)| format!("{w}({c})"))
            .take(8)
            .collect();
        println!(
            "\n{name}: negative words among top-100 = [{}] (paper: frequent words \
             contain negative words like meiyong/buhao)",
            negs.join(", ")
        );
    }
}
