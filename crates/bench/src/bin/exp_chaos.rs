//! Chaos sweep — ingestion robustness under injected site faults.
//!
//! Not a paper table: the paper crawls a live site for a week and reports
//! no trouble, but a reproduction should know what its collector does when
//! the site misbehaves. This binary re-crawls the same E-platform preset
//! through a [`FaultPlan`] at increasing intensity and reports, per level:
//!
//! 1. **completeness** — items and comments recovered vs the clean crawl;
//! 2. **distribution shift** — mean/max Kolmogorov–Smirnov distance of
//!    the 11 feature distributions against the clean crawl's;
//! 3. **detector degradation** — precision/recall of the deployed
//!    detector against the platform's *full* latent ground truth, so data
//!    lost to outages shows up as recall loss rather than silent success.
//!
//! Every crawl runs on a fresh [`PublicSite`] with the same seed, so each
//! row is deterministic and rows differ only by fault intensity.

use cats_analysis::ks_distance;
use cats_bench::{render, setup, Args};
use cats_collector::{
    CollectedDataset, Collector, CollectorConfig, CrawlStats, FaultPlan, PublicSite, SiteConfig,
};
use cats_core::{features, CatsPipeline, DetectionSummary, ItemComments, N_FEATURES};
use cats_platform::{datasets, Platform};

/// Fault levels swept (0 = clean reference).
const INTENSITIES: [f64; 4] = [0.0, 0.25, 0.5, 0.75];

/// One deterministic crawl of `platform` under `faults`. Each crawl also
/// cross-checks the metrics-registry migration: the registry delta over
/// the crawl must equal the public [`CrawlStats`] field-for-field, so the
/// ad-hoc counters and their `cats.collector.crawl.*` mirrors can never
/// drift apart silently.
fn crawl_at(
    platform: &Platform,
    faults: FaultPlan,
) -> (CollectedDataset, CrawlStats, cats_obs::Snapshot) {
    let base = cats_obs::global().snapshot();
    let site = PublicSite::new(platform, SiteConfig { faults, ..SiteConfig::default() });
    let mut collector = Collector::new(CollectorConfig::default());
    let data = collector.crawl(&site);
    let stats = collector.stats();
    let reg = cats_obs::global().snapshot().diff(&base);
    for (name, want) in [
        ("pages_fetched", stats.pages_fetched),
        ("transient_errors", stats.transient_errors),
        ("rate_limited", stats.rate_limited),
        ("outage_errors", stats.outage_errors),
        ("pages_abandoned", stats.pages_abandoned),
        ("malformed_records", stats.malformed_records),
        ("duplicate_records", stats.duplicate_records),
        ("poisoned_records", stats.poisoned_records),
        ("backoff_waits", stats.backoff_waits),
        ("backoff_wait_secs", stats.backoff_wait_secs),
        ("breaker_opens", stats.breaker_opens),
        ("breaker_wait_secs", stats.breaker_wait_secs),
        ("breaker_give_ups", stats.breaker_give_ups),
        ("truncated_resources", stats.truncated_resources),
        ("stalled_pages", stats.stalled_pages),
        ("stall_secs", stats.stall_secs),
        ("sim_clock_secs", stats.sim_clock_secs),
    ] {
        let got = reg.counter(&format!("cats.collector.crawl.{name}"));
        assert_eq!(got, want, "registry counter cats.collector.crawl.{name} != CrawlStats.{name}");
    }
    (data, stats, reg)
}

/// Per-feature sample columns over the finite feature rows of a crawl.
fn feature_samples(data: &CollectedDataset, pipeline: &CatsPipeline) -> Vec<Vec<f64>> {
    let mut cols = vec![Vec::new(); N_FEATURES];
    for item in &data.items {
        if item.comments.is_empty() {
            continue;
        }
        let ic = ItemComments::from_texts(item.comment_texts());
        let fv = features::extract(&ic, pipeline.analyzer());
        if fv.is_finite() {
            for (col, &x) in cols.iter_mut().zip(fv.as_slice()) {
                col.push(x);
            }
        }
    }
    cols
}

/// Mean and max KS distance across feature columns (skipping any column
/// that ended up empty on either side).
fn ks_summary(clean: &[Vec<f64>], degraded: &[Vec<f64>]) -> (f64, f64) {
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    let mut n = 0usize;
    for (a, b) in clean.iter().zip(degraded) {
        if a.is_empty() || b.is_empty() {
            continue;
        }
        let d = ks_distance(a, b);
        sum += d;
        max = max.max(d);
        n += 1;
    }
    (if n > 0 { sum / n as f64 } else { 0.0 }, max)
}

fn main() {
    let args = Args::parse(0.002, 0xC4A0);
    println!("== chaos sweep: fault-injected ingestion (scale={}) ==", args.scale);

    // Pre-train the deployed detector exactly as the §IV experiment does.
    let d0 = datasets::d0(args.scale * 25.0, args.seed);
    let pipeline = setup::train_deploy_pipeline(&d0, args.seed);
    let e = datasets::e_platform(args.scale, args.seed.wrapping_add(3));
    let total_frauds = e.items().iter().filter(|i| i.label.is_fraud()).count();
    println!(
        "deployed on E-platform preset: {} items, {} latent frauds",
        e.items().len(),
        total_frauds
    );

    // Clean reference crawl: the completeness and KS baselines.
    let (clean, _, _) = crawl_at(&e, FaultPlan::none());
    let clean_cols = feature_samples(&clean, &pipeline);
    let clean_items = clean.items.len().max(1);
    let clean_comments = clean.comment_count().max(1);

    let mut rows = Vec::new();
    for &intensity in &INTENSITIES {
        let (data, stats, reg) = crawl_at(&e, FaultPlan::at_intensity(intensity));

        let items: Vec<ItemComments> =
            data.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
        let sales: Vec<u64> = data.items.iter().map(|i| i.sales_volume).collect();
        let reports = pipeline.detect(&items, &sales);
        let truncated = data.items.iter().filter(|i| i.truncated).count();
        let summary = DetectionSummary::from_reports(&reports).with_crawl_health(
            truncated,
            data.comment_count() as u64,
            stats.malformed_records + stats.duplicate_records + stats.poisoned_records,
        );

        // Recall denominator is the full latent fraud population, not just
        // what survived the crawl: missing data must cost recall.
        let mut reported = 0usize;
        let mut hits = 0usize;
        for r in reports.iter().filter(|r| r.is_fraud) {
            reported += 1;
            let truly_fraud =
                e.item(data.items[r.index].item_id).map(|it| it.label.is_fraud()).unwrap_or(false);
            hits += usize::from(truly_fraud);
        }
        let precision = if reported > 0 { hits as f64 / reported as f64 } else { 0.0 };
        let recall = hits as f64 / total_frauds.max(1) as f64;

        let cols = feature_samples(&data, &pipeline);
        let (ks_mean, ks_max) = ks_summary(&clean_cols, &cols);

        // Fault-handling numbers come from the metrics registry (crawl_at
        // already proved them equal to the CrawlStats fields).
        println!(
            "intensity {intensity:.2}: {} pages, {} backoff waits, {} breaker opens, \
             {} give-ups, {}s simulated waiting; health: {} quarantined, {} truncated, \
             {:.1}% comments dropped",
            reg.counter("cats.collector.crawl.pages_fetched"),
            reg.counter("cats.collector.crawl.backoff_waits"),
            reg.counter("cats.collector.crawl.breaker_opens"),
            reg.counter("cats.collector.crawl.breaker_give_ups"),
            reg.counter("cats.collector.crawl.sim_clock_secs"),
            summary.health.items_quarantined,
            summary.health.items_truncated,
            100.0 * summary.health.dropped_fraction,
        );

        rows.push(vec![
            format!("{intensity:.2}"),
            data.items.len().to_string(),
            render::pct(data.items.len() as f64 / clean_items as f64),
            render::pct(data.comment_count() as f64 / clean_comments as f64),
            truncated.to_string(),
            summary.quarantined.to_string(),
            render::f3(ks_mean),
            render::f3(ks_max),
            render::f3(precision),
            render::f3(recall),
        ]);
    }

    println!(
        "{}",
        render::table(
            &[
                "Intensity",
                "Items",
                "ItemCompl",
                "CommCompl",
                "Truncated",
                "Quarantined",
                "KSmean",
                "KSmax",
                "Precision",
                "Recall",
            ],
            &rows,
        )
    );
    println!(
        "(clean crawl: {} items, {} comments; KS over the {} feature \
         distributions vs the clean crawl)",
        clean.items.len(),
        clean.comment_count(),
        N_FEATURES
    );
    println!(
        "registry cross-check: cats.collector.crawl.* deltas matched CrawlStats \
         on all {} crawls",
        INTENSITIES.len() + 1
    );
}
