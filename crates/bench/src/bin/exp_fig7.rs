//! Fig 7 — feature importance of the Xgboost detector.
//!
//! The paper measures importance as "the times this feature is split
//! during the construction process" and finds every feature used, with
//! sumCommentLength, averageCommentEntropy and averageSentiment the top
//! three. This binary trains the GBT on D0 features and prints the
//! split-count ranking.

use cats_bench::{render, setup, Args};
use cats_core::{FEATURE_NAMES, N_FEATURES};
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::{Classifier, Dataset};

fn main() {
    let args = Args::parse(0.05, 0xF167);
    let platform = setup::d0(args.scale, args.seed);
    let analyzer = setup::train_analyzer(&platform, args.seed);
    println!("== Fig 7: GBT split-count feature importance (D0 scale={}) ==", args.scale);

    let items: Vec<_> = platform.items().iter().map(setup::item_comments).collect();
    let labels: Vec<u8> = platform.items().iter().map(setup::item_label).collect();
    let rows = cats_core::features::extract_batch(&items, &analyzer, 0);
    let mut data = Dataset::new(N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }
    let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
    gbt.fit(&data);

    let mut ranked: Vec<(usize, u64)> =
        gbt.feature_importance().iter().copied().enumerate().collect();
    ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

    let gains = gbt.feature_gain();
    let table_rows: Vec<Vec<String>> = ranked
        .iter()
        .map(|&(f, c)| {
            vec![FEATURE_NAMES[f].to_string(), c.to_string(), format!("{:.1}", gains[f])]
        })
        .collect();
    println!(
        "{}",
        render::table(&["Feature", "Split count (paper's metric)", "Total gain"], &table_rows)
    );

    let used = ranked.iter().filter(|&&(_, c)| c > 0).count();
    println!(
        "features used: {used}/{N_FEATURES} (paper: all features important; top-3 = \
         sumCommentLength, averageCommentEntropy, averageSentiment)"
    );
    let top3: Vec<&str> = ranked.iter().take(3).map(|&(f, _)| FEATURE_NAMES[f]).collect();
    println!("measured top-3: {top3:?}");
}
