//! Extension — online serving throughput, latency, hot-swap and
//! backpressure.
//!
//! The paper frames CATS as a third-party detection service platforms
//! query (§I); this experiment measures that serving layer end to end
//! through real sockets: concurrent clients POST comment batches to an
//! in-process `cats-serve` instance and the run reports sustained
//! request throughput, request latency percentiles, zero-drop model
//! hot-swap under load, and typed 429 backpressure under a deliberately
//! tiny queue.
//!
//! Output: `BENCH_serve.json`, consumed by `scripts/bench_gate.sh`
//! which compares `sustained_rps` against the committed floor baseline
//! in `results/baselines/` and fails CI on regression.

use cats_bench::{render, setup, Args};
use cats_core::{CatsPipeline, DetectorConfig, PipelineSnapshot};
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::{Classifier, Dataset};
use cats_serve::{BatchConfig, ModelSlot, ScoreClient, ScoreItem, ServeConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent client threads in the load phases.
const CLIENTS: usize = 4;
/// Items per scoring request.
const ITEMS_PER_REQUEST: usize = 8;
/// Wall-clock length of the sustained-load phase.
const LOAD_SECS: f64 = 2.0;
/// Model swaps performed during the hot-swap phase.
const SWAPS: usize = 5;

/// Exact percentile from a sorted sample (nearest-rank).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

/// Serializes a snapshot equivalent to `pipeline` (same analyzer, a GBT
/// retrained deterministically on the same data), so the hot-swap phase
/// can mint interchangeable models cheaply via [`PipelineSnapshot`].
fn snapshot_json(pipeline: &CatsPipeline, platform: &cats_platform::Platform) -> String {
    let items: Vec<_> = platform.items().iter().map(setup::item_comments).collect();
    let labels: Vec<u8> = platform.items().iter().map(setup::item_label).collect();
    let rows = cats_core::features::extract_batch(&items, pipeline.analyzer(), 0);
    let mut data = Dataset::new(cats_core::N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }
    let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
    gbt.fit(&data);
    CatsPipeline::snapshot(pipeline.analyzer().clone(), DetectorConfig::default(), gbt)
        .to_json()
        .expect("snapshot serializes")
}

/// Outcome of one load phase.
struct LoadStats {
    requests: u64,
    items: u64,
    /// Requests that failed with anything other than 429/503.
    dropped: u64,
    /// 429/503 rejections (expected only in the backpressure phase).
    rejected: u64,
    elapsed_s: f64,
    latencies_ms: Vec<f64>,
    versions_seen: Vec<u64>,
}

/// Hammers `addr` from [`CLIENTS`] threads until `run_for` elapses.
fn drive_load(addr: &str, pool: &[ScoreItem], run_for: Duration) -> LoadStats {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.to_string();
            let stop = stop.clone();
            let pool = pool.to_vec();
            std::thread::spawn(move || {
                let client = ScoreClient::new(addr).with_timeout(Duration::from_secs(30));
                let mut latencies = Vec::new();
                let mut versions: Vec<u64> = Vec::new();
                let (mut requests, mut items, mut dropped, mut rejected) = (0u64, 0u64, 0u64, 0u64);
                let mut cursor = c * ITEMS_PER_REQUEST;
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<ScoreItem> = (0..ITEMS_PER_REQUEST)
                        .map(|k| pool[(cursor + k) % pool.len()].clone())
                        .collect();
                    cursor = (cursor + ITEMS_PER_REQUEST) % pool.len();
                    let t0 = Instant::now();
                    match client.score(&batch) {
                        Ok(resp) => {
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            requests += 1;
                            items += resp.verdicts.len() as u64;
                            if !versions.contains(&resp.model_version) {
                                versions.push(resp.model_version);
                            }
                            assert_eq!(
                                resp.verdicts.len(),
                                batch.len(),
                                "every submitted item gets a verdict"
                            );
                        }
                        Err(cats_serve::ClientError::Http { status: 429 | 503, .. }) => {
                            rejected += 1;
                        }
                        Err(_) => dropped += 1,
                    }
                }
                (latencies, versions, requests, items, dropped, rejected)
            })
        })
        .collect();
    std::thread::sleep(run_for);
    stop.store(true, Ordering::Relaxed);
    let mut out = LoadStats {
        requests: 0,
        items: 0,
        dropped: 0,
        rejected: 0,
        elapsed_s: 0.0,
        latencies_ms: Vec::new(),
        versions_seen: Vec::new(),
    };
    for h in handles {
        let (lat, versions, requests, items, dropped, rejected) = h.join().expect("client thread");
        out.latencies_ms.extend(lat);
        for v in versions {
            if !out.versions_seen.contains(&v) {
                out.versions_seen.push(v);
            }
        }
        out.requests += requests;
        out.items += items;
        out.dropped += dropped;
        out.rejected += rejected;
    }
    out.elapsed_s = started.elapsed().as_secs_f64();
    out.latencies_ms.sort_by(f64::total_cmp);
    out.versions_seen.sort_unstable();
    out
}

fn main() {
    let args = Args::parse(0.01, 0x5E12);
    let platform = setup::d0(args.scale, args.seed);
    println!("== Extension: online serving ({} items) ==", platform.items().len());

    println!("training pipeline...");
    let pipeline = setup::train_pipeline(&platform, args.seed);
    let swap_json = snapshot_json(&pipeline, &platform);
    let pool: Vec<ScoreItem> = platform
        .items()
        .iter()
        .map(|it| ScoreItem {
            item_id: it.id,
            sales_volume: it.sales_volume,
            comments: it.comments.iter().map(|c| c.content.clone()).collect(),
        })
        .collect();

    let slot = Arc::new(ModelSlot::new(pipeline));
    let server = cats_bench::net::start_server_retrying(
        slot.clone(),
        ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() },
    );
    let addr = server.addr().to_string();
    println!("serving on {addr} ({CLIENTS} clients x {ITEMS_PER_REQUEST} items/request)");

    // Phase 1: sustained load.
    let load = drive_load(&addr, &pool, Duration::from_secs_f64(LOAD_SECS));
    let sustained_rps = load.requests as f64 / load.elapsed_s;
    let items_per_s = load.items as f64 / load.elapsed_s;
    let (p50, p95, p99) = (
        percentile(&load.latencies_ms, 0.50),
        percentile(&load.latencies_ms, 0.95),
        percentile(&load.latencies_ms, 0.99),
    );
    assert_eq!(load.dropped, 0, "sustained load must not drop requests");
    assert_eq!(load.rejected, 0, "default queue must absorb this load");

    // Phase 2: hot-swap under the same load — zero drops allowed.
    let swaps_done = Arc::new(AtomicU64::new(0));
    let swap_stop = Arc::new(AtomicBool::new(false));
    let swapper = {
        let (slot, done, stop) = (slot.clone(), swaps_done.clone(), swap_stop.clone());
        let json = swap_json.clone();
        std::thread::spawn(move || {
            for _ in 0..SWAPS {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let snap = PipelineSnapshot::from_json(&json).expect("swap snapshot parses");
                slot.swap(CatsPipeline::restore(snap));
                done.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(200));
            }
        })
    };
    let swap_load = drive_load(&addr, &pool, Duration::from_secs_f64(LOAD_SECS));
    swap_stop.store(true, Ordering::Relaxed);
    swapper.join().expect("swapper thread");
    let swaps = swaps_done.load(Ordering::Relaxed);
    assert_eq!(swap_load.dropped, 0, "hot-swap under load must not drop requests");
    assert!(
        swap_load.versions_seen.len() > 1,
        "load must observe more than one model version across {swaps} swaps: {:?}",
        swap_load.versions_seen
    );

    // Phase 3: backpressure probe — a tiny queue plus a long coalescing
    // window must answer 429, quickly, instead of stalling sockets.
    let probe_slot = {
        let snap = PipelineSnapshot::from_json(&swap_json).expect("probe snapshot parses");
        Arc::new(ModelSlot::new(CatsPipeline::restore(snap)))
    };
    let probe = cats_bench::net::start_server_retrying(
        probe_slot,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig {
                max_batch_items: 10_000,
                max_delay: Duration::from_millis(500),
                queue_capacity: 1,
                workers: 1,
            },
            ..ServeConfig::default()
        },
    );
    let probe_addr = probe.addr().to_string();
    let probe_t0 = Instant::now();
    let probe_handles: Vec<_> = (0..16)
        .map(|i| {
            let addr = probe_addr.clone();
            let item = pool[i % pool.len()].clone();
            std::thread::spawn(move || {
                let client = ScoreClient::new(addr).with_timeout(Duration::from_secs(30));
                match client.score(&[item]) {
                    Ok(_) => (1u64, 0u64, 0u64),
                    Err(cats_serve::ClientError::Http { status: 429, .. }) => (0, 1, 0),
                    Err(_) => (0, 0, 1),
                }
            })
        })
        .collect();
    let (mut accepted, mut rejected_429, mut failed) = (0u64, 0u64, 0u64);
    for h in probe_handles {
        let (a, r, f) = h.join().expect("probe thread");
        accepted += a;
        rejected_429 += r;
        failed += f;
    }
    let probe_s = probe_t0.elapsed().as_secs_f64();
    probe.shutdown();
    assert!(rejected_429 > 0, "tiny queue must reject some of 16 concurrent requests");
    assert_eq!(failed, 0, "overload must map to 429, not broken sockets");
    assert!(probe_s < 20.0, "overload must resolve fast, took {probe_s:.1}s");

    server.shutdown();

    println!(
        "{}",
        render::table(
            &["Phase", "Requests", "RPS", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
            &[
                vec![
                    "sustained".into(),
                    load.requests.to_string(),
                    format!("{sustained_rps:.1}"),
                    format!("{p50:.2}"),
                    format!("{p95:.2}"),
                    format!("{p99:.2}"),
                ],
                vec![
                    "hot-swap".into(),
                    swap_load.requests.to_string(),
                    format!("{:.1}", swap_load.requests as f64 / swap_load.elapsed_s),
                    format!("{:.2}", percentile(&swap_load.latencies_ms, 0.50)),
                    format!("{:.2}", percentile(&swap_load.latencies_ms, 0.95)),
                    format!("{:.2}", percentile(&swap_load.latencies_ms, 0.99)),
                ],
            ],
        )
    );
    println!(
        "hot-swap: {swaps} swaps, versions seen {:?}, 0 dropped; backpressure: {accepted} accepted / {rejected_429} x 429",
        swap_load.versions_seen
    );

    // Machine-readable output for scripts/bench_gate.sh. Hand-rolled
    // JSON: the bench crate deliberately has no serde dependency.
    let versions: Vec<String> = swap_load.versions_seen.iter().map(u64::to_string).collect();
    let json = format!(
        "{{\n  \"experiment\": \"exp_serve\",\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"machine_threads\": {},\n  \"clients\": {},\n  \"items_per_request\": {},\n  \
         \"load\": {{\"requests\": {}, \"duration_s\": {:.3}, \"sustained_rps\": {:.2}, \
         \"items_per_s\": {:.2}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}},\n  \
         \"hot_swap\": {{\"requests\": {}, \"swaps\": {}, \"versions_seen\": [{}], \
         \"dropped\": {}}},\n  \
         \"backpressure\": {{\"attempts\": 16, \"accepted\": {}, \"rejected_429\": {}, \
         \"failed\": {}, \"resolved_s\": {:.3}}}\n}}\n",
        args.scale,
        args.seed,
        cats_par::default_threads(),
        CLIENTS,
        ITEMS_PER_REQUEST,
        load.requests,
        load.elapsed_s,
        sustained_rps,
        items_per_s,
        p50,
        p95,
        p99,
        swap_load.requests,
        swaps,
        versions.join(", "),
        swap_load.dropped,
        accepted,
        rejected_429,
        failed,
        probe_s,
    );
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
