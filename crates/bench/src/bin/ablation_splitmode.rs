//! Ablation — exact vs histogram (approximate) split finding in the GBT.
//!
//! The XGBoost reference (the paper's reference 12) motivates its approximate
//! quantile-sketch algorithm by training-time savings at equal accuracy.
//! This ablation trains the detector's GBT on CATS features under both
//! modes and a range of bin counts, comparing 5-fold CV quality and
//! wall-clock fit time.

use cats_bench::{render, setup, Args};
use cats_core::N_FEATURES;
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees, SplitMode};
use cats_ml::model_selection::cross_validate;
use cats_ml::Dataset;
use std::time::Instant;

fn main() {
    let args = Args::parse(0.05, 0xAB1E);
    let platform = setup::d0(args.scale, args.seed);
    let analyzer = setup::train_analyzer(&platform, args.seed);
    println!("== Ablation: GBT split mode (D0 scale={}) ==", args.scale);

    let items: Vec<_> = platform.items().iter().map(setup::item_comments).collect();
    let labels: Vec<u8> = platform.items().iter().map(setup::item_label).collect();
    let rows = cats_core::features::extract_batch(&items, &analyzer, 0);
    let mut data = Dataset::new(N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }
    println!("feature dataset: {} rows", data.len());

    let variants: Vec<(String, SplitMode)> = vec![
        ("exact".into(), SplitMode::Exact),
        ("histogram(8)".into(), SplitMode::Histogram { bins: 8 }),
        ("histogram(32)".into(), SplitMode::Histogram { bins: 32 }),
        ("histogram(128)".into(), SplitMode::Histogram { bins: 128 }),
    ];

    let mut out_rows = Vec::new();
    for (name, mode) in variants {
        let cfg = GbtConfig { split_mode: mode, ..GbtConfig::default() };
        // Fit time on the full dataset (median of 3).
        let mut times = Vec::new();
        for _ in 0..3 {
            let mut m = GradientBoostedTrees::new(cfg);
            let t0 = Instant::now();
            use cats_ml::Classifier;
            m.fit(&data);
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let fit_time = times[1];

        let mut m = GradientBoostedTrees::new(cfg);
        let cv = cross_validate(&mut m, &data, 5, args.seed);
        out_rows.push(vec![
            name,
            render::f3(cv.precision),
            render::f3(cv.recall),
            render::f3(cv.f1),
            format!("{fit_time:.3}s"),
        ]);
    }
    println!(
        "{}",
        render::table(&["Split mode", "Precision", "Recall", "F1", "Fit time"], &out_rows)
    );
    println!(
        "(the XGBoost reference's claim: the approximate algorithm matches exact \
         accuracy at a fraction of the split-search cost on large data)"
    );
}
