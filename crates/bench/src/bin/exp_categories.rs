//! §VI — deployment: per-category detection.
//!
//! The paper reports CATS partially incorporated into Taobao, detecting
//! fraud items "in eight categories: men's clothing, women's clothing,
//! men's shoes, women's shoes, computer & office, phone & accessories,
//! food & grocery and sports & outdoors … with a high accuracy from
//! millions of e-commerce items belonging to third-party shops." This
//! binary runs the trained detector per category over a D1-shaped stream
//! and reports per-category precision/recall — the deployment dashboard
//! the paper describes.

use cats_bench::{render, setup, Args};
use cats_core::pipeline::{calibrate_balanced_threshold, CatsPipeline};
use cats_core::ItemComments;
use cats_ml::metrics::BinaryMetrics;
use cats_platform::{datasets, Category};

fn main() {
    let args = Args::parse(0.01, 0xCA7E);
    println!("== §VI deployment: per-category detection (scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale * 5.0, args.seed);
    let mut pipeline = setup::train_pipeline(&d0, args.seed);

    // Calibrate the balanced operating point on a production-shaped holdout
    // (the same procedure as exp_table6).
    let holdout = datasets::d1(args.scale * 0.4, args.seed.wrapping_add(101));
    let h_items: Vec<ItemComments> = holdout.items().iter().map(setup::item_comments).collect();
    let h_sales: Vec<u64> = holdout.items().iter().map(|i| i.sales_volume).collect();
    let h_reports = pipeline.detect(&h_items, &h_sales);
    let h_labels: Vec<u8> = holdout.items().iter().map(setup::item_label).collect();
    let t = calibrate_balanced_threshold(&h_reports, &h_labels);
    pipeline.detector_mut().set_threshold(t);
    println!("operating threshold: {t:.3}");

    let d1 = datasets::d1(args.scale, args.seed.wrapping_add(7));
    let items: Vec<ItemComments> = d1.items().iter().map(setup::item_comments).collect();
    let sales: Vec<u64> = d1.items().iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);

    let mut rows = Vec::new();
    for cat in Category::ALL {
        let idx: Vec<usize> = d1
            .items()
            .iter()
            .enumerate()
            .filter(|(_, it)| it.category == cat)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let labels: Vec<u8> = idx.iter().map(|&i| setup::item_label(&d1.items()[i])).collect();
        let preds: Vec<bool> = idx.iter().map(|&i| reports[i].is_fraud).collect();
        let m = BinaryMetrics::compute(&labels, &preds);
        let frauds = labels.iter().filter(|&&l| l == 1).count();
        rows.push(vec![
            cat.name().to_string(),
            idx.len().to_string(),
            frauds.to_string(),
            preds.iter().filter(|&&p| p).count().to_string(),
            render::f3(m.precision),
            render::f3(m.recall),
            render::f3(m.f1),
        ]);
    }
    println!(
        "{}",
        render::table(
            &["Category", "Items", "Frauds", "Reported", "Precision", "Recall", "F1"],
            &rows
        )
    );

    let all_labels: Vec<u8> = d1.items().iter().map(setup::item_label).collect();
    let overall = CatsPipeline::evaluate(&reports, &all_labels);
    println!(
        "overall across categories: {overall} (paper: 'high accuracy from millions of items')"
    );
}
