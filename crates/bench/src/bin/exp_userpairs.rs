//! §V (user aspect) — risky users and risky pairs.
//!
//! The paper: 20% of risky users (buyers of reported fraud items)
//! purchased fraud items more than once, with extremes above 400
//! purchases; 83,745 pairs of risky users co-purchased 2+ of the same
//! fraud items, and those pairs collapse to just 1,056 distinct users —
//! the fingerprint of hired promotion pools.

use cats_analysis::users::mine_risky_pairs;
use cats_bench::{render, setup, Args};
use cats_collector::{Collector, CollectorConfig, PublicSite, SiteConfig};
use cats_core::ItemComments;
use cats_platform::datasets;

fn main() {
    let args = Args::parse(0.002, 0xF19A);
    println!("== §V: risky users and risky pairs (scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale * 25.0, args.seed);
    let pipeline = setup::train_deploy_pipeline(&d0, args.seed);
    let e = datasets::e_platform(args.scale, args.seed.wrapping_add(3));
    let site = PublicSite::new(&e, SiteConfig::default());
    let collected = Collector::new(CollectorConfig::default()).crawl(&site);

    let items: Vec<ItemComments> =
        collected.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
    let sales: Vec<u64> = collected.items.iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);
    let fraud_items: Vec<&cats_collector::CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| r.is_fraud).map(|(i, _)| i).collect();
    println!("reported fraud items: {}", fraud_items.len());

    let mined = mine_risky_pairs(&fraud_items, 2);
    println!(
        "{}",
        render::table(
            &["Quantity", "Measured", "Paper"],
            &[
                vec![
                    "risky users buying >1 fraud item".into(),
                    render::pct(mined.repeat_buyer_share),
                    "20%".into(),
                ],
                vec![
                    "max fraud purchases by one user".into(),
                    mined.max_purchases_by_one_user.to_string(),
                    "400+".into(),
                ],
                vec![
                    "risky pairs sharing 2+ fraud items".into(),
                    mined.n_pairs.to_string(),
                    "83,745".into(),
                ],
                vec![
                    "distinct users in those pairs".into(),
                    mined.n_users.to_string(),
                    "1,056".into(),
                ],
            ],
        )
    );
    if mined.n_pairs > 0 {
        println!(
            "pair concentration: {:.1} pairs per participating user \
             (high concentration = pooled promoters, the paper's conjecture)",
            mined.n_pairs as f64 / mined.n_users.max(1) as f64
        );
    }
}
