//! Table I — the positive set *P* and negative set *N*.
//!
//! Trains word2vec on the D0 platform's comment corpus and expands the
//! canonical seed words. The paper's headline result here is qualitative:
//! the expansion recovers ~200 words per polarity *including homograph
//! variants of 好评* that experts would miss; our generator plants the
//! variants `haopping`/`haopin`/`haoqing` of `haoping` and this
//! experiment reports whether they were discovered.

use cats_bench::{render, setup, Args};
use cats_embedding::{expand_lexicon, ExpansionConfig};
use cats_platform::lexicon::HAOPING_VARIANTS;

fn main() {
    let args = Args::parse(0.02, 0xCA75);
    let platform = setup::d0(args.scale, args.seed);
    println!("== Table I: seed expansion on D0(scale={}, seed={}) ==", args.scale, args.seed);

    let corpus: Vec<&str> = platform
        .items()
        .iter()
        .flat_map(|i| i.comments.iter().map(|c| c.content.as_str()))
        .take(setup::MAX_W2V_COMMENTS)
        .collect();
    println!("word2vec corpus: {} comments", corpus.len());
    let embedding = cats_core::SemanticAnalyzer::train_embedding(&corpus, setup::experiment_w2v());

    let pos_seeds = platform.lexicon().positive_seeds();
    let neg_seeds = platform.lexicon().negative_seeds();
    let lexicon = expand_lexicon(&embedding, &pos_seeds, &neg_seeds, ExpansionConfig::default());

    println!(
        "expanded sizes: |P| = {} (paper ~200), |N| = {} (paper ~200)",
        lexicon.positive_len(),
        lexicon.negative_len()
    );

    // Precision of the expansion against latent ground truth.
    let truth = platform.lexicon();
    let correct_pos =
        lexicon.positive_words().filter(|w| truth.positive().iter().any(|p| p == w)).count();
    let correct_neg =
        lexicon.negative_words().filter(|w| truth.negative().iter().any(|p| p == w)).count();
    println!(
        "expansion precision: P {} / N {}",
        render::pct(correct_pos as f64 / lexicon.positive_len().max(1) as f64),
        render::pct(correct_neg as f64 / lexicon.negative_len().max(1) as f64),
    );

    // The homograph-discovery claim.
    let found: Vec<&str> =
        HAOPING_VARIANTS.iter().copied().filter(|v| lexicon.is_positive(v)).collect();
    println!(
        "homograph variants of `haoping` discovered: {}/{} ({:?})",
        found.len(),
        HAOPING_VARIANTS.len(),
        found
    );

    let mut sample_p: Vec<String> = lexicon.positive_words().map(String::from).collect();
    sample_p.sort();
    sample_p.truncate(10);
    let mut sample_n: Vec<String> = lexicon.negative_words().map(String::from).collect();
    sample_n.sort();
    sample_n.truncate(10);
    println!(
        "{}",
        render::table(
            &["Type", "Keywords (sample)"],
            &[
                vec!["Positive Set".into(), sample_p.join(", ")],
                vec!["Negative Set".into(), sample_n.join(", ")],
            ],
        )
    );
}
