//! Fig 11 — userExpValue distributions of fraud vs normal buyers.
//!
//! The paper's user-aspect findings on E-platform: among buyers of the
//! reported fraud items, 45% have userExpValue below 2,000, 39% below
//! 1,000, and 15% sit at the floor value 100; among all users only ~20%
//! are below 2,000; and 70% of fraud items have their average buyer
//! reliability (avgUserExpValue) below the population expectation.

use cats_analysis::users::{avg_user_exp, share_at, share_below, unique_buyers};
use cats_bench::{render, setup, Args};
use cats_collector::{Collector, CollectorConfig, PublicSite, SiteConfig};
use cats_core::ItemComments;
use cats_platform::datasets;

fn main() {
    let args = Args::parse(0.002, 0xF1611);
    println!("== Fig 11: userExpValue of fraud vs normal buyers (scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale * 25.0, args.seed);
    let pipeline = setup::train_deploy_pipeline(&d0, args.seed);
    let e = datasets::e_platform(args.scale, args.seed.wrapping_add(3));

    // Crawl the public site, then classify — this analysis only uses
    // public comment metadata, exactly as the paper's does.
    let site = PublicSite::new(&e, SiteConfig::default());
    let collected = Collector::new(CollectorConfig::default()).crawl(&site);
    let items: Vec<ItemComments> =
        collected.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
    let sales: Vec<u64> = collected.items.iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);

    let fraud_items: Vec<&cats_collector::CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| r.is_fraud).map(|(i, _)| i).collect();
    let normal_items: Vec<&cats_collector::CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| !r.is_fraud).map(|(i, _)| i).collect();

    let fraud_buyers = unique_buyers(&fraud_items);
    let normal_buyers = unique_buyers(&normal_items);
    println!(
        "unique buyers: {} of reported fraud items, {} of normal items",
        fraud_buyers.len(),
        normal_buyers.len()
    );

    let rows = vec![
        vec![
            "fraud buyers".to_string(),
            render::pct(share_below(&fraud_buyers, 2_000)),
            render::pct(share_below(&fraud_buyers, 1_000)),
            render::pct(share_at(&fraud_buyers, 100)),
            "45% / 39% / 15%".to_string(),
        ],
        vec![
            "normal buyers".to_string(),
            render::pct(share_below(&normal_buyers, 2_000)),
            render::pct(share_below(&normal_buyers, 1_000)),
            render::pct(share_at(&normal_buyers, 100)),
            "much lower".to_string(),
        ],
    ];
    println!(
        "{}",
        render::table(&["Buyers", "<2000", "<1000", "=100", "Paper (<2000/<1000/=100)"], &rows)
    );

    // Overall population share below 2,000 (paper ~20%).
    let overall_below =
        e.users().iter().filter(|u| u.exp_value < 2_000).count() as f64 / e.users().len() as f64;
    println!("overall users below 2,000: {} (paper ~20%)", render::pct(overall_below));

    // avgUserExpValue vs population mean (paper: 70% of fraud items below).
    let pop_mean =
        e.users().iter().map(|u| u.exp_value as f64).sum::<f64>() / e.users().len() as f64;
    let below_mean =
        fraud_items.iter().filter_map(|i| avg_user_exp(i)).filter(|&a| a < pop_mean).count() as f64
            / fraud_items.len().max(1) as f64;
    println!(
        "fraud items with avgUserExpValue below the population mean ({pop_mean:.0}): {} \
         (paper: 70%)",
        render::pct(below_mean)
    );
}
