//! Extension — full-pipeline thread scaling.
//!
//! The paper runs CATS on a 40-vCPU server and notes the feature
//! extractor "is implemented in a parallelized style for fast
//! processing". This experiment sweeps the whole training pipeline —
//! corpus segmentation, embedding + sentiment training, detector fit,
//! and batch detection — over thread counts and reports per-stage wall
//! times plus the end-to-end speedup.
//!
//! Each sweep row is bracketed by a [`cats_obs::StageTimer`], so
//! `BENCH_scaling.json` embeds the row's full [`cats_obs::RunProfile`]
//! (every span down to word2vec epochs and GBT rounds) and the deepest
//! row is also written standalone to `PROFILE_scaling.json` for CI
//! artifact upload. Stage wall times in the table come from `Instant`,
//! not the observer clock, so the table stays meaningful under
//! `CATS_OBS=off` — which is exactly how the observability overhead is
//! measured (see EXPERIMENTS.md).

use cats_bench::{render, setup, Args};
use cats_core::pipeline::PipelineSnapshot;
use cats_core::{
    CatsPipeline, Detector, DetectorConfig, ItemComments, SemanticAnalyzer, N_FEATURES,
};
use cats_embedding::{expand_lexicon, ExpansionConfig, Word2VecConfig, Word2VecTrainer};
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::{ColMatrix, Dataset};
use cats_par::Parallelism;
use cats_sentiment::SentimentModel;
use cats_text::{Corpus, Segmenter, WhitespaceSegmenter};
use std::time::Instant;

/// One sweep row: per-stage and total wall times at a thread count.
struct Row {
    threads: usize,
    segment_s: f64,
    embed_s: f64,
    fit_s: f64,
    detect_s: f64,
    profile: cats_obs::RunProfile,
}

impl Row {
    fn total(&self) -> f64 {
        self.segment_s + self.embed_s + self.fit_s + self.detect_s
    }
}

/// Runs the full training + detection pipeline once at `threads`,
/// timing each stage.
fn run_once(
    platform: &cats_platform::Platform,
    items: &[ItemComments],
    sales: &[u64],
    labels: &[u8],
    seed: u64,
    threads: usize,
) -> Row {
    let label = format!("exp_scaling threads={threads}");
    let timer = cats_obs::StageTimer::start(&label);
    let par = Parallelism { threads, deterministic: true };
    let seg = WhitespaceSegmenter;

    // Stage 1: corpus segmentation (work-stealing batch segmentation).
    let corpus_texts: Vec<&str> = platform
        .items()
        .iter()
        .flat_map(|i| i.comments.iter().map(|c| c.content.as_str()))
        .take(setup::MAX_W2V_COMMENTS)
        .collect();
    let t0 = Instant::now();
    let segment_span = cats_obs::span!("cats.bench.scaling.segment", { corpus_texts.len() });
    let mut corpus = Corpus::new();
    corpus.push_texts(&corpus_texts, &seg, par);
    drop(segment_span);
    let segment_s = t0.elapsed().as_secs_f64();

    // Stage 2: embedding + lexicon expansion + sentiment training.
    let (sent_pos, sent_neg) =
        setup::sentiment_corpus(platform.lexicon(), setup::SENTIMENT_REVIEWS, seed);
    let t0 = Instant::now();
    let embed_span = cats_obs::span!("cats.bench.scaling.embed");
    let w2v = Word2VecConfig { parallelism: par, ..setup::experiment_w2v() };
    let embedding = Word2VecTrainer::new(w2v).train(&corpus);
    let lexicon = expand_lexicon(
        &embedding,
        &platform.lexicon().positive_seeds(),
        &platform.lexicon().negative_seeds(),
        ExpansionConfig::default(),
    );
    let seg_docs = |texts: &[String]| -> Vec<Vec<String>> {
        cats_par::map_chunked(par, texts, |t| seg.segment(t))
    };
    let sentiment = SentimentModel::train_par(&seg_docs(&sent_pos), &seg_docs(&sent_neg), par);
    let analyzer = SemanticAnalyzer::from_parts(lexicon, sentiment);
    drop(embed_span);
    let embed_s = t0.elapsed().as_secs_f64();

    // Stage 3: detector fit (parallel extraction + parallel GBT).
    let t0 = Instant::now();
    let fit_span = cats_obs::span!("cats.bench.scaling.fit", { items.len() });
    let gbt = GradientBoostedTrees::new(GbtConfig { parallelism: par, ..GbtConfig::default() });
    let mut detector = Detector::new(
        DetectorConfig { parallelism: par, ..DetectorConfig::default() },
        Box::new(gbt),
    );
    detector.fit(items, labels, &analyzer);
    drop(fit_span);
    let fit_s = t0.elapsed().as_secs_f64();

    // Stage 4: batch detection.
    let t0 = Instant::now();
    let detect_span = cats_obs::span!("cats.bench.scaling.detect", { items.len() });
    let reports = detector.detect(items, sales, &analyzer);
    drop(detect_span);
    let detect_s = t0.elapsed().as_secs_f64();
    assert_eq!(reports.len(), items.len());

    Row { threads, segment_s, embed_s, fit_s, detect_s, profile: timer.finish() }
}

/// Results of the model-format phase: snapshot persistence and batch
/// scoring, CATS-IO2 + branch-lite flat forest vs JSON + recursive walk.
struct FormatPhase {
    json_bytes: usize,
    io2_bytes: usize,
    size_ratio: f64,
    json_load_s: f64,
    io2_load_s: f64,
    load_speedup: f64,
    score_recursive_items_s: f64,
    score_flat_items_s: f64,
    score_speedup: f64,
    score_bit_identical: bool,
}

/// Trains the pipeline once, then measures (a) snapshot decode time
/// under the legacy JSON format vs the CATS-IO2 binary container and
/// (b) batch margin scoring through the recursive enum walk vs the
/// branch-lite flat node pool over a column-major feature matrix.
fn format_phase(
    platform: &cats_platform::Platform,
    items: &[ItemComments],
    labels: &[u8],
    seed: u64,
) -> FormatPhase {
    let par = Parallelism { threads: cats_par::default_threads().min(8), deterministic: true };
    let seg = WhitespaceSegmenter;
    let corpus_texts: Vec<&str> = platform
        .items()
        .iter()
        .flat_map(|i| i.comments.iter().map(|c| c.content.as_str()))
        .take(setup::MAX_W2V_COMMENTS)
        .collect();
    let mut corpus = Corpus::new();
    corpus.push_texts(&corpus_texts, &seg, par);
    let (sent_pos, sent_neg) =
        setup::sentiment_corpus(platform.lexicon(), setup::SENTIMENT_REVIEWS, seed);
    let w2v = Word2VecConfig { parallelism: par, ..setup::experiment_w2v() };
    let embedding = Word2VecTrainer::new(w2v).train(&corpus);
    let lexicon = expand_lexicon(
        &embedding,
        &platform.lexicon().positive_seeds(),
        &platform.lexicon().negative_seeds(),
        ExpansionConfig::default(),
    );
    let seg_docs = |texts: &[String]| -> Vec<Vec<String>> {
        cats_par::map_chunked(par, texts, |t| seg.segment(t))
    };
    let sentiment = SentimentModel::train_par(&seg_docs(&sent_pos), &seg_docs(&sent_neg), par);
    let analyzer = SemanticAnalyzer::from_parts(lexicon, sentiment);

    let rows = cats_core::features::extract_batch(items, &analyzer, par.threads);
    let mut data = Dataset::new(N_FEATURES);
    for (r, &l) in rows.iter().zip(labels) {
        data.push(r.as_slice(), l);
    }
    let mut gbt = GradientBoostedTrees::new(GbtConfig { parallelism: par, ..GbtConfig::default() });
    gbt.fit(&data);

    // Batch scoring: the recursive enum-arena walk row-by-row vs the
    // flat pool's 8-row-chunked, tree-major batch over column-major
    // features. Both must agree bit-for-bit before the timing counts.
    let n_rows = rows.len();
    let mut x = Vec::with_capacity(n_rows * N_FEATURES);
    for r in &rows {
        x.extend_from_slice(r.as_slice());
    }
    let cols = ColMatrix::from_row_major(&x, N_FEATURES);
    let flat_out = gbt.predict_margin_batch(&cols);
    let rec_out: Vec<f64> =
        rows.iter().map(|r| gbt.predict_margin_recursive(r.as_slice())).collect();
    let score_bit_identical = flat_out.len() == rec_out.len()
        && flat_out.iter().zip(&rec_out).all(|(a, b)| a.to_bits() == b.to_bits());

    let reps = (200_000 / n_rows.max(1)).clamp(3, 500);
    let t0 = Instant::now();
    for _ in 0..reps {
        for r in &rows {
            std::hint::black_box(gbt.predict_margin_recursive(r.as_slice()));
        }
    }
    let recursive_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(gbt.predict_margin_batch(&cols));
    }
    let flat_s = t0.elapsed().as_secs_f64();
    let scored = (n_rows * reps) as f64;

    // Snapshot persistence: same model, both encodings, repeated decodes.
    let snapshot = CatsPipeline::snapshot(analyzer, DetectorConfig::default(), gbt);
    let json = snapshot.to_json().expect("snapshot to JSON");
    let io2 = snapshot.to_io2_bytes().expect("snapshot to IO2");
    let loads = 30usize;
    let t0 = Instant::now();
    for _ in 0..loads {
        std::hint::black_box(PipelineSnapshot::from_json(&json).expect("JSON load"));
    }
    let json_load_s = t0.elapsed().as_secs_f64() / loads as f64;
    let t0 = Instant::now();
    for _ in 0..loads {
        std::hint::black_box(PipelineSnapshot::from_io2_bytes(&io2).expect("IO2 load"));
    }
    let io2_load_s = t0.elapsed().as_secs_f64() / loads as f64;

    FormatPhase {
        json_bytes: json.len(),
        io2_bytes: io2.len(),
        size_ratio: json.len() as f64 / io2.len() as f64,
        json_load_s,
        io2_load_s,
        load_speedup: json_load_s / io2_load_s,
        score_recursive_items_s: scored / recursive_s,
        score_flat_items_s: scored / flat_s,
        score_speedup: recursive_s / flat_s,
        score_bit_identical,
    }
}

fn main() {
    let args = Args::parse(0.02, 0x5CA1);
    let platform = cats_platform::datasets::d0(args.scale, args.seed);
    let items: Vec<ItemComments> = platform.items().iter().map(setup::item_comments).collect();
    let sales: Vec<u64> = platform.items().iter().map(|i| i.sales_volume).collect();
    let labels: Vec<u8> = platform.items().iter().map(setup::item_label).collect();
    let comments: usize = items.iter().map(ItemComments::len).sum();
    println!(
        "== Extension: full-pipeline scaling ({} items, {} comments) ==",
        items.len(),
        comments
    );
    println!(
        "observability: {} (set CATS_OBS=off for the no-op observer baseline)",
        if cats_obs::enabled() { "enabled" } else { "disabled" }
    );

    let cores = cats_par::default_threads();
    let mut rows: Vec<Row> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        if threads > 2 * cores {
            break;
        }
        rows.push(run_once(&platform, &items, &sales, &labels, args.seed, threads));
    }

    let base = rows[0].total();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.3}", r.segment_s),
                format!("{:.3}", r.embed_s),
                format!("{:.3}", r.fit_s),
                format!("{:.3}", r.detect_s),
                format!("{:.3}", r.total()),
                format!("{:.2}x", base / r.total()),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "Threads",
                "Segment (s)",
                "Embed (s)",
                "Fit (s)",
                "Detect (s)",
                "Total (s)",
                "Speedup"
            ],
            &table_rows
        )
    );
    println!("machine parallelism: {cores} threads");

    // Model format phase: JSON vs CATS-IO2 snapshot loads and recursive
    // vs flat batch scoring (EXPERIMENTS.md "Model format").
    let fp = format_phase(&platform, &items, &labels, args.seed);
    println!();
    println!(
        "model format: JSON {} KiB vs CATS-IO2 {} KiB ({:.2}x smaller)",
        fp.json_bytes / 1024,
        fp.io2_bytes / 1024,
        fp.size_ratio
    );
    println!(
        "snapshot load: JSON {:.2} ms vs CATS-IO2 {:.2} ms ({:.1}x faster)",
        fp.json_load_s * 1e3,
        fp.io2_load_s * 1e3,
        fp.load_speedup
    );
    println!(
        "batch scoring: recursive {:.0} items/s vs flat {:.0} items/s ({:.1}x, bit-identical: {})",
        fp.score_recursive_items_s, fp.score_flat_items_s, fp.score_speedup, fp.score_bit_identical
    );

    // Machine-readable output for the acceptance gate. Hand-rolled JSON:
    // the bench crate deliberately has no serde dependency. Each row
    // embeds its RunProfile document verbatim.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"segment_s\": {:.6}, \"embed_s\": {:.6}, \
                 \"fit_s\": {:.6}, \"detect_s\": {:.6}, \"total_s\": {:.6}, \
                 \"speedup\": {:.4}, \"profile\": {}}}",
                r.threads,
                r.segment_s,
                r.embed_s,
                r.fit_s,
                r.detect_s,
                r.total(),
                base / r.total(),
                r.profile.to_json().trim_end()
            )
        })
        .collect();
    let model_format = format!(
        "{{\"json_bytes\": {}, \"io2_bytes\": {}, \"size_ratio\": {:.4}, \
         \"json_load_ms\": {:.4}, \"io2_load_ms\": {:.4}, \"io2_loads_per_s\": {:.2}, \
         \"load_speedup\": {:.4}, \"score_recursive_items_s\": {:.2}, \
         \"score_flat_items_s\": {:.2}, \"score_speedup\": {:.4}, \
         \"score_bit_identical\": {}}}",
        fp.json_bytes,
        fp.io2_bytes,
        fp.size_ratio,
        fp.json_load_s * 1e3,
        fp.io2_load_s * 1e3,
        fp.io2_load_s.recip(),
        fp.load_speedup,
        fp.score_recursive_items_s,
        fp.score_flat_items_s,
        fp.score_speedup,
        u8::from(fp.score_bit_identical),
    );
    let json = format!(
        "{{\n  \"experiment\": \"exp_scaling\",\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"machine_threads\": {},\n  \"items\": {},\n  \"comments\": {},\n  \
         \"obs_enabled\": {},\n  \"model_format\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        args.scale,
        args.seed,
        cores,
        items.len(),
        comments,
        cats_obs::enabled(),
        model_format,
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_scaling.json", json).expect("write BENCH_scaling.json");
    println!("wrote BENCH_scaling.json");

    // Deepest sweep row standalone, for CI artifact upload.
    let last = rows.last().expect("at least one sweep row");
    std::fs::write("PROFILE_scaling.json", last.profile.to_json())
        .expect("write PROFILE_scaling.json");
    println!("wrote PROFILE_scaling.json (threads={})", last.threads);
}
