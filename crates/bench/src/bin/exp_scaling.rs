//! Extension — feature-extraction scaling.
//!
//! The paper runs CATS on a 40-vCPU server and notes the feature
//! extractor "is implemented in a parallelized style for fast
//! processing". This experiment measures batch extraction throughput
//! against the thread count on this machine.

use cats_bench::{render, setup, Args};
use cats_core::{features, ItemComments};
use cats_platform::datasets;
use std::time::Instant;

fn main() {
    let args = Args::parse(0.02, 0x5CA1);
    let platform = datasets::d0(args.scale, args.seed);
    let analyzer = setup::train_analyzer(&platform, args.seed);
    let items: Vec<ItemComments> = platform.items().iter().map(setup::item_comments).collect();
    let comments: usize = items.iter().map(ItemComments::len).sum();
    println!("== Extension: extraction scaling ({} items, {} comments) ==", items.len(), comments);

    let cores = std::thread::available_parallelism().map_or(4, usize::from);
    let mut rows = Vec::new();
    let mut base = 0.0;
    for threads in [1usize, 2, 4, 8, 16] {
        if threads > 2 * cores {
            break;
        }
        // Warm-up + best-of-3 to damp scheduler noise.
        features::extract_batch(&items, &analyzer, threads);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let out = features::extract_batch(&items, &analyzer, threads);
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(out.len(), items.len());
            best = best.min(dt);
        }
        if threads == 1 {
            base = best;
        }
        rows.push(vec![
            threads.to_string(),
            format!("{:.3}", best),
            format!("{:.0}", items.len() as f64 / best),
            format!("{:.2}x", base / best),
        ]);
    }
    println!("{}", render::table(&["Threads", "Best time (s)", "Items/s", "Speedup"], &rows));
    println!("machine parallelism: {cores} threads");
}
