//! Ablation — classifier comparison across training-set sizes.
//!
//! Table III is a single point (5k + 5k items). This ablation re-runs the
//! comparison at several training sizes to show where the ranking
//! stabilizes and how data-hungry each model family is.

use cats_bench::{render, setup, Args};
use cats_core::N_FEATURES;
use cats_ml::model_selection::{compare_models, paper_panel};
use cats_ml::Dataset;

fn main() {
    let args = Args::parse(0.1, 0xAB1D);
    let platform = setup::d0(args.scale, args.seed);
    let analyzer = setup::train_analyzer(&platform, args.seed);
    println!("== Ablation: classifier ranking vs training size (D0 scale={}) ==", args.scale);

    let (fraud, normal) = setup::split_by_label(&platform);
    let max_per_class = fraud.len().min(normal.len());

    // Extract features once for the largest budget.
    let mut items = Vec::new();
    let mut labels = Vec::new();
    for it in fraud.iter().take(max_per_class) {
        items.push(setup::item_comments(it));
        labels.push(1u8);
    }
    for it in normal.iter().take(max_per_class) {
        items.push(setup::item_comments(it));
        labels.push(0u8);
    }
    let rows = cats_core::features::extract_batch(&items, &analyzer, 0);

    let sizes: Vec<usize> = [50usize, 150, 400, 1_000]
        .into_iter()
        .filter(|&s| s <= max_per_class)
        .chain(std::iter::once(max_per_class))
        .collect();

    let mut table_rows = Vec::new();
    for &per_class in &sizes {
        let mut data = Dataset::new(N_FEATURES);
        // fraud rows occupy the first half of `rows`
        for (r, &l) in rows.iter().take(per_class).zip(labels.iter().take(per_class)) {
            data.push(r.as_slice(), l);
        }
        for (r, &l) in rows
            .iter()
            .skip(max_per_class)
            .take(per_class)
            .zip(labels.iter().skip(max_per_class).take(per_class))
        {
            data.push(r.as_slice(), l);
        }
        let mut panel = paper_panel();
        let results = compare_models(&mut panel, &data, 5, args.seed);
        let best = results.iter().max_by(|a, b| a.f1.partial_cmp(&b.f1).unwrap()).unwrap();
        let mut cells = vec![format!("{per_class}+{per_class}")];
        cells.extend(results.iter().map(|r| render::f3(r.f1)));
        cells.push(best.name.clone());
        table_rows.push(cells);
    }
    println!(
        "{}",
        render::table(
            &["Train size", "Xgboost", "SVM", "AdaBoost", "NN", "DT", "NB", "Best"],
            &table_rows
        )
    );
    println!("(paper: Xgboost selected at 5,000+5,000)");
}
