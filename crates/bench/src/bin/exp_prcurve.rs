//! Operating-point analysis — the precision–recall tradeoff behind the
//! paper's two reported points.
//!
//! The paper reports CATS at two operating points: the balanced D1 point
//! (P .91 / R .90, Table VI) and the high-precision E-platform deployment
//! (audited 0.96). This experiment sweeps the full PR curve of the
//! D0-trained detector on a production-shaped stream and shows where both
//! points sit, plus threshold-free summaries (ROC-AUC, average
//! precision).

use cats_bench::{render, setup, Args};
use cats_core::ItemComments;
use cats_ml::ranking::{average_precision, pr_curve, recall_at_precision, roc_auc};
use cats_platform::datasets;

fn main() {
    let args = Args::parse(0.005, 0x93C0);
    println!("== PR curve of the D0-trained detector on D1-shaped data (scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale * 10.0, args.seed);
    let pipeline = setup::train_pipeline(&d0, args.seed);
    let d1 = datasets::d1(args.scale, args.seed.wrapping_add(7));
    let items: Vec<ItemComments> = d1.items().iter().map(setup::item_comments).collect();
    let sales: Vec<u64> = d1.items().iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);
    let labels: Vec<u8> = d1.items().iter().map(setup::item_label).collect();
    let scores: Vec<f64> = reports.iter().map(|r| r.score).collect();

    println!(
        "ROC-AUC {:.4}, average precision {:.4} ({} items, {} frauds)",
        roc_auc(&scores, &labels),
        average_precision(&scores, &labels),
        labels.len(),
        labels.iter().filter(|&&l| l == 1).count()
    );

    // A decimated view of the curve.
    let curve = pr_curve(&scores, &labels);
    let step = (curve.len() / 18).max(1);
    let rows: Vec<Vec<String>> = curve
        .iter()
        .step_by(step)
        .map(|p| vec![format!("{:.4}", p.threshold), render::f3(p.precision), render::f3(p.recall)])
        .collect();
    println!("{}", render::table(&["Threshold", "Precision", "Recall"], &rows));

    println!(
        "recall at precision ≥ 0.91 (paper's Table VI point): {}",
        render::f3(recall_at_precision(&scores, &labels, 0.91))
    );
    println!(
        "recall at precision ≥ 0.96 (paper's deployment point): {}",
        render::f3(recall_at_precision(&scores, &labels, 0.96))
    );
}
