//! Extension — streaming velocity detection: score the firehose, not
//! the archive.
//!
//! Replays the platform as a temporal comment stream
//! ([`cats_platform::stream`]) through the `cats-stream` sliding-window
//! engine and measures, in order:
//!
//! 1. **throughput** — sustained comments/s through ingest + periodic
//!    flush scoring (wall clock);
//! 2. **detection** — latency from each campaign wave's first promo
//!    arrival to the first fraud verdict on that item (virtual ms), and
//!    the catch rate against the batch oracle (the full-archive
//!    [`cats_core::CatsPipeline::detect`] the paper evaluates);
//! 3. **determinism** — bit-identical verdict streams at 1/2/8 threads
//!    and across a rerun of the same seeded trace;
//! 4. **memory bound** — a 2× longer trace must not grow the peak
//!    resident footprint (windows are fixed-size; idle items evict).
//!
//! Output: `BENCH_stream.json`, consumed by `scripts/bench_gate.sh`:
//! `deterministic`, `memory_bounded`, `catch_rate_vs_oracle` and the
//! virtual-ms latency ceiling are hardware-independent hard gates;
//! `sustained_comments_per_s` is compared against the committed
//! baseline floor in `results/baselines/`.

use cats_bench::{render, setup, Args};
use cats_core::{CatsPipeline, ItemComments, StreamVerdict};
use cats_platform::{TemporalTrace, TraceConfig};
use cats_stream::{CommentEvent, StreamConfig, StreamEngine};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Thread counts the determinism phase sweeps.
const DETERMINISM_THREADS: [usize; 3] = [1, 2, 8];

/// Exact percentile from a sorted sample (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Stream config for the replay: default windows, explicit threads.
fn stream_config(threads: usize) -> StreamConfig {
    StreamConfig { threads, ..StreamConfig::default() }
}

/// Replays a trace through a fresh engine, flushing on the virtual
/// clock. Returns the verdict stream, the final engine (for memory and
/// drop accounting) and the ingest+score wall time in seconds.
fn replay(
    trace: &TemporalTrace,
    pipeline: &CatsPipeline,
    config: StreamConfig,
) -> (Vec<StreamVerdict>, StreamEngine, f64) {
    let mut engine = StreamEngine::new(config);
    let mut verdicts = Vec::new();
    let t0 = Instant::now();
    for ev in &trace.events {
        let _ = engine.ingest(&CommentEvent {
            at_ms: ev.at_ms,
            item_id: ev.item_id,
            user_id: ev.user_id as u64,
            sales_volume: ev.sales_volume,
            text: ev.content.clone(),
        });
        if engine.flush_due() {
            verdicts.extend(engine.flush(pipeline));
        }
    }
    verdicts.extend(engine.flush(pipeline));
    (verdicts, engine, t0.elapsed().as_secs_f64())
}

/// Bit-exact verdict-stream equality (f64 compared by bits, so `-0.0`
/// vs `0.0` or NaN smuggling would fail loudly).
fn verdicts_identical(a: &[StreamVerdict], b: &[StreamVerdict]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.item_id == y.item_id
                && x.at_ms == y.at_ms
                && x.window_comments == y.window_comments
                && x.cats_score.to_bits() == y.cats_score.to_bits()
                && x.velocity_risk.to_bits() == y.velocity_risk.to_bits()
                && x.fused_score.to_bits() == y.fused_score.to_bits()
                && x.is_fraud == y.is_fraud
        })
}

fn main() {
    let args = Args::parse(0.004, 0x57E4);
    let total_t0 = Instant::now();
    let phase = |name: &str, t0: Instant| {
        println!(
            "[phase {name}] {:.2}s (t+{:.2}s)",
            t0.elapsed().as_secs_f64(),
            total_t0.elapsed().as_secs_f64()
        );
    };

    let t0 = Instant::now();
    let platform = setup::d0(args.scale, args.seed);
    println!("== Extension: streaming velocity detection ({} items) ==", platform.items().len());
    println!("training pipeline...");
    let pipeline = setup::train_pipeline(&platform, args.seed);
    let trace_config = TraceConfig { seed: args.seed, ..TraceConfig::default() };
    let trace = TemporalTrace::from_platform(&platform, &trace_config);
    println!(
        "trace: {} events over {} virtual min, {} campaign waves",
        trace.len(),
        trace.config.duration_ms / 60_000,
        trace.waves.len()
    );
    phase("setup", t0);

    // ---- Phase 1: sustained throughput -------------------------------
    let t0 = Instant::now();
    let (verdicts, engine, wall_s) = replay(&trace, &pipeline, stream_config(0));
    let sustained = trace.len() as f64 / wall_s;
    assert!(
        engine.late_dropped() == 0,
        "bounded-skew trace must not shed events (skew {} ms < window), dropped {}",
        trace.config.max_skew_ms,
        engine.late_dropped()
    );
    phase("throughput", t0);

    // ---- Phase 2: detection latency + catch rate vs batch oracle -----
    let t0 = Instant::now();
    // Oracle: the archive view — every comment of the whole trace per
    // item, scored once by the batch pipeline.
    let mut archive: BTreeMap<u64, (u64, Vec<String>)> = BTreeMap::new();
    for ev in &trace.events {
        let entry = archive.entry(ev.item_id).or_insert_with(|| (ev.sales_volume, Vec::new()));
        entry.1.push(ev.content.clone());
    }
    let ids: Vec<u64> = archive.keys().copied().collect();
    let items: Vec<ItemComments> = archive
        .values()
        .map(|(_, texts)| ItemComments::from_texts(texts.iter().map(String::as_str)))
        .collect();
    let sales: Vec<u64> = archive.values().map(|&(s, _)| s).collect();
    let oracle_flagged: BTreeSet<u64> = pipeline
        .detect(&items, &sales)
        .iter()
        .filter(|r| r.is_fraud)
        .map(|r| ids[r.index])
        .collect();
    let stream_flagged: BTreeSet<u64> =
        verdicts.iter().filter(|v| v.is_fraud).map(|v| v.item_id).collect();
    let caught = oracle_flagged.intersection(&stream_flagged).count();
    let catch_rate =
        if oracle_flagged.is_empty() { 1.0 } else { caught as f64 / oracle_flagged.len() as f64 };

    // Latency: wave start → first fraud verdict on that item at or
    // after the start, in *virtual* ms (deterministic given the seed).
    let mut latencies: Vec<f64> = Vec::new();
    for w in &trace.waves {
        if let Some(v) =
            verdicts.iter().find(|v| v.item_id == w.item_id && v.is_fraud && v.at_ms >= w.start_ms)
        {
            latencies.push((v.at_ms - w.start_ms) as f64);
        }
    }
    latencies.sort_by(f64::total_cmp);
    let waves_caught = latencies.len();
    let (lat_median, lat_p95) = (percentile(&latencies, 0.50), percentile(&latencies, 0.95));
    assert!(
        catch_rate >= 0.5,
        "stream must catch at least half of what the batch oracle flags, got {catch_rate:.3} \
         ({caught}/{})",
        oracle_flagged.len()
    );
    phase("detection", t0);

    // ---- Phase 3: determinism across threads and reruns --------------
    let t0 = Instant::now();
    let reference = &verdicts;
    let mut deterministic = true;
    for threads in DETERMINISM_THREADS {
        let (v, _, _) = replay(&trace, &pipeline, stream_config(threads));
        if !verdicts_identical(reference, &v) {
            eprintln!("verdict stream diverges at {threads} threads");
            deterministic = false;
        }
    }
    // Rerun bit-identity: regenerate the trace from the same seed too.
    let rerun_trace = TemporalTrace::from_platform(&platform, &trace_config);
    let (rerun, _, _) = replay(&rerun_trace, &pipeline, stream_config(0));
    if !verdicts_identical(reference, &rerun) {
        eprintln!("verdict stream diverges across reruns of the same seeded trace");
        deterministic = false;
    }
    assert!(deterministic, "streaming verdicts must be bit-identical at any thread count");
    phase("determinism", t0);

    // ---- Phase 4: memory bound ---------------------------------------
    let t0 = Instant::now();
    let long_config =
        TraceConfig { duration_ms: trace_config.duration_ms * 2, ..trace_config.clone() };
    let long_trace = TemporalTrace::from_platform(&platform, &long_config);
    let (_, long_engine, _) = replay(&long_trace, &pipeline, stream_config(0));
    let peak = engine.peak_resident_bytes();
    let peak_2x = long_engine.peak_resident_bytes();
    // Fixed rings + capped deques + idle eviction: doubling the trace
    // must not grow the footprint beyond wave-overlap jitter.
    let memory_bounded = peak_2x as f64 <= peak as f64 * 1.5 + 65_536.0;
    assert!(
        memory_bounded,
        "peak footprint must not scale with trace length: {peak} B (1x) vs {peak_2x} B (2x)"
    );
    phase("memory", t0);

    println!(
        "{}",
        render::table(
            &["Metric", "Value"],
            &[
                vec!["events".into(), trace.len().to_string()],
                vec!["sustained comments/s".into(), format!("{sustained:.0}")],
                vec!["flush verdicts".into(), verdicts.len().to_string()],
                vec!["oracle flagged".into(), oracle_flagged.len().to_string()],
                vec!["catch rate vs oracle".into(), format!("{catch_rate:.3}")],
                vec!["waves caught".into(), format!("{waves_caught}/{}", trace.waves.len()),],
                vec!["latency median (virtual ms)".into(), format!("{lat_median:.0}")],
                vec!["latency p95 (virtual ms)".into(), format!("{lat_p95:.0}")],
                vec!["peak resident bytes (1x/2x)".into(), format!("{peak}/{peak_2x}")],
            ],
        )
    );

    // Machine-readable output for scripts/bench_gate.sh. Hand-rolled
    // JSON: the bench crate deliberately has no serde dependency. Keys
    // are unique file-wide (the gate extracts by grep).
    let json = format!(
        "{{\n  \"experiment\": \"exp_stream\",\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"machine_threads\": {},\n  \
         \"trace\": {{\"events\": {}, \"waves\": {}, \"duration_virtual_ms\": {}, \
         \"late_dropped\": {}}},\n  \
         \"throughput\": {{\"sustained_comments_per_s\": {:.2}, \"ingest_wall_s\": {:.3}, \
         \"verdicts\": {}}},\n  \
         \"detection\": {{\"oracle_flagged\": {}, \"stream_flagged\": {}, \
         \"catch_rate_vs_oracle\": {:.4}, \"waves_total\": {}, \"waves_caught\": {}, \
         \"latency_median_virtual_ms\": {:.1}, \"latency_p95_virtual_ms\": {:.1}}},\n  \
         \"determinism\": {{\"deterministic\": {}, \"thread_counts\": [1, 2, 8]}},\n  \
         \"memory\": {{\"memory_bounded\": {}, \"peak_resident_bytes\": {}, \
         \"peak_resident_bytes_2x\": {}}}\n}}\n",
        args.scale,
        args.seed,
        cats_par::default_threads(),
        trace.len(),
        trace.waves.len(),
        trace.config.duration_ms,
        engine.late_dropped(),
        sustained,
        wall_s,
        verdicts.len(),
        oracle_flagged.len(),
        stream_flagged.len(),
        catch_rate,
        trace.waves.len(),
        waves_caught,
        lat_median,
        lat_p95,
        u8::from(deterministic),
        u8::from(memory_bounded),
        peak,
        peak_2x,
    );
    std::fs::write("BENCH_stream.json", json).expect("write BENCH_stream.json");
    println!("wrote BENCH_stream.json");
}
