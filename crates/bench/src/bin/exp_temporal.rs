//! Extension — temporal burstiness of comment arrivals.
//!
//! The paper's future-work section calls for mining the underground
//! promotion ecosystem; the most accessible public fingerprint is
//! *timing*: hired pools work through an item in days, organic reviews
//! arrive over the listing's lifetime. This experiment measures the
//! peak-day share and inter-comment gaps of the detector's reported fraud
//! vs normal items — all from public timestamps.

use cats_analysis::temporal::{mean_peak_day_share, temporal_stats};
use cats_bench::{render, setup, Args};
use cats_collector::{CollectedItem, Collector, CollectorConfig, PublicSite, SiteConfig};
use cats_core::ItemComments;
use cats_platform::datasets;

fn main() {
    let args = Args::parse(0.002, 0x7E40);
    println!("== Extension: comment-arrival burstiness (scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale * 25.0, args.seed);
    let pipeline = setup::train_deploy_pipeline(&d0, args.seed);
    let e = datasets::e_platform(args.scale, args.seed.wrapping_add(3));
    let site = PublicSite::new(&e, SiteConfig::default());
    let collected = Collector::new(CollectorConfig::default()).crawl(&site);

    let items: Vec<ItemComments> =
        collected.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
    let sales: Vec<u64> = collected.items.iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);

    let fraud: Vec<&CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| r.is_fraud).map(|(i, _)| i).collect();
    let normal: Vec<&CollectedItem> = collected
        .items
        .iter()
        .zip(&reports)
        .filter(|(i, r)| !r.is_fraud && i.comments.len() >= 5)
        .map(|(i, _)| i)
        .collect();
    println!("reported fraud items: {}, dense normal items: {}", fraud.len(), normal.len());

    let mean_gap = |items: &[&CollectedItem]| -> f64 {
        let gaps: Vec<f64> = items
            .iter()
            .filter_map(|i| temporal_stats(i))
            .filter(|s| s.mean_gap_hours > 0.0)
            .map(|s| s.mean_gap_hours)
            .collect();
        gaps.iter().sum::<f64>() / gaps.len().max(1) as f64
    };
    let rows = vec![
        vec![
            "reported fraud".to_string(),
            render::f3(mean_peak_day_share(&fraud).unwrap_or(0.0)),
            format!("{:.1}", mean_gap(&fraud)),
        ],
        vec![
            "normal (≥5 comments)".to_string(),
            render::f3(mean_peak_day_share(&normal).unwrap_or(0.0)),
            format!("{:.1}", mean_gap(&normal)),
        ],
    ];
    println!("{}", render::table(&["Items", "Mean peak-day share", "Mean gap (hours)"], &rows));
    println!(
        "expectation: campaigns concentrate comments into burst windows → \
         higher peak-day share and shorter gaps for reported fraud items"
    );
}
