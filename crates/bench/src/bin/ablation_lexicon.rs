//! Ablation — lexicon size.
//!
//! The paper caps both the positive and negative sets at ~200 words "for
//! computation efficiency". This ablation varies the expansion cap and
//! measures the effect on lexicon quality (precision vs latent ground
//! truth) and detection F1, locating the knee the paper's cap sits on.

use cats_bench::{render, setup, Args};
use cats_core::{Detector, DetectorConfig, SemanticAnalyzer, N_FEATURES};
use cats_embedding::{expand_lexicon, ExpansionConfig};
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::model_selection::cross_validate;
use cats_ml::Dataset;
use cats_sentiment::SentimentModel;
use cats_text::{Segmenter, WhitespaceSegmenter};

fn main() {
    let args = Args::parse(0.03, 0xAB1C);
    let platform = setup::d0(args.scale, args.seed);
    println!("== Ablation: lexicon size cap (D0 scale={}) ==", args.scale);

    // Train the embedding once; re-expand per cap.
    let corpus: Vec<&str> = platform
        .items()
        .iter()
        .flat_map(|i| i.comments.iter().map(|c| c.content.as_str()))
        .take(setup::MAX_W2V_COMMENTS)
        .collect();
    let embedding = SemanticAnalyzer::train_embedding(&corpus, setup::experiment_w2v());
    let (sent_pos, sent_neg) =
        setup::sentiment_corpus(platform.lexicon(), setup::SENTIMENT_REVIEWS, args.seed);
    let seg = WhitespaceSegmenter;
    let sentiment = SentimentModel::train(
        &sent_pos.iter().map(|t| seg.segment(t)).collect::<Vec<_>>(),
        &sent_neg.iter().map(|t| seg.segment(t)).collect::<Vec<_>>(),
    );

    let items: Vec<_> = platform.items().iter().map(setup::item_comments).collect();
    let labels: Vec<u8> = platform.items().iter().map(setup::item_label).collect();

    let mut rows = Vec::new();
    for cap in [10usize, 50, 100, 200, 400] {
        let lexicon = expand_lexicon(
            &embedding,
            &platform.lexicon().positive_seeds(),
            &platform.lexicon().negative_seeds(),
            ExpansionConfig { max_words: cap, ..ExpansionConfig::default() },
        );
        let truth = platform.lexicon();
        let pos_precision =
            lexicon.positive_words().filter(|w| truth.positive().iter().any(|p| p == w)).count()
                as f64
                / lexicon.positive_len().max(1) as f64;

        let analyzer = SemanticAnalyzer::from_parts(lexicon, sentiment.clone());
        let rows_f = cats_core::features::extract_batch(&items, &analyzer, 0);
        let mut data = Dataset::new(N_FEATURES);
        for (r, &l) in rows_f.iter().zip(&labels) {
            data.push(r.as_slice(), l);
        }
        let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
        let cv = cross_validate(&mut gbt, &data, 5, args.seed);

        // Filter reach: how many items keep positive evidence at this cap.
        let det = Detector::with_default_classifier(DetectorConfig::default());
        let kept = items
            .iter()
            .zip(platform.items())
            .filter(|(ic, it)| {
                det.filter_item(it.sales_volume, ic, &analyzer)
                    == cats_core::FilterDecision::Classified
            })
            .count();
        rows.push(vec![
            cap.to_string(),
            analyzer.lexicon().positive_len().to_string(),
            render::pct(pos_precision),
            render::f3(cv.f1),
            format!("{kept}/{}", items.len()),
        ]);
    }
    println!(
        "{}",
        render::table(
            &[
                "Cap",
                "|P| realized",
                "P precision",
                "Detection F1 (5-fold)",
                "Items passing filter"
            ],
            &rows
        )
    );
    println!("(paper operates at cap ≈ 200)");
}
