//! Extension — sharded multi-process serving under chaos.
//!
//! Stands up the full cluster stack — shard child *processes* (this
//! same binary re-invoked in `--shard-server` mode), an in-process
//! [`cats_serve::Router`] consistent-hashing items across them — and
//! measures two things the single-process `exp_serve` cannot:
//!
//! * **Scaling** — closed-loop heavy-tail throughput at 1 shard vs 4
//!   shards. The floor is hardware-aware (`0.7 × machine threads`,
//!   capped at the 2.5× the CI machines must clear): a 1-core sandbox
//!   cannot show 4-way scaling and is not asked to.
//! * **Chaos invariants** — with [`cats_serve::TrafficTrace`] heavy-tail
//!   diurnal load running, one shard is SIGKILLed mid-load, must be
//!   ejected, is respawned onto its old address, must be re-admitted
//!   (after a model-version sync), and a rolling swap retags the whole
//!   cluster — all while **zero** requests are lost and **zero**
//!   responses mix model versions.
//!
//! Output: `BENCH_cluster.json`, gated by `scripts/bench_gate.sh`.

use cats_bench::{render, setup, Args};
use cats_core::{CatsPipeline, DetectorConfig};
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::{Classifier, Dataset};
use cats_serve::{RouterConfig, ScoreClient, ScoreItem, ShardOpts, ShardProcess, TrafficTrace};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent client threads driving the router.
const CLIENTS: usize = 6;
/// Items per scoring request.
const ITEMS_PER_REQUEST: usize = 8;
/// Wall-clock length of each scaling measurement.
const SCALE_SECS: f64 = 2.0;
/// Shards in the chaos phase.
const SHARDS: usize = 4;

/// Child mode: run one shard server and park. Must be checked BEFORE
/// `Args::parse` (which rejects unknown flags): argv is
/// `--shard-server <model_path> <addr>`.
fn maybe_run_shard() {
    let raw: Vec<String> = std::env::args().collect();
    let Some(pos) = raw.iter().position(|a| a == "--shard-server") else { return };
    let model_path = raw.get(pos + 1).expect("--shard-server <model> <addr>").clone();
    let addr = raw.get(pos + 2).expect("--shard-server <model> <addr>").clone();
    let server = cats_serve::start_shard(&ShardOpts {
        addr,
        model_path: PathBuf::from(model_path),
        // One worker and one scoring thread per shard: scaling must
        // come from adding shards, not from one shard grabbing every
        // core — that is what makes the 1-vs-4 comparison honest.
        workers: 1,
        score_threads: 1,
    })
    .expect("start shard server");
    cats_serve::announce_ready(&server);
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Exact percentile from a sorted sample (nearest-rank).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

/// Spawns `n` shard child processes serving `model`, each on an
/// OS-assigned port.
fn spawn_shards(exe: &Path, model: &Path, n: usize) -> Vec<ShardProcess> {
    (0..n)
        .map(|id| {
            let args = vec![
                "--shard-server".to_string(),
                model.display().to_string(),
                "127.0.0.1:0".to_string(),
            ];
            ShardProcess::spawn(id, exe, &args, Duration::from_secs(60)).expect("spawn shard child")
        })
        .collect()
}

/// Aggregate outcome of one load window.
#[derive(Default)]
struct LoadStats {
    requests: u64,
    items: u64,
    /// Requests that failed outright — the chaos invariant is that this
    /// stays zero even while a shard is being killed.
    lost: u64,
    /// 429/503 rejections.
    rejected: u64,
    latencies_ms: Vec<f64>,
    versions_seen: Vec<u64>,
}

/// Starts [`CLIENTS`] closed-loop client threads hammering `addr` with
/// heavy-tail diurnal traffic until `stop` is raised. Join the handles
/// and fold the per-thread stats with [`collect_load`].
type LoadHandle = std::thread::JoinHandle<LoadStats>;

fn spawn_load(
    addr: &str,
    pool: &[ScoreItem],
    seed: u64,
    stop: &Arc<AtomicBool>,
) -> Vec<LoadHandle> {
    (0..CLIENTS)
        .map(|c| {
            let addr = addr.to_string();
            let stop = stop.clone();
            let pool = pool.to_vec();
            std::thread::spawn(move || {
                let client = ScoreClient::new(addr)
                    .with_timeout(Duration::from_secs(30))
                    .with_connect_timeout(Duration::from_secs(5));
                let mut trace = TrafficTrace::new(seed ^ (c as u64 + 1), pool.len());
                let mut stats = LoadStats::default();
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<ScoreItem> =
                        (0..ITEMS_PER_REQUEST).map(|_| pool[trace.draw_item()].clone()).collect();
                    let t0 = Instant::now();
                    match client.score(&batch) {
                        Ok(resp) => {
                            assert_eq!(
                                resp.verdicts.len(),
                                batch.len(),
                                "every submitted item gets a verdict"
                            );
                            stats.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            stats.requests += 1;
                            stats.items += resp.verdicts.len() as u64;
                            if !stats.versions_seen.contains(&resp.model_version) {
                                stats.versions_seen.push(resp.model_version);
                            }
                        }
                        Err(cats_serve::ClientError::Http { status: 429 | 503, .. }) => {
                            stats.rejected += 1;
                        }
                        Err(_) => stats.lost += 1,
                    }
                    // Diurnal shape: back off in the trough, run hot at
                    // the crest.
                    let f = trace.burst_factor();
                    if f < 1.0 {
                        std::thread::sleep(Duration::from_micros((800.0 * (1.0 - f)) as u64));
                    }
                }
                stats
            })
        })
        .collect()
}

fn collect_load(handles: Vec<LoadHandle>) -> LoadStats {
    let mut out = LoadStats::default();
    for h in handles {
        let s = h.join().expect("load client thread");
        out.requests += s.requests;
        out.items += s.items;
        out.lost += s.lost;
        out.rejected += s.rejected;
        out.latencies_ms.extend(s.latencies_ms);
        for v in s.versions_seen {
            if !out.versions_seen.contains(&v) {
                out.versions_seen.push(v);
            }
        }
    }
    out.latencies_ms.sort_by(f64::total_cmp);
    out.versions_seen.sort_unstable();
    out
}

/// Runs a fixed-duration load window against a fresh router over
/// `shards` child processes and returns sustained RPS.
fn measure_rps(exe: &Path, model: &Path, shards: usize, pool: &[ScoreItem], seed: u64) -> f64 {
    let children = spawn_shards(exe, model, shards);
    let addrs: Vec<String> = children.iter().map(|c| c.addr.clone()).collect();
    let router = cats_bench::net::start_router_retrying(
        &addrs,
        RouterConfig {
            initial_artifact: Some(model.display().to_string()),
            ..RouterConfig::default()
        },
    );
    let addr = router.addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let handles = spawn_load(&addr, pool, seed, &stop);
    std::thread::sleep(Duration::from_secs_f64(SCALE_SECS));
    stop.store(true, Ordering::Relaxed);
    let stats = collect_load(handles);
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(stats.lost, 0, "scaling window must not lose requests");
    router.shutdown();
    drop(children);
    stats.requests as f64 / elapsed
}

/// Reads a router counter out of the (shared, in-process) registry.
fn counter(snap: &cats_obs::Snapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

fn main() {
    maybe_run_shard();
    let args = Args::parse(0.008, 0xC105);
    let platform = setup::d0(args.scale, args.seed);
    println!("== Extension: sharded cluster serving ({} items) ==", platform.items().len());

    println!("training pipeline...");
    let pipeline = setup::train_pipeline(&platform, args.seed);
    // Serialize a shard-loadable snapshot (a GBT retrained
    // deterministically on the same data, same recipe as exp_serve).
    let snapshot = {
        let items: Vec<_> = platform.items().iter().map(setup::item_comments).collect();
        let labels: Vec<u8> = platform.items().iter().map(setup::item_label).collect();
        let rows = cats_core::features::extract_batch(&items, pipeline.analyzer(), 0);
        let mut data = Dataset::new(cats_core::N_FEATURES);
        for (r, &l) in rows.iter().zip(&labels) {
            data.push(r.as_slice(), l);
        }
        let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
        gbt.fit(&data);
        CatsPipeline::snapshot(pipeline.analyzer().clone(), DetectorConfig::default(), gbt)
            .to_json()
            .expect("snapshot serializes")
    };
    let dir = std::env::temp_dir().join(format!("cats_cluster_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create model dir");
    let model_v1 = dir.join("model_v1.json");
    let model_v2 = dir.join("model_v2.json");
    cats_io::write_checksummed(&model_v1, snapshot.as_bytes()).expect("write model v1");
    cats_io::write_checksummed(&model_v2, snapshot.as_bytes()).expect("write model v2");

    let exe = std::env::current_exe().expect("current_exe");
    let pool: Vec<ScoreItem> = platform
        .items()
        .iter()
        .map(|it| ScoreItem {
            item_id: it.id,
            sales_volume: it.sales_volume,
            comments: it.comments.iter().map(|c| c.content.clone()).collect(),
        })
        .collect();

    // ---- Phase A: 1 → 4 shard scaling --------------------------------
    println!("scaling: measuring 1 shard...");
    let rps_1 = measure_rps(&exe, &model_v1, 1, &pool, args.seed);
    println!("scaling: measuring {SHARDS} shards...");
    let rps_4 = measure_rps(&exe, &model_v1, SHARDS, &pool, args.seed);
    let ratio = rps_4 / rps_1.max(1e-9);
    // Hardware-aware floor: a machine with T threads can at best show
    // ~T-way scaling; demand 70% of that, capped at the 2.5× a real
    // 4-core CI runner must clear. (Never below 0.7: even a 1-core box
    // must not get dramatically SLOWER with shards.)
    let floor = (0.7 * cats_par::default_threads() as f64).clamp(0.7, 2.5);
    let scaling_ok = ratio >= floor;
    assert!(
        scaling_ok,
        "1→{SHARDS} shard scaling {ratio:.2}x is below the floor {floor:.2}x \
         ({rps_1:.1} → {rps_4:.1} rps on {} threads)",
        cats_par::default_threads()
    );

    // ---- Phase B: chaos — kill, eject, respawn, re-admit, swap -------
    println!("chaos: {SHARDS} shards under heavy-tail load...");
    let before = cats_obs::global().snapshot();
    let mut children = spawn_shards(&exe, &model_v1, SHARDS);
    let addrs: Vec<String> = children.iter().map(|c| c.addr.clone()).collect();
    let router = cats_bench::net::start_router_retrying(
        &addrs,
        RouterConfig {
            initial_artifact: Some(model_v1.display().to_string()),
            ..RouterConfig::default()
        },
    );
    let addr = router.addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let handles = spawn_load(&addr, &pool, args.seed ^ 0xDEAD, &stop);

    // Let the load settle, then murder shard 1 mid-flight.
    std::thread::sleep(Duration::from_millis(500));
    let victim_addr = children[1].addr.clone();
    println!("chaos: SIGKILL shard 1 ({victim_addr})");
    children[1].kill();

    let wait_for_state = |id: usize, want: &str, timeout: Duration| -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            let state = router.shard_states().into_iter().find(|s| s.id == id).map(|s| s.state);
            if state.as_deref() == Some(want) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        false
    };
    assert!(
        wait_for_state(1, "ejected", Duration::from_secs(10)),
        "router never ejected the killed shard"
    );
    println!("chaos: shard 1 ejected; respawning on {victim_addr}");
    let respawn_args =
        vec!["--shard-server".to_string(), model_v1.display().to_string(), victim_addr.clone()];
    children[1] = ShardProcess::spawn(1, &exe, &respawn_args, Duration::from_secs(60))
        .expect("respawn shard 1");
    assert!(
        wait_for_state(1, "live", Duration::from_secs(20)),
        "router never re-admitted the respawned shard"
    );
    println!("chaos: shard 1 re-admitted; rolling swap to v2...");
    let new_version = router.rolling_swap(&model_v2.display().to_string()).expect("rolling swap");
    assert_eq!(new_version, 2, "first swap lands cluster version 2");
    // Keep scoring on the new version for a while.
    std::thread::sleep(Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);
    let chaos = collect_load(handles);
    let delta = cats_obs::global().snapshot().diff(&before);
    router.shutdown();
    drop(children);
    let _ = std::fs::remove_dir_all(&dir);

    let ejections = counter(&delta, "cats.serve.router.ejections");
    let readmissions = counter(&delta, "cats.serve.router.readmissions");
    let skew_merges = counter(&delta, "cats.serve.router.skew_merges");
    let retries = counter(&delta, "cats.serve.router.retries");
    let swaps = counter(&delta, "cats.serve.router.swaps");
    let p50 = percentile(&chaos.latencies_ms, 0.50);
    let p95 = percentile(&chaos.latencies_ms, 0.95);

    // The hard invariants this whole PR exists for.
    assert_eq!(chaos.lost, 0, "a shard death must not lose a single response");
    assert_eq!(chaos.rejected, 0, "no backpressure expected at this load");
    assert_eq!(skew_merges, 0, "no response may mix model versions");
    assert!(ejections >= 1, "the killed shard must be ejected");
    assert!(readmissions >= 1, "the respawned shard must be re-admitted");
    assert_eq!(swaps, 1, "exactly one rolling swap");
    assert_eq!(
        chaos.versions_seen,
        vec![1, 2],
        "load must observe exactly versions 1 and 2 (before and after the swap)"
    );

    println!(
        "{}",
        render::table(
            &["Metric", "Value"],
            &[
                vec!["rps 1 shard".into(), format!("{rps_1:.1}")],
                vec![format!("rps {SHARDS} shards"), format!("{rps_4:.1}")],
                vec!["scaling ratio".into(), format!("{ratio:.2}x (floor {floor:.2}x)")],
                vec!["chaos requests".into(), chaos.requests.to_string()],
                vec!["chaos lost".into(), chaos.lost.to_string()],
                vec!["failover retries".into(), retries.to_string()],
                vec!["ejections / readmissions".into(), format!("{ejections} / {readmissions}")],
                vec!["skew merges".into(), skew_merges.to_string()],
                vec!["chaos p50 / p95 (ms)".into(), format!("{p50:.2} / {p95:.2}")],
            ],
        )
    );

    // Machine-readable output for scripts/bench_gate.sh. Hand-rolled
    // JSON: the bench crate deliberately has no serde dependency.
    let versions: Vec<String> = chaos.versions_seen.iter().map(u64::to_string).collect();
    let json = format!(
        "{{\n  \"experiment\": \"exp_cluster\",\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"machine_threads\": {},\n  \"shards\": {},\n  \"clients\": {},\n  \
         \"scaling\": {{\"rps_1shard\": {:.2}, \"rps_{}shard\": {:.2}, \"ratio\": {:.3}, \
         \"floor\": {:.3}, \"scaling_ok\": {}}},\n  \
         \"chaos\": {{\"requests\": {}, \"items\": {}, \"lost\": {}, \"rejected\": {}, \
         \"retries\": {}, \"ejections\": {}, \"readmissions\": {}, \"skew_merges\": {}, \
         \"swaps\": {}, \"versions_seen\": [{}], \"p50_ms\": {:.3}, \"p95_ms\": {:.3}}}\n}}\n",
        args.scale,
        args.seed,
        cats_par::default_threads(),
        SHARDS,
        CLIENTS,
        rps_1,
        SHARDS,
        rps_4,
        ratio,
        floor,
        u8::from(scaling_ok),
        chaos.requests,
        chaos.items,
        chaos.lost,
        chaos.rejected,
        retries,
        ejections,
        readmissions,
        skew_merges,
        swaps,
        versions.join(", "),
        p50,
        p95,
    );
    std::fs::write("BENCH_cluster.json", json).expect("write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json");
}
