//! Table III — classifier comparison under five-fold cross-validation.
//!
//! The paper evaluates six candidates on a 5,000 + 5,000 ground-truth set
//! and reports precision/recall per model (Xgboost 0.93/0.90, SVM
//! 0.99/0.62, AdaBoost 0.90/0.90, NN 0.83/0.65, DT 0.86/0.90, NB
//! 0.91/0.65), picking Xgboost. This binary reruns that protocol on a
//! balanced sample of the D0-shaped platform.

use cats_bench::{render, setup, Args};
use cats_core::N_FEATURES;
use cats_ml::model_selection::{compare_models, paper_panel};
use cats_ml::Dataset;

fn main() {
    let args = Args::parse(0.05, 0x7AB3);
    let platform = setup::d0(args.scale, args.seed);
    let analyzer = setup::train_analyzer(&platform, args.seed);

    // Balanced ground-truth subset (the paper uses 5k + 5k).
    let (fraud, normal) = setup::split_by_label(&platform);
    let per_class = fraud.len().min(normal.len());
    println!(
        "== Table III: 5-fold CV on {per_class}+{per_class} items (D0 scale={}) ==",
        args.scale
    );

    let mut items = Vec::with_capacity(2 * per_class);
    let mut labels = Vec::with_capacity(2 * per_class);
    for it in fraud.iter().take(per_class) {
        items.push(setup::item_comments(it));
        labels.push(1u8);
    }
    for it in normal.iter().take(per_class) {
        items.push(setup::item_comments(it));
        labels.push(0u8);
    }
    let rows = cats_core::features::extract_batch(&items, &analyzer, 0);
    let mut data = Dataset::new(N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }

    let mut panel = paper_panel();
    let results = compare_models(&mut panel, &data, 5, args.seed);

    let paper: &[(&str, f64, f64)] = &[
        ("Xgboost", 0.93, 0.90),
        ("SVM", 0.99, 0.62),
        ("AdaBoost", 0.90, 0.90),
        ("Neural Network", 0.83, 0.65),
        ("Decision Tree", 0.86, 0.90),
        ("Naive Bayes", 0.91, 0.65),
    ];
    let table_rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let (_, pp, pr) = paper.iter().find(|(n, _, _)| *n == r.name).copied().unwrap_or((
                r.name.as_str(),
                f64::NAN,
                f64::NAN,
            ));
            vec![
                r.name.clone(),
                render::f3(r.precision),
                render::f3(r.recall),
                render::f3(r.f1),
                format!("{pp:.2}"),
                format!("{pr:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &["Classifier", "Precision", "Recall", "F1", "Paper P", "Paper R"],
            &table_rows
        )
    );

    let best = results.iter().max_by(|a, b| a.f1.partial_cmp(&b.f1).unwrap()).unwrap();
    println!("best by F1: {} (paper selects Xgboost)", best.name);
}
