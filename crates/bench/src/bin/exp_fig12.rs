//! Fig 12 — client (order-source) distributions.
//!
//! The paper: the largest share of fraud items' orders arrives through
//! the Web client, while normal items' orders arrive mostly through the
//! Android client — a large distributional gap that corroborates the
//! reports. Like the paper, this works purely from the client field of
//! the public comment records.

use cats_analysis::orders::client_distribution;
use cats_bench::{render, setup, Args};
use cats_collector::{Collector, CollectorConfig, PublicSite, SiteConfig};
use cats_core::ItemComments;
use cats_platform::datasets;

fn main() {
    let args = Args::parse(0.002, 0xF1612);
    println!("== Fig 12: order-source (client) distributions (scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale * 25.0, args.seed);
    let pipeline = setup::train_deploy_pipeline(&d0, args.seed);
    let e = datasets::e_platform(args.scale, args.seed.wrapping_add(3));
    let site = PublicSite::new(&e, SiteConfig::default());
    let collected = Collector::new(CollectorConfig::default()).crawl(&site);

    let items: Vec<ItemComments> =
        collected.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
    let sales: Vec<u64> = collected.items.iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);

    let fraud_items: Vec<&cats_collector::CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| r.is_fraud).map(|(i, _)| i).collect();
    let normal_items: Vec<&cats_collector::CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| !r.is_fraud).map(|(i, _)| i).collect();

    let df = client_distribution(&fraud_items);
    let dn = client_distribution(&normal_items);

    let clients = ["Web", "Android", "iPhone", "Wechat"];
    let rows: Vec<Vec<String>> = clients
        .iter()
        .map(|c| vec![c.to_string(), render::pct(df.share(c)), render::pct(dn.share(c))])
        .collect();
    println!("{}", render::table(&["Client", "Fraud orders", "Normal orders"], &rows));

    let fd = df.dominant().map(|(n, _)| n.to_string()).unwrap_or_default();
    let nd = dn.dominant().map(|(n, _)| n.to_string()).unwrap_or_default();
    println!("dominant source: fraud = {fd} (paper: Web), normal = {nd} (paper: Android)");
}
