//! Figs 2–5 — structural distributions of fraud vs normal comments.
//!
//! Fig 2: punctuation count per comment (fraud heavier).
//! Fig 3: token entropy per comment (fraud higher).
//! Fig 4: character length per comment (fraud longer, range 0–300).
//! Fig 5: unique-word ratio per comment (fraud lower / more repetitive).

use cats_analysis::{Histogram, SummaryStats};
use cats_bench::{setup, Args};
use cats_text::{stats, Segmenter, WhitespaceSegmenter};

fn main() {
    let args = Args::parse(0.05, 0xF125);
    let platform = setup::d0(args.scale, args.seed);
    let seg = WhitespaceSegmenter;
    let (fraud, normal) = setup::split_by_label(&platform);
    println!(
        "== Figs 2-5: structural comment statistics (D0 scale={}, {} fraud / {} normal items) ==",
        args.scale,
        fraud.len(),
        normal.len()
    );

    let collect = |items: &[&cats_platform::Item]| -> Vec<stats::CommentStats> {
        items
            .iter()
            .flat_map(|i| i.comments.iter())
            .map(|c| {
                let toks = seg.segment(&c.content);
                stats::CommentStats::compute(&c.content, &toks)
            })
            .collect()
    };
    let f = collect(&fraud);
    let n = collect(&normal);

    type FigureSpec = (&'static str, &'static str, fn(&stats::CommentStats) -> f64, f64, f64);
    let figures: [FigureSpec; 4] = [
        ("Fig 2: punctuation count", "fraud > normal", |s| s.punctuation as f64, 0.0, 50.0),
        ("Fig 3: comment entropy (bits)", "fraud > normal", |s| s.entropy, 0.0, 8.0),
        ("Fig 4: comment length (chars)", "fraud > normal", |s| s.chars as f64, 0.0, 300.0),
        ("Fig 5: unique word ratio", "fraud < normal", |s| s.unique_ratio, 0.0, 1.0),
    ];

    for (title, expect, extract, lo, hi) in figures {
        let fv: Vec<f64> = f.iter().map(extract).collect();
        let nv: Vec<f64> = n.iter().map(extract).collect();
        let fs = SummaryStats::of(&fv).unwrap();
        let ns = SummaryStats::of(&nv).unwrap();
        println!(
            "\n{title} — fraud mean {:.3}, normal mean {:.3} (paper: {expect})",
            fs.mean, ns.mean
        );
        println!("fraud:");
        println!("{}", Histogram::from_samples(&fv, lo, hi, 15).render(30));
        println!("normal:");
        println!("{}", Histogram::from_samples(&nv, lo, hi, 15).render(30));
    }
}
