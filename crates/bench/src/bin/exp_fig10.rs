//! Fig 10 — cross-platform comment-sentiment distributions.
//!
//! The paper compares the sentiment distributions of E-platform's
//! *reported* fraud/normal items against Taobao's *labeled* ones: the
//! fraud curves agree across platforms, and more than 99.8% of the
//! reported fraud items' comments are positive. This binary runs the
//! detector on the E-platform preset and reproduces both series.

use cats_analysis::{ks_distance, Histogram};
use cats_bench::{render, setup, Args};
use cats_core::ItemComments;
use cats_platform::datasets;
use cats_text::{Segmenter, WhitespaceSegmenter};

fn sentiments(items: &[&cats_platform::Item], analyzer: &cats_core::SemanticAnalyzer) -> Vec<f64> {
    let seg = WhitespaceSegmenter;
    items
        .iter()
        .flat_map(|i| i.comments.iter())
        .map(|c| analyzer.sentiment().score(&seg.segment(&c.content)))
        .collect()
}

fn main() {
    let args = Args::parse(0.002, 0xF1610);
    println!("== Fig 10: cross-platform sentiment distributions (scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale * 25.0, args.seed);
    let pipeline = setup::train_deploy_pipeline(&d0, args.seed);

    // Labeled platform series (Taobao role).
    let (fraud_a, normal_a) = setup::split_by_label(&d0);
    let sa_fraud = sentiments(&fraud_a, pipeline.analyzer());
    let sa_normal = sentiments(&normal_a, pipeline.analyzer());

    // Reported series on the crawled platform (E-platform role): classes
    // come from the detector's own reports, as in the paper.
    let e = datasets::e_platform(args.scale, args.seed.wrapping_add(3));
    let items: Vec<ItemComments> = e.items().iter().map(setup::item_comments).collect();
    let sales: Vec<u64> = e.items().iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);
    let mut fraud_b = Vec::new();
    let mut normal_b = Vec::new();
    for (item, rep) in e.items().iter().zip(&reports) {
        if rep.is_fraud {
            fraud_b.push(item);
        } else {
            normal_b.push(item);
        }
    }
    println!("reported on E-platform: {} fraud / {} normal", fraud_b.len(), normal_b.len());
    let sb_fraud = sentiments(&fraud_b, pipeline.analyzer());
    let sb_normal = sentiments(&normal_b, pipeline.analyzer());

    for (name, scores) in [
        ("Taobao-like labeled fraud", &sa_fraud),
        ("Taobao-like labeled normal", &sa_normal),
        ("E-platform reported fraud", &sb_fraud),
        ("E-platform reported normal", &sb_normal),
    ] {
        println!("\n{name} ({} comments):", scores.len());
        println!("{}", Histogram::from_samples(scores, 0.0, 1.0, 10).render(30));
    }

    let positive_share =
        sb_fraud.iter().filter(|&&s| s > 0.5).count() as f64 / sb_fraud.len().max(1) as f64;
    println!(
        "positive comments among reported fraud items: {} (paper: >99.8%)",
        render::pct(positive_share)
    );
    if !sb_fraud.is_empty() {
        println!(
            "cross-platform agreement (KS): fraud↔fraud {} , normal↔normal {} (small = agree)",
            render::f3(ks_distance(&sa_fraud, &sb_fraud)),
            render::f3(ks_distance(&sa_normal, &sb_normal)),
        );
    }
}
