//! Robustness — soak test under deterministic chaos injection.
//!
//! The serving stack claims crash-safety end to end: checksummed
//! atomic snapshots, a last-good mirror, supervised batch workers, and
//! checkpoint/resume training (DESIGN.md §10). This experiment attacks
//! every one of those claims at once with a seeded [`ChaosPlan`]:
//! slow-loris clients, mid-body disconnects, torn snapshot rewrites
//! under the live model watcher, injected scoring-worker panics, and a
//! final kill-and-restart that must come back up from the last-good
//! mirror. Separately, a training run is killed mid-checkpoint and
//! resumed; the resumed model must match an uninterrupted run bit for
//! bit.
//!
//! The fault *sequence* is a pure function of `--seed`, so a failure
//! reproduces exactly. Hard invariants (asserted here and gated by
//! `scripts/bench_gate.sh` off `BENCH_soak.json`):
//!
//! * zero lost responses (sockets that died without an HTTP answer);
//! * zero torn responses (2xx bodies that failed to parse, or verdict
//!   counts that disagree with the submitted batch);
//! * every worker panic is matched by a respawn, and panics never
//!   exceed the injected count (no panic storms);
//! * the kill-resumed training run is bit-identical to uninterrupted;
//! * the restart after a torn primary serves from the mirror.

use cats_bench::{render, setup, Args};
use cats_core::{CatsPipeline, DetectorConfig, ItemComments, LabeledItem, PipelineSnapshot};
use cats_io::CheckpointStore;
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::Dataset;
use cats_serve::chaos;
use cats_serve::{
    ChaosPlan, ChaosRng, Fault, ModelSlot, ModelWatcher, ScoreClient, ScoreItem, ServeConfig,
    Server,
};
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent client threads during the chaos soak.
const CLIENTS: usize = 4;
/// Items per scoring request.
const ITEMS_PER_REQUEST: usize = 8;
/// Chaos ticks; each tick draws at most one fault from the plan.
const TICKS: usize = 400;
/// Pause between chaos ticks.
const TICK: Duration = Duration::from_millis(5);
/// How long a torn snapshot is left on disk before the valid bytes are
/// restored — long enough for the 20ms watcher to observe the tear.
const TORN_WINDOW: Duration = Duration::from_millis(60);
/// Labeled reviews per polarity for the resume phase (small: the phase
/// trains twice and only determinism matters, not model quality).
const RESUME_SENTIMENT_REVIEWS: usize = 400;

/// Serializes a snapshot equivalent to `pipeline` (same analyzer, a GBT
/// retrained deterministically on the same data) — the disk format the
/// watcher hot-swaps and the chaos plan tears.
fn snapshot_json(pipeline: &CatsPipeline, platform: &cats_platform::Platform) -> String {
    let items: Vec<_> = platform.items().iter().map(setup::item_comments).collect();
    let labels: Vec<u8> = platform.items().iter().map(setup::item_label).collect();
    let rows = cats_core::features::extract_batch(&items, pipeline.analyzer(), 0);
    let mut data = Dataset::new(cats_core::N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }
    let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
    gbt.fit(&data);
    CatsPipeline::snapshot(pipeline.analyzer().clone(), DetectorConfig::default(), gbt)
        .to_json()
        .expect("snapshot serializes")
}

/// Kill/resume bit-identity: train once uninterrupted, once with a
/// simulated `kill -9` after the second checkpoint save, resume, and
/// compare detection scores bitwise.
fn resume_phase(scale: f64, seed: u64, ckpt_root: &Path) -> bool {
    let platform = setup::d0(scale, seed ^ 0x11);
    let corpus: Vec<&str> = platform
        .items()
        .iter()
        .flat_map(|i| i.comments.iter().map(|c| c.content.as_str()))
        .take(setup::MAX_W2V_COMMENTS)
        .collect();
    let (sent_pos, sent_neg) =
        setup::sentiment_corpus(platform.lexicon(), RESUME_SENTIMENT_REVIEWS, seed);
    let sp: Vec<&str> = sent_pos.iter().map(String::as_str).collect();
    let sn: Vec<&str> = sent_neg.iter().map(String::as_str).collect();
    let labeled: Vec<LabeledItem> = platform
        .items()
        .iter()
        .map(|it| LabeledItem { comments: setup::item_comments(it), label: setup::item_label(it) })
        .collect();
    let pos_seeds = platform.lexicon().positive_seeds();
    let neg_seeds = platform.lexicon().negative_seeds();
    let train = |store: &CheckpointStore| {
        CatsPipeline::train_resumable(
            &corpus,
            &pos_seeds,
            &neg_seeds,
            &sp,
            &sn,
            &labeled,
            None,
            setup::pipeline_config(),
            store,
        )
    };

    let store_a = CheckpointStore::open(ckpt_root.join("resume_a")).expect("open store A");
    let uninterrupted = train(&store_a);

    let dir_b = ckpt_root.join("resume_b");
    let store_b = CheckpointStore::open(&dir_b).expect("open store B");
    store_b.kill_after_saves(2);
    let killed = catch_unwind(AssertUnwindSafe(|| train(&store_b)));
    assert!(killed.is_err(), "armed kill switch must abort the first training run");
    // "Restart the process": a fresh store over the same directory picks
    // up whatever checkpoints the killed run left behind.
    let store_b = CheckpointStore::open(&dir_b).expect("reopen store B");
    let resumed = train(&store_b);

    let probe: Vec<ItemComments> =
        platform.items().iter().take(64).map(setup::item_comments).collect();
    let sales: Vec<u64> = platform.items().iter().take(64).map(|i| i.sales_volume).collect();
    let a = uninterrupted.detect(&probe, &sales);
    let b = resumed.detect(&probe, &sales);
    a.len() == b.len()
        && a.iter()
            .zip(&b)
            .all(|(x, y)| x.score.to_bits() == y.score.to_bits() && x.is_fraud == y.is_fraud)
}

/// Outcome of the chaos-soak load.
#[derive(Default)]
struct SoakTally {
    requests: u64,
    ok: u64,
    /// Socket died without an HTTP answer — never acceptable.
    lost: u64,
    /// 2xx that failed to parse, or a verdict count that disagrees with
    /// the submitted batch — never acceptable.
    torn: u64,
    /// Typed 429/503 backpressure.
    rejected: u64,
    /// Typed 500 (a batch died with an injected worker panic).
    internal_500: u64,
    /// Any other non-2xx status — unexpected, reported and gated.
    other_http: u64,
    versions_seen: Vec<u64>,
    elapsed_s: f64,
}

/// Per-family injected fault counts (the deterministic plan's output).
#[derive(Default)]
struct Injected {
    slow_loris: u64,
    mid_body: u64,
    torn_rewrite: u64,
    worker_panic: u64,
}

/// Runs the scoring load from [`CLIENTS`] threads until `stop` flips.
fn spawn_load(
    addr: String,
    pool: &[ScoreItem],
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<SoakTally>> {
    (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let stop = stop.clone();
            let pool = pool.to_vec();
            std::thread::spawn(move || {
                let client = ScoreClient::new(addr).with_timeout(Duration::from_secs(30));
                let mut t = SoakTally::default();
                let mut cursor = c * ITEMS_PER_REQUEST;
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<ScoreItem> = (0..ITEMS_PER_REQUEST)
                        .map(|k| pool[(cursor + k) % pool.len()].clone())
                        .collect();
                    cursor = (cursor + ITEMS_PER_REQUEST) % pool.len();
                    t.requests += 1;
                    match client.score(&batch) {
                        Ok(resp) => {
                            if resp.verdicts.len() == batch.len() {
                                t.ok += 1;
                            } else {
                                t.torn += 1;
                            }
                            if !t.versions_seen.contains(&resp.model_version) {
                                t.versions_seen.push(resp.model_version);
                            }
                        }
                        Err(cats_serve::ClientError::Parse(_)) => t.torn += 1,
                        Err(cats_serve::ClientError::Http { status: 429 | 503, .. }) => {
                            t.rejected += 1;
                        }
                        Err(cats_serve::ClientError::Http { status: 500, .. }) => {
                            t.internal_500 += 1;
                        }
                        Err(cats_serve::ClientError::Http { .. }) => t.other_http += 1,
                        Err(cats_serve::ClientError::Io(_)) => t.lost += 1,
                    }
                }
                t
            })
        })
        .collect()
}

/// Executes one fault against the live stack and books it.
fn fire(
    fault: Fault,
    addr: SocketAddr,
    server: &Server,
    primary: &Path,
    valid_bytes: &[u8],
    rng: &mut ChaosRng,
    injected: &mut Injected,
) {
    match fault {
        Fault::SlowLoris => {
            injected.slow_loris += 1;
            let _ = chaos::send_slow_loris(addr, 16);
        }
        Fault::MidBodyDisconnect => {
            injected.mid_body += 1;
            let _ = chaos::send_mid_body_disconnect(addr);
        }
        Fault::TornRewrite => {
            injected.torn_rewrite += 1;
            // Non-atomic partial overwrite, left in place long enough
            // for the watcher to read it, then the valid bytes return
            // atomically. The watcher must reject the tear, keep the
            // in-memory model serving, and swap the restore back in.
            let _ = chaos::torn_rewrite(primary, valid_bytes, rng);
            std::thread::sleep(TORN_WINDOW);
            cats_io::atomic_write(primary, valid_bytes).expect("restore primary snapshot");
        }
        Fault::WorkerPanic => {
            injected.worker_panic += 1;
            server.inject_worker_panic(1);
        }
    }
}

fn main() {
    let args = Args::parse(0.01, 0x50AC);
    let ckpt_root = std::env::temp_dir().join(format!("cats_soak_{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_root).expect("create soak scratch dir");

    // Phase 1: checkpoint/resume bit-identity (trains twice; a smaller
    // platform keeps the doubled cost in check).
    println!("== Robustness soak ==");
    println!("phase 1: kill/resume training bit-identity...");
    let resume_bit_identical = resume_phase((args.scale * 0.4).max(0.002), args.seed, &ckpt_root);
    assert!(resume_bit_identical, "kill-resumed training must be bit-identical to uninterrupted");
    println!("phase 1: resumed run bit-identical to uninterrupted run");

    // Phase 2: chaos soak against a live server + hot-swap watcher.
    let platform = setup::d0(args.scale, args.seed);
    println!("phase 2: training serving pipeline ({} items)...", platform.items().len());
    let pipeline = setup::train_pipeline(&platform, args.seed);
    let snap_json = snapshot_json(&pipeline, &platform);
    let pool: Vec<ScoreItem> = platform
        .items()
        .iter()
        .map(|it| ScoreItem {
            item_id: it.id,
            sales_volume: it.sales_volume,
            comments: it.comments.iter().map(|c| c.content.clone()).collect(),
        })
        .collect();

    let primary = ckpt_root.join("model.snapshot");
    let mirror = ckpt_root.join("last_good.snapshot");
    PipelineSnapshot::from_json(&snap_json)
        .expect("snapshot parses")
        .save(&primary)
        .expect("write primary snapshot");
    let valid_bytes = std::fs::read(&primary).expect("read primary snapshot bytes");

    let slot = Arc::new(ModelSlot::new(
        cats_serve::load_pipeline_file(&primary).expect("load primary snapshot"),
    ));
    let server = Server::start(
        slot.clone(),
        ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() },
    )
    .expect("bind soak socket");
    let sock_addr = server.addr();
    let addr = sock_addr.to_string();
    let watcher = ModelWatcher::spawn_with_checkpoint(
        slot.clone(),
        primary.clone(),
        Duration::from_millis(20),
        Some(mirror.clone()),
    );

    let panics0 = cats_obs::counter("cats.serve.batch.worker_panics").get();
    let respawns0 = cats_obs::counter("cats.serve.batch.worker_respawns").get();
    let reloads0 = cats_obs::counter("cats.serve.model.reloads").get();
    let reload_errors0 = cats_obs::counter("cats.serve.model.reload_errors").get();

    println!(
        "phase 2: soaking {addr} for {TICKS} chaos ticks ({CLIENTS} clients x {ITEMS_PER_REQUEST} items/request, seed {:#x})",
        args.seed
    );
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles = spawn_load(addr, &pool, &stop);

    let plan = ChaosPlan { seed: args.seed, ..ChaosPlan::default() };
    let mut rng = plan.rng();
    let mut injected = Injected::default();
    for tick in 0..TICKS {
        // Deterministic floor: every fault family fires at least once,
        // early, regardless of what the probabilistic draws produce.
        let forced = match tick {
            2 => Some(Fault::SlowLoris),
            4 => Some(Fault::MidBodyDisconnect),
            6 => Some(Fault::TornRewrite),
            8 => Some(Fault::WorkerPanic),
            _ => None,
        };
        if let Some(fault) = forced.or_else(|| plan.draw(&mut rng)) {
            fire(fault, sock_addr, &server, &primary, &valid_bytes, &mut rng, &mut injected);
        }
        std::thread::sleep(TICK);
    }
    // Settle: leave the primary valid, give the watcher and any
    // outstanding panic tokens time to drain while load still flows.
    cats_io::atomic_write(&primary, &valid_bytes).expect("final snapshot restore");
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    let mut tally = SoakTally::default();
    for h in handles {
        let t = h.join().expect("client thread");
        tally.requests += t.requests;
        tally.ok += t.ok;
        tally.lost += t.lost;
        tally.torn += t.torn;
        tally.rejected += t.rejected;
        tally.internal_500 += t.internal_500;
        tally.other_http += t.other_http;
        for v in t.versions_seen {
            if !tally.versions_seen.contains(&v) {
                tally.versions_seen.push(v);
            }
        }
    }
    tally.elapsed_s = started.elapsed().as_secs_f64();
    tally.versions_seen.sort_unstable();

    let worker_panics = cats_obs::counter("cats.serve.batch.worker_panics").get() - panics0;
    let worker_respawns = cats_obs::counter("cats.serve.batch.worker_respawns").get() - respawns0;
    let reloads = cats_obs::counter("cats.serve.model.reloads").get() - reloads0;
    let reload_errors = cats_obs::counter("cats.serve.model.reload_errors").get() - reload_errors0;

    // The robustness invariants (also gated by scripts/bench_gate.sh).
    assert!(tally.ok > 0, "soak must score something");
    assert_eq!(tally.lost, 0, "chaos soak lost {} responses (want 0)", tally.lost);
    assert_eq!(tally.torn, 0, "chaos soak returned {} torn responses (want 0)", tally.torn);
    assert_eq!(tally.other_http, 0, "unexpected HTTP statuses: {}", tally.other_http);
    let respawn_bound_ok =
        worker_respawns == worker_panics && worker_panics <= injected.worker_panic;
    assert!(
        respawn_bound_ok,
        "respawns must match panics and panics must stay within the injected budget: \
         panics {worker_panics}, respawns {worker_respawns}, injected {}",
        injected.worker_panic
    );
    assert!(
        reload_errors >= injected.torn_rewrite,
        "every torn rewrite must be observed and rejected: {} tears, {} reload errors",
        injected.torn_rewrite,
        reload_errors
    );
    assert!(
        reloads >= injected.torn_rewrite,
        "every restore after a tear must swap back in: {} tears, {} reloads",
        injected.torn_rewrite,
        reloads
    );
    assert!(mirror.exists(), "watcher must maintain the last-good mirror");
    cats_serve::load_pipeline_file(&mirror).expect("last-good mirror stays loadable");

    // Phase 3: kill-and-restart. The "crash" leaves a torn primary; the
    // restart must refuse it and come back up from the mirror.
    println!("phase 3: kill-and-restart from the last-good mirror...");
    watcher.stop();
    server.shutdown();
    let mut crash_rng = ChaosRng::new(args.seed ^ 0xDEAD);
    chaos::torn_rewrite(&primary, &valid_bytes, &mut crash_rng).expect("tear primary");
    assert!(
        cats_serve::load_pipeline_file(&primary).is_err(),
        "torn primary must be rejected at restart"
    );
    let restored = cats_serve::load_pipeline_file(&mirror).expect("mirror restores the model");
    let server2 = Server::start(
        Arc::new(ModelSlot::new(restored)),
        ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() },
    )
    .expect("bind restart socket");
    let probe_batch: Vec<ScoreItem> = pool.iter().take(ITEMS_PER_REQUEST).cloned().collect();
    let client = ScoreClient::new(server2.addr().to_string()).with_timeout(Duration::from_secs(30));
    let resp = client.score(&probe_batch).expect("restarted server answers");
    let restart_ok = resp.verdicts.len() == probe_batch.len();
    assert!(restart_ok, "restarted server must score a full batch");
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&ckpt_root);

    let sustained_rps = tally.requests as f64 / tally.elapsed_s;
    println!(
        "{}",
        render::table(
            &["Metric", "Value"],
            &[
                vec!["requests".into(), tally.requests.to_string()],
                vec!["ok".into(), tally.ok.to_string()],
                vec!["lost".into(), tally.lost.to_string()],
                vec!["torn".into(), tally.torn.to_string()],
                vec!["rejected (429/503)".into(), tally.rejected.to_string()],
                vec!["internal 500".into(), tally.internal_500.to_string()],
                vec!["sustained rps".into(), format!("{sustained_rps:.1}")],
                vec![
                    "faults (loris/mid/tear/panic)".into(),
                    format!(
                        "{}/{}/{}/{}",
                        injected.slow_loris,
                        injected.mid_body,
                        injected.torn_rewrite,
                        injected.worker_panic
                    ),
                ],
                vec!["panics/respawns".into(), format!("{worker_panics}/{worker_respawns}"),],
                vec!["reloads/reload errors".into(), format!("{reloads}/{reload_errors}"),],
            ],
        )
    );
    println!(
        "soak ok: 0 lost, 0 torn across {} requests; resume bit-identical; restart from mirror ok",
        tally.requests
    );

    // Machine-readable output for scripts/bench_gate.sh. Hand-rolled
    // JSON: the bench crate deliberately has no serde dependency.
    let versions: Vec<String> = tally.versions_seen.iter().map(u64::to_string).collect();
    let json = format!(
        "{{\n  \"experiment\": \"exp_soak\",\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"machine_threads\": {},\n  \"clients\": {},\n  \"items_per_request\": {},\n  \
         \"ticks\": {},\n  \
         \"soak\": {{\"requests\": {}, \"ok\": {}, \"lost\": {}, \"torn\": {}, \
         \"rejected\": {}, \"internal_500\": {}, \"other_http\": {}, \
         \"duration_s\": {:.3}, \"sustained_rps\": {:.2}, \"versions_seen\": [{}]}},\n  \
         \"chaos\": {{\"slow_loris\": {}, \"mid_body_disconnect\": {}, \
         \"torn_rewrites\": {}, \"injected_panics\": {}, \"worker_panics\": {}, \
         \"worker_respawns\": {}, \"respawn_bound_ok\": {}, \
         \"reloads\": {}, \"reload_errors\": {}}},\n  \
         \"resume\": {{\"bit_identical\": {}}},\n  \
         \"restart\": {{\"restart_ok\": {}}},\n  \
         \"soak_ok\": 1\n}}\n",
        args.scale,
        args.seed,
        cats_par::default_threads(),
        CLIENTS,
        ITEMS_PER_REQUEST,
        TICKS,
        tally.requests,
        tally.ok,
        tally.lost,
        tally.torn,
        tally.rejected,
        tally.internal_500,
        tally.other_http,
        tally.elapsed_s,
        sustained_rps,
        versions.join(", "),
        injected.slow_loris,
        injected.mid_body,
        injected.torn_rewrite,
        injected.worker_panic,
        worker_panics,
        worker_respawns,
        u8::from(respawn_bound_ok),
        reloads,
        reload_errors,
        u8::from(resume_bit_identical),
        u8::from(restart_ok),
    );
    std::fs::write("BENCH_soak.json", json).expect("write BENCH_soak.json");
    println!("wrote BENCH_soak.json");
}
