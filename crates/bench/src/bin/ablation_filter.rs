//! Ablation — the stage-1 rule filter.
//!
//! §II-B's detector first drops items with sales volume < 5 and items with
//! no positive words/2-grams. This ablation measures what the filter buys:
//! precision on an imbalanced stream and the share of items the (cheap)
//! filter spares the (expensive) classifier.

use cats_bench::{render, setup, Args};
use cats_core::pipeline::CatsPipeline;
use cats_core::{DetectorConfig, FilterDecision, ItemComments};
use cats_platform::datasets;

fn main() {
    let args = Args::parse(0.005, 0xAB1B);
    println!("== Ablation: stage-1 rule filter (D1 scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale * 10.0, args.seed);
    let d1 = datasets::d1(args.scale, args.seed.wrapping_add(7));
    let items: Vec<ItemComments> = d1.items().iter().map(setup::item_comments).collect();
    let sales: Vec<u64> = d1.items().iter().map(|i| i.sales_volume).collect();
    let labels: Vec<u8> = d1.items().iter().map(setup::item_label).collect();

    let configs = [
        ("filter on (paper)", DetectorConfig::default()),
        (
            "no sales-volume rule",
            DetectorConfig { min_sales_volume: 0, ..DetectorConfig::default() },
        ),
        (
            "no positive-evidence rule",
            DetectorConfig { require_positive_evidence: false, ..DetectorConfig::default() },
        ),
        (
            "filter off",
            DetectorConfig {
                min_sales_volume: 0,
                require_positive_evidence: false,
                ..DetectorConfig::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, cfg) in configs {
        let pipeline = setup::train_pipeline_with(&d0, args.seed, cfg);
        let reports = pipeline.detect(&items, &sales);
        let m = CatsPipeline::evaluate(&reports, &labels);
        let filtered = reports.iter().filter(|r| r.filter != FilterDecision::Classified).count();
        rows.push(vec![
            name.to_string(),
            render::f3(m.precision),
            render::f3(m.recall),
            render::f3(m.f1),
            format!("{filtered} ({})", render::pct(filtered as f64 / reports.len() as f64)),
        ]);
    }
    println!(
        "{}",
        render::table(
            &["Variant", "Precision", "Recall", "F1", "Items filtered (classifier skipped)"],
            &rows
        )
    );
}
