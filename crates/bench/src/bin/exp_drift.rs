//! Extension — adversarial drift survival: the closed
//! monitor → label-lag → retrain → validate → hot-swap loop.
//!
//! The paper evaluates a detector trained once and deployed (§V); a real
//! deployment faces sellers who *adapt*. This experiment drives the
//! epoch-indexed drift process (`cats_platform::drift`) against two
//! lanes sharing one trained starting model:
//!
//! * **frozen** — the paper's deployment: never retrained, its catch
//!   rate decays as campaigns rotate templates and strip tells;
//! * **adaptive** — a [`cats_obs::DriftMonitor`] anchored on the
//!   training feature distributions watches the scored rows, a
//!   [`cats_serve::LabelLagBuffer`] holds ground truth back one epoch
//!   (audits lag), and on a `Critical` verdict a
//!   [`cats_serve::RetrainController`] refits the classifier on the
//!   matured labels, validates the candidate on held-out labels, and
//!   hot-swaps it into the [`cats_serve::ModelSlot`].
//!
//! Two hard safety demonstrations ride along: a *poisoned* retrain
//! (label-flipped window, an adversary feeding the feedback loop) must
//! be rejected by the promotion guard with the incumbent untouched; and
//! a live HTTP server must lose zero requests while drift-triggered
//! retrains rewrite its checksummed snapshot file under load.
//!
//! Output: `BENCH_drift.json`, hard-gated by `scripts/bench_gate.sh`
//! (`drift_recovery_ok`, `drift_monitor_fired_before_floor`,
//! `drift_poisoned_rejected`, `drift_zero_loss`).

use cats_bench::{render, setup, Args};
use cats_core::{
    CatsPipeline, DetectorConfig, FeatureReferenceSet, FeatureVector, ItemComments,
    PipelineSnapshot,
};
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::{Classifier, Dataset};
use cats_obs::{DriftConfig, DriftMonitor, DriftVerdict};
use cats_platform::drift::PlatformDriftConfig;
use cats_platform::{datasets, Platform};
use cats_serve::{
    LabelLagBuffer, LaggedExample, ModelSlot, ModelWatcher, RetrainConfig, RetrainController,
    RetrainOutcome, ScoreClient, ScoreItem, ServeConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Drift epochs swept (epoch 0 is the training epoch). Evasion ramps
/// 0.22/epoch and plateaus at [`MAX_EVASION`] by epoch 3, leaving the
/// closed loop several plateau epochs of matured labels to recover on.
const EPOCHS: u32 = 9;
/// Evasion ceiling for the swept drift process. The default (0.85)
/// makes late-epoch fraud near-indistinguishable — no detector,
/// retrained or not, can catch what carries no signal. Campaigns that
/// strip *every* tell also stop moving product, so the bench models the
/// economically sustainable plateau instead.
const MAX_EVASION: f64 = 0.5;
/// Epochs ground truth lags behind scoring (audit delay).
const LABEL_LAG: u64 = 1;
/// Frozen-lane decay floor: the first epoch whose F1 drops below this
/// fraction of the epoch-0 F1 marks "the deployment has degraded".
const DECAY_FLOOR: f64 = 0.85;
/// Concurrent clients in the zero-loss HTTP phase.
const CLIENTS: usize = 3;
/// Drift-triggered snapshot rewrites performed under load.
const HOT_PROMOTIONS: usize = 3;

/// Extracts feature rows, comment lists and labels from a platform.
fn platform_batch(platform: &Platform) -> (Vec<ItemComments>, Vec<u64>, Vec<u8>) {
    let items: Vec<ItemComments> = platform.items().iter().map(setup::item_comments).collect();
    let sales: Vec<u64> = platform.items().iter().map(|i| i.sales_volume).collect();
    let labels: Vec<u8> = platform.items().iter().map(setup::item_label).collect();
    (items, sales, labels)
}

/// Fits a fresh GBT on labeled examples through `analyzer` and wraps it
/// into a snapshot — the retrain step of the closed loop (the analyzer
/// is kept: the drift process rotates campaign *composition*, not the
/// platform's language, so only the classifier needs to move).
fn refit_snapshot(
    examples: &[LaggedExample],
    analyzer: &cats_core::SemanticAnalyzer,
    detector_config: DetectorConfig,
) -> PipelineSnapshot {
    let items: Vec<&ItemComments> = examples.iter().map(|e| &e.comments).collect();
    let rows = cats_core::features::extract_batch(&items, analyzer, 0);
    let mut data = Dataset::new(cats_core::N_FEATURES);
    for (r, e) in rows.iter().zip(examples) {
        data.push(r.as_slice(), e.label);
    }
    let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
    gbt.fit(&data);
    let reference = FeatureReferenceSet::from_rows(&rows);
    CatsPipeline::snapshot(analyzer.clone(), detector_config, gbt).with_feature_reference(reference)
}

fn main() {
    let total_t0 = Instant::now();
    let args = Args::parse(0.004, 0xD21F);
    let phase = |name: &str, t0: Instant| {
        println!(
            "[{name}] {:.2}s (t+{:.2}s)",
            t0.elapsed().as_secs_f64(),
            total_t0.elapsed().as_secs_f64()
        );
    };
    let drift_cfg =
        PlatformDriftConfig { max_evasion: MAX_EVASION, ..PlatformDriftConfig::default() };

    // Phase 1: train on epoch 0 and anchor the monitor on the training
    // feature distributions (the IO2 `featref` section).
    let t0 = Instant::now();
    let train_platform = datasets::d0_drift_epoch(args.scale, args.seed, &drift_cfg, 0);
    println!(
        "== Extension: adversarial drift survival ({} items/epoch, {EPOCHS} epochs) ==",
        train_platform.items().len()
    );
    let trained = setup::train_pipeline(&train_platform, args.seed);
    let (train_items, _, _) = platform_batch(&train_platform);
    let train_rows: Vec<FeatureVector> =
        cats_core::features::extract_batch(&train_items, trained.analyzer(), 0);
    let reference = FeatureReferenceSet::from_rows(&train_rows);
    // One deterministic snapshot seeds BOTH lanes, so frozen vs adaptive
    // differ only in what the closed loop does afterwards.
    let seed_snapshot = refit_snapshot(
        &train_platform
            .items()
            .iter()
            .map(|i| LaggedExample {
                comments: setup::item_comments(i),
                sales_volume: i.sales_volume,
                label: setup::item_label(i),
            })
            .collect::<Vec<_>>(),
        trained.analyzer(),
        DetectorConfig::default(),
    );
    let seed_bytes = seed_snapshot.to_io2_bytes().expect("seed snapshot serializes");
    let restore = || {
        CatsPipeline::restore(PipelineSnapshot::from_bytes(&seed_bytes).expect("seed bytes parse"))
    };
    let frozen = restore();
    let slot = Arc::new(ModelSlot::new(restore()));
    let analyzer = trained.analyzer().clone();
    let monitor = DriftMonitor::new(
        reference.references(),
        DriftConfig { window: 256, min_window: 96, eval_every: 64, ..DriftConfig::default() },
    );
    phase("train + reference", t0);

    // Phase 2: the epoch sweep — frozen decays, the closed loop recovers.
    let t0 = Instant::now();
    let mut buffer = LabelLagBuffer::new(LABEL_LAG, 16 * train_platform.items().len());
    // The original training labels are known from day one — seed the
    // buffer with them (at tick 0, so they mature with the first
    // advance) so a retrain never *narrows* the training distribution,
    // it appends the drifted epochs to it.
    for item in train_platform.items() {
        buffer.push(
            0,
            LaggedExample {
                comments: setup::item_comments(item),
                sales_volume: item.sales_volume,
                label: setup::item_label(item),
            },
        );
    }
    // Retraining before any *drifted* labels have matured just refits
    // the status quo from a different sample — with a one-epoch label
    // lag the window must be at least three epochs deep (training set +
    // two eval epochs) to contain post-drift ground truth.
    let min_labeled = 3 * train_platform.items().len();
    let mut controller = RetrainController::new(
        slot.clone(),
        RetrainConfig { min_labeled, cooldown_ticks: 1, ..RetrainConfig::default() },
    );
    let mut frozen_f1 = Vec::new();
    let mut adaptive_f1 = Vec::new();
    let mut verdicts = Vec::new();
    let mut first_fire_epoch: Option<u32> = None;
    let mut floor_epoch: Option<u32> = None;
    let mut promotions = 0u32;
    for epoch in 0..EPOCHS {
        // A fresh platform instance per epoch (different base seed than
        // training, so even epoch 0 is held out).
        let platform = datasets::d0_drift_epoch(args.scale, args.seed ^ 0x77AA, &drift_cfg, epoch);
        let (items, sales, labels) = platform_batch(&platform);

        let f_reports = frozen.detect(&items, &sales);
        frozen_f1.push(CatsPipeline::evaluate(&f_reports, &labels).f1);

        let model = slot.load();
        let a_reports = model.pipeline.detect(&items, &sales);
        adaptive_f1.push(CatsPipeline::evaluate(&a_reports, &labels).f1);
        for rep in &a_reports {
            if let Some(f) = &rep.features {
                monitor.observe_row(&f.0);
            }
        }
        let verdict = monitor.evaluate();
        verdicts.push(verdict);
        if verdict >= DriftVerdict::Warning && first_fire_epoch.is_none() {
            first_fire_epoch = Some(epoch);
        }
        if frozen_f1[epoch as usize] < DECAY_FLOOR * frozen_f1[0] && floor_epoch.is_none() {
            floor_epoch = Some(epoch);
        }

        // Ground truth arrives one epoch late; retrain only once the
        // monitor escalates to Critical AND enough labels have matured.
        for item in platform.items() {
            buffer.push(
                epoch as u64,
                LaggedExample {
                    comments: setup::item_comments(item),
                    sales_volume: item.sales_volume,
                    label: setup::item_label(item),
                },
            );
        }
        buffer.advance(epoch as u64);
        let outcome = controller.maybe_retrain(
            epoch as u64,
            verdict == DriftVerdict::Critical,
            &buffer,
            &mut |train: &[LaggedExample]| {
                Ok(refit_snapshot(train, &analyzer, DetectorConfig::default()))
            },
        );
        if let RetrainOutcome::Promoted { version, candidate_f1, incumbent_f1 } = &outcome {
            promotions += 1;
            println!(
                "epoch {epoch}: PROMOTED v{version:?} (candidate F1 {candidate_f1:.3} vs incumbent {incumbent_f1:.3})"
            );
            // Re-anchor the monitor on what the new model was trained
            // against, so residual drift is measured against *it*.
            let matured_items: Vec<&ItemComments> =
                buffer.matured().iter().map(|e| &e.comments).collect();
            let rows = cats_core::features::extract_batch(&matured_items, &analyzer, 0);
            monitor.reset(FeatureReferenceSet::from_rows(&rows).references());
        }
        println!(
            "epoch {epoch}: frozen F1 {:.3} | adaptive F1 {:.3} | drift {} | matured {}",
            frozen_f1[epoch as usize],
            adaptive_f1[epoch as usize],
            verdict.as_str(),
            buffer.matured().len(),
        );
    }
    phase("epoch sweep", t0);

    // Judge recovery on the mean of the last two epochs — a single
    // epoch's F1 at this scale carries sampling noise either lane could
    // ride.
    let tail = |v: &[f64]| (v[v.len() - 1] + v[v.len() - 2]) / 2.0;
    let frozen_final = tail(&frozen_f1);
    let adaptive_final = tail(&adaptive_f1);
    let monitor_fired_before_floor = match (first_fire_epoch, floor_epoch) {
        (Some(fire), Some(floor)) => fire <= floor,
        (Some(_), None) => true,
        (None, _) => false,
    };
    // In-bench asserts cover the seed-independent invariants; the
    // recovery *margin* is statistical (at odd seeds the frozen lane
    // barely decays, leaving nothing to recover), so it ships as
    // `drift_recovery_ok` in the JSON and is enforced at the pinned CI
    // seed by scripts/bench_gate.sh.
    let recovery_ok = promotions >= 1 && adaptive_final >= frozen_final + 0.02;
    assert!(first_fire_epoch.is_some(), "drift monitor never fired across {EPOCHS} epochs");
    assert!(floor_epoch.is_some(), "frozen lane never decayed — drift process too weak");
    assert!(monitor_fired_before_floor, "monitor fired after the frozen lane had already decayed");
    assert!(promotions >= 1, "closed loop never promoted a retrained model");
    for (e, (f, a)) in frozen_f1.iter().zip(&adaptive_f1).enumerate() {
        assert!(
            a >= &(f - 0.03),
            "closed loop must never materially underperform the frozen lane: \
             epoch {e} adaptive {a:.3} vs frozen {f:.3}"
        );
    }

    // Phase 3: poisoned retrain — an adversary label-flips the feedback
    // window; the promotion guard must hold the incumbent.
    let t0 = Instant::now();
    let version_before = slot.version();
    let mut poison_controller = RetrainController::new(
        slot.clone(),
        RetrainConfig { min_labeled, cooldown_ticks: 0, ..RetrainConfig::default() },
    );
    let outcome = poison_controller.maybe_retrain(
        u64::from(EPOCHS) + 10,
        true,
        &buffer,
        &mut |train: &[LaggedExample]| {
            let flipped: Vec<LaggedExample> = train
                .iter()
                .map(|e| LaggedExample {
                    comments: e.comments.clone(),
                    sales_volume: e.sales_volume,
                    label: 1 - e.label,
                })
                .collect();
            Ok(refit_snapshot(&flipped, &analyzer, DetectorConfig::default()))
        },
    );
    let poisoned_rejected = matches!(outcome, RetrainOutcome::Rejected { .. });
    assert!(poisoned_rejected, "poisoned candidate must be rejected, got {outcome:?}");
    assert_eq!(slot.version(), version_before, "rejected candidate must not touch the slot");
    phase("poisoned retrain", t0);

    // Phase 4: zero-loss hot recovery over HTTP — drift-triggered
    // retrains rewrite the checksummed snapshot file while concurrent
    // clients score; the watcher swaps each rewrite in and no request
    // may be lost.
    let t0 = Instant::now();
    let dir = std::env::temp_dir().join(format!("cats-exp-drift-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let model_path = dir.join("model.cats");
    cats_io::write_checksummed(&model_path, &seed_bytes).expect("write initial snapshot");
    let serve_slot = Arc::new(ModelSlot::new(
        cats_serve::load_pipeline_file(&model_path).expect("load snapshot"),
    ));
    let serve_monitor = Arc::new(DriftMonitor::new(
        reference.references(),
        DriftConfig { window: 256, min_window: 96, eval_every: 64, ..DriftConfig::default() },
    ));
    let server = cats_bench::net::start_server_with_drift_retrying(
        serve_slot.clone(),
        ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() },
        Some(serve_monitor.clone()),
    );
    let watcher =
        ModelWatcher::spawn(serve_slot.clone(), model_path.clone(), Duration::from_millis(30));
    let addr = server.addr().to_string();
    // Clients replay the LAST drift epoch — the traffic the incumbent
    // was never trained on — so the live monitor sees real drift.
    let last_platform =
        datasets::d0_drift_epoch(args.scale, args.seed ^ 0x77AA, &drift_cfg, EPOCHS - 1);
    let pool: Vec<ScoreItem> = last_platform
        .items()
        .iter()
        .map(|it| ScoreItem {
            item_id: it.id,
            sales_volume: it.sales_volume,
            comments: it.comments.iter().map(|c| c.content.clone()).collect(),
        })
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let (addr, stop, pool) = (addr.clone(), stop.clone(), pool.clone());
            std::thread::spawn(move || {
                let client = ScoreClient::new(addr).with_timeout(Duration::from_secs(30));
                let (mut ok, mut lost) = (0u64, 0u64);
                let mut versions: Vec<u64> = Vec::new();
                let mut cursor = c * 7;
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<ScoreItem> =
                        (0..6).map(|k| pool[(cursor + k) % pool.len()].clone()).collect();
                    cursor = (cursor + 6) % pool.len();
                    match client.score(&batch) {
                        Ok(resp) => {
                            ok += 1;
                            if !versions.contains(&resp.model_version) {
                                versions.push(resp.model_version);
                            }
                        }
                        Err(cats_serve::ClientError::Http { status: 429 | 503, .. }) => {}
                        Err(_) => lost += 1,
                    }
                }
                (ok, lost, versions)
            })
        })
        .collect();
    // The recovery loop: file-promote retrained candidates while load
    // runs. Each round nudges the operating threshold so every rewrite
    // is a distinct artifact the watcher must validate and swap.
    let mut file_controller = RetrainController::new(
        slot.clone(),
        RetrainConfig {
            min_labeled,
            cooldown_ticks: 0,
            snapshot_path: Some(model_path.clone()),
            ..RetrainConfig::default()
        },
    );
    let mut file_promotions = 0u32;
    for round in 0..HOT_PROMOTIONS {
        let config = DetectorConfig {
            threshold: 0.5 + 0.002 * (round as f64 + 1.0),
            ..DetectorConfig::default()
        };
        let outcome = file_controller.maybe_retrain(
            1_000 + round as u64,
            true,
            &buffer,
            &mut |train: &[LaggedExample]| Ok(refit_snapshot(train, &analyzer, config.clone())),
        );
        if matches!(outcome, RetrainOutcome::Promoted { .. }) {
            file_promotions += 1;
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    stop.store(true, Ordering::Relaxed);
    let (mut ok, mut lost) = (0u64, 0u64);
    let mut versions_seen: Vec<u64> = Vec::new();
    for h in clients {
        let (o, l, vs) = h.join().expect("client thread");
        ok += o;
        lost += l;
        for v in vs {
            if !versions_seen.contains(&v) {
                versions_seen.push(v);
            }
        }
    }
    versions_seen.sort_unstable();
    let health = ScoreClient::new(addr.clone()).health().expect("healthz responds");
    let drift_rows = serve_monitor.rows_seen();
    watcher.stop();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(lost, 0, "drift-triggered hot-swaps must not lose requests");
    assert!(ok > 0, "load phase scored nothing");
    assert!(
        file_promotions >= 1 && versions_seen.len() > 1,
        "load must observe the promoted models: {file_promotions} promotions, versions {versions_seen:?}"
    );
    assert!(drift_rows > 0, "the server-side monitor saw no scored rows");
    assert!(health.drift != "off" && !health.drift.is_empty(), "healthz must report drift state");
    phase("http zero-loss recovery", t0);

    let rows: Vec<Vec<String>> = (0..EPOCHS as usize)
        .map(|e| {
            vec![
                e.to_string(),
                format!("{:.3}", frozen_f1[e]),
                format!("{:.3}", adaptive_f1[e]),
                verdicts[e].as_str().to_string(),
            ]
        })
        .collect();
    println!("{}", render::table(&["Epoch", "Frozen F1", "Adaptive F1", "Drift verdict"], &rows));
    println!(
        "fired at epoch {:?}, frozen crossed the decay floor at epoch {:?}, {promotions} promotions; \
         http: {ok} requests, {lost} lost, versions {versions_seen:?}, healthz drift \"{}\"",
        first_fire_epoch, floor_epoch, health.drift
    );

    // Machine-readable output for scripts/bench_gate.sh. Hand-rolled
    // JSON: the bench crate deliberately has no serde dependency.
    let f1s = |v: &[f64]| -> String {
        v.iter().map(|x| format!("{x:.4}")).collect::<Vec<_>>().join(", ")
    };
    let json = format!(
        "{{\n  \"experiment\": \"exp_drift\",\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"epochs\": {},\n  \"label_lag_epochs\": {},\n  \
         \"frozen_f1_per_epoch\": [{}],\n  \"adaptive_f1_per_epoch\": [{}],\n  \
         \"frozen_tail_f1\": {:.4},\n  \"adaptive_tail_f1\": {:.4},\n  \
         \"drift_first_fire_epoch\": {},\n  \"frozen_floor_epoch\": {},\n  \
         \"drift_monitor_fired_before_floor\": {},\n  \"drift_promotions\": {},\n  \
         \"drift_recovery_ok\": {},\n  \"drift_poisoned_rejected\": {},\n  \
         \"drift_http_requests\": {},\n  \"drift_http_lost\": {},\n  \
         \"drift_zero_loss\": {},\n  \"drift_file_promotions\": {},\n  \
         \"drift_versions_observed\": {},\n  \"drift_monitor_rows\": {},\n  \
         \"drift_health_verdict\": \"{}\"\n}}\n",
        args.scale,
        args.seed,
        EPOCHS,
        LABEL_LAG,
        f1s(&frozen_f1),
        f1s(&adaptive_f1),
        frozen_final,
        adaptive_final,
        first_fire_epoch.map_or(-1, |e| e as i64),
        floor_epoch.map_or(-1, |e| e as i64),
        u8::from(monitor_fired_before_floor),
        promotions,
        u8::from(recovery_ok),
        u8::from(poisoned_rejected),
        ok,
        lost,
        u8::from(lost == 0),
        file_promotions,
        versions_seen.len(),
        drift_rows,
        health.drift,
    );
    std::fs::write("BENCH_drift.json", json).expect("write BENCH_drift.json");
    println!("wrote BENCH_drift.json");
}
