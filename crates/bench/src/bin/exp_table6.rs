//! Table VI — CATS performance on D1.
//!
//! The paper pre-trains the detector on D0 and evaluates on D1, reporting
//! two slices: the overall fraud items (P 0.91 / R 0.90 / F 0.90) and the
//! fraud items labeled with sufficient evidence (P 0.83 / R 0.92 /
//! F 0.87). This binary runs the same transfer: train on a D0-shaped
//! platform, detect on a *differently seeded* D1-shaped platform, and
//! slice by label provenance.

use cats_bench::{render, setup, Args};
use cats_core::pipeline::{calibrate_balanced_threshold, EvaluationSlices};
use cats_core::ItemComments;
use cats_platform::datasets;

fn main() {
    let args = Args::parse(0.01, 0x7AB6);
    println!("== Table VI: train on D0, evaluate on D1 (scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale * 5.0, args.seed);
    let mut pipeline = setup::train_pipeline(&d0, args.seed);
    println!(
        "trained on D0: {} items, detector = {}",
        d0.items().len(),
        pipeline.detector().classifier_name()
    );

    // Calibrate the operating point on a held-out *production-shaped*
    // validation platform (same prevalence as the target): the balanced
    // (P ≈ R) threshold, matching the paper's reported P ≈ R ≈ 0.9 row.
    // Calibrating at deployment prevalence matters — a threshold balanced
    // on the curated 40%-fraud D0 set over-fires at D1's 1.3%.
    let holdout = datasets::d1(args.scale * 0.4, args.seed.wrapping_add(101));
    let h_items: Vec<ItemComments> = holdout.items().iter().map(setup::item_comments).collect();
    let h_sales: Vec<u64> = holdout.items().iter().map(|i| i.sales_volume).collect();
    let h_reports = pipeline.detect(&h_items, &h_sales);
    let h_labels: Vec<u8> = holdout.items().iter().map(setup::item_label).collect();
    let threshold = calibrate_balanced_threshold(&h_reports, &h_labels);
    pipeline.detector_mut().set_threshold(threshold);
    println!("calibrated balanced threshold on holdout: {threshold:.3}");

    let d1 = datasets::d1(args.scale, args.seed.wrapping_add(7));
    let items: Vec<ItemComments> = d1.items().iter().map(setup::item_comments).collect();
    let sales: Vec<u64> = d1.items().iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);
    let kinds: Vec<_> = d1.items().iter().map(|i| setup::label_kind(i.label)).collect();
    let slices = EvaluationSlices::compute(&reports, &kinds);

    let rows = vec![
        vec![
            "fraud items labeled with sufficient evidences".to_string(),
            render::f3(slices.sufficient_evidence.precision),
            render::f3(slices.sufficient_evidence.recall),
            render::f3(slices.sufficient_evidence.f1),
            "0.83 / 0.92 / 0.87".to_string(),
        ],
        vec![
            "the overall fraud items".to_string(),
            render::f3(slices.overall.precision),
            render::f3(slices.overall.recall),
            render::f3(slices.overall.f1),
            "0.91 / 0.90 / 0.90".to_string(),
        ],
    ];
    println!(
        "{}",
        render::table(&["Category", "Precision", "Recall", "F-score", "Paper P/R/F"], &rows)
    );

    let reported = reports.iter().filter(|r| r.is_fraud).count();
    println!(
        "reported {} frauds among {} items ({} truly fraudulent)",
        reported,
        d1.items().len(),
        d1.items().iter().filter(|i| i.label.is_fraud()).count()
    );
}
