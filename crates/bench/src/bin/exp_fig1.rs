//! Fig 1 — sentiment distributions of fraud vs normal items' comments.
//!
//! The paper samples 5,000 fraud + 5,000 normal items (~70k comments per
//! side) and plots the comment-sentiment densities: fraud mass
//! concentrates near 1.0, normal mass near 0.7. This binary reproduces
//! the two series with the reproduction's sentiment model.

use cats_analysis::{Histogram, SummaryStats};
use cats_bench::{setup, Args};
use cats_text::{Segmenter, WhitespaceSegmenter};

fn main() {
    let args = Args::parse(0.05, 0xF161);
    let platform = setup::d0(args.scale, args.seed);
    let analyzer = setup::train_analyzer(&platform, args.seed);
    let seg = WhitespaceSegmenter;

    let (fraud, normal) = setup::split_by_label(&platform);
    println!(
        "== Fig 1: comment sentiment (D0 scale={}, {} fraud / {} normal items) ==",
        args.scale,
        fraud.len(),
        normal.len()
    );

    let score_all = |items: &[&cats_platform::Item]| -> Vec<f64> {
        items
            .iter()
            .flat_map(|i| i.comments.iter())
            .map(|c| analyzer.sentiment().score(&seg.segment(&c.content)))
            .collect()
    };
    let fraud_scores = score_all(&fraud);
    let normal_scores = score_all(&normal);

    for (name, scores, paper) in [
        ("fraud items", &fraud_scores, "mass concentrated near 1.0"),
        ("normal items", &normal_scores, "mass concentrated near 0.7"),
    ] {
        let s = SummaryStats::of(scores).expect("non-empty");
        println!(
            "\n{name}: {} comments, mean {:.3}, median {:.3} (paper: {paper})",
            scores.len(),
            s.mean,
            s.median
        );
        println!("{}", Histogram::from_samples(scores, 0.0, 1.0, 20).render(40));
    }
}
