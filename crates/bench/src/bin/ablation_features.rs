//! Ablation — feature groups.
//!
//! The paper organizes its 11 features into three categories (word-level,
//! semantic, structural) and claims all contribute. This ablation retrains
//! the detector's classifier with each group zeroed out and reports the
//! F1 cost, validating the taxonomy.

use cats_bench::{render, setup, Args};
use cats_core::{FEATURE_NAMES, N_FEATURES};
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::model_selection::cross_validate;
use cats_ml::Dataset;

/// Feature indexes per paper category.
const WORD_LEVEL: &[usize] = &[0, 1, 9, 10]; // positive counts + n-grams
const SEMANTIC: &[usize] = &[3]; // averageSentiment
const STRUCTURAL: &[usize] = &[2, 4, 5, 6, 7, 8];

fn zeroed(data: &Dataset, drop: &[usize]) -> Dataset {
    let mut out = Dataset::new(data.n_features());
    let mut buf = vec![0.0; data.n_features()];
    for i in 0..data.len() {
        buf.copy_from_slice(data.row(i));
        for &f in drop {
            buf[f] = 0.0;
        }
        out.push(&buf, data.label(i));
    }
    out
}

fn main() {
    let args = Args::parse(0.05, 0xAB1A);
    let platform = setup::d0(args.scale, args.seed);
    let analyzer = setup::train_analyzer(&platform, args.seed);
    println!("== Ablation: feature groups (D0 scale={}) ==", args.scale);

    let items: Vec<_> = platform.items().iter().map(setup::item_comments).collect();
    let labels: Vec<u8> = platform.items().iter().map(setup::item_label).collect();
    let rows = cats_core::features::extract_batch(&items, &analyzer, 0);
    let mut data = Dataset::new(N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }

    let variants: [(&str, &[usize]); 4] = [
        ("all features", &[]),
        ("without word-level", WORD_LEVEL),
        ("without semantic", SEMANTIC),
        ("without structural", STRUCTURAL),
    ];
    let mut out_rows = Vec::new();
    let mut baseline_f1 = 0.0;
    for (name, drop) in variants {
        let d = zeroed(&data, drop);
        let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
        let r = cross_validate(&mut gbt, &d, 5, args.seed);
        if drop.is_empty() {
            baseline_f1 = r.f1;
        }
        out_rows.push(vec![
            name.to_string(),
            render::f3(r.precision),
            render::f3(r.recall),
            render::f3(r.f1),
            format!("{:+.3}", r.f1 - baseline_f1),
        ]);
    }
    println!("{}", render::table(&["Variant", "Precision", "Recall", "F1", "ΔF1"], &out_rows));
    println!(
        "groups: word-level = {:?}; semantic = {:?}; structural = {:?}",
        WORD_LEVEL.iter().map(|&f| FEATURE_NAMES[f]).collect::<Vec<_>>(),
        SEMANTIC.iter().map(|&f| FEATURE_NAMES[f]).collect::<Vec<_>>(),
        STRUCTURAL.iter().map(|&f| FEATURE_NAMES[f]).collect::<Vec<_>>(),
    );
}
