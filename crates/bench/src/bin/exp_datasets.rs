//! Tables IV & V — dataset compositions.
//!
//! Table IV: D0 has 14,000 fraud items, 20,000 normal items, 474,000
//! comments. Table V: D1 has 18,682 fraud items (16,782 with sufficient
//! evidence), 1,461,452 normal items, 72,340,999 comments. This binary
//! instantiates both presets at the requested scale and prints the
//! realized counts next to the paper's full-size ones.

use cats_bench::{render, Args};
use cats_platform::datasets;

fn main() {
    let args = Args::parse(0.01, 0xDA7A);
    println!("== Tables IV & V: dataset compositions (scale={}) ==", args.scale);

    let d0 = datasets::d0(args.scale, args.seed);
    let d1 = datasets::d1(args.scale, args.seed.wrapping_add(1));

    let (s0, e0, n0) = d0.label_counts();
    let (s1, e1, n1) = d1.label_counts();

    let rows = vec![
        vec![
            "D0 (Table IV)".to_string(),
            (s0 + e0).to_string(),
            n0.to_string(),
            d0.comment_count().to_string(),
            "14,000 / 20,000 / 474,000".to_string(),
        ],
        vec![
            "D1 (Table V)".to_string(),
            (s1 + e1).to_string(),
            n1.to_string(),
            d1.comment_count().to_string(),
            "18,682 / 1,461,452 / 72,340,999".to_string(),
        ],
    ];
    println!(
        "{}",
        render::table(&["Dataset", "#FI", "#NI", "#comments", "Paper (full scale)"], &rows)
    );
    println!(
        "D1 fraud-label split: {} sufficient-evidence / {} expert-labeled \
         (paper: 16,782 / 1,900; ratio {:.3} vs paper 0.898)",
        s1,
        e1,
        s1 as f64 / (s1 + e1) as f64
    );
    println!(
        "comments per item: D0 {:.1} (paper 13.9), D1 {:.1} (paper 48.9)",
        d0.comment_count() as f64 / d0.items().len() as f64,
        d1.comment_count() as f64 / d1.items().len() as f64
    );
}
