//! The CLI subcommands, factored as library functions so they are
//! testable without spawning processes.
//!
//! * [`generate`] — synthesize a labeled JSONL dataset from the platform
//!   generator (for demos and pipelines without proprietary data);
//! * [`train`] — train the full CATS pipeline from a labeled JSONL file
//!   and persist the model snapshot;
//! * [`detect`] — load a snapshot and score an unlabeled JSONL file,
//!   emitting one report per item plus a batch summary;
//! * [`analyze`] — evaluate reports against a labeled file
//!   (precision/recall/F1) for closed-loop runs;
//! * [`crawl`] — run the resilient collector against the simulated public
//!   site (optionally fault-injected) and emit the collected items as
//!   unlabeled JSONL, the public-data scenario end to end;
//! * [`start_server`] / [`score`] — the online half: stand up the
//!   `cats-serve` HTTP service over a model snapshot (hot-swapping it on
//!   rewrite with `--watch`) and score JSONL through it from a client.

use crate::io::{read_items, write_items, write_reports, ItemLine, ReportLine};
use cats_collector::{Collector, CollectorConfig, CrawlStats, FaultPlan, PublicSite, SiteConfig};
use cats_core::pipeline::PipelineSnapshot;
use cats_core::{
    CatsPipeline, DetectionSummary, DetectorConfig, ItemComments, SemanticAnalyzer, N_FEATURES,
};
use cats_embedding::{ExpansionConfig, Word2VecConfig};
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::metrics::BinaryMetrics;
use cats_ml::{Classifier, Dataset};
use cats_platform::comment_model::{generate_comment, CommentStyle};
use cats_platform::datasets;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::io::{BufRead, Read};

/// Runs `f` bracketed by a [`cats_obs::StageTimer`], returning its result
/// plus the per-run profile carved out of the global metrics registry.
/// This is what `--metrics-out` wraps around a subcommand.
pub fn profiled<T>(label: &str, f: impl FnOnce() -> T) -> (T, cats_obs::RunProfile) {
    let timer = cats_obs::StageTimer::start(label);
    let out = f();
    (out, timer.finish())
}

/// Synthesizes a D0-shaped labeled dataset as JSONL lines.
pub fn generate(scale: f64, seed: u64, out: &mut dyn std::io::Write) -> Result<usize, String> {
    let platform = datasets::d0(scale, seed);
    let items: Vec<ItemLine> = platform
        .items()
        .iter()
        .map(|it| ItemLine {
            item_id: it.id,
            sales_volume: it.sales_volume,
            label: Some(u8::from(it.label.is_fraud())),
            comments: it.comments.iter().map(|c| c.content.clone()).collect(),
        })
        .collect();
    write_items(out, &items).map_err(|e| e.to_string())?;
    Ok(items.len())
}

/// Trains the pipeline from labeled JSONL and returns the serialized
/// snapshot (JSON). `threshold` sets the detector's operating point.
pub fn train(
    input: &mut dyn BufRead,
    threshold: f64,
    seed: u64,
) -> Result<(String, usize), String> {
    train_checkpointed(input, threshold, seed, None)
}

/// [`train`] with crash recovery: the two expensive stages — word2vec
/// epochs and GBT boosting rounds — checkpoint into `store` (slots
/// `"w2v"` and `"gbt"`), so a rerun after a kill resumes mid-stage
/// instead of starting over; stage fingerprints reject checkpoints from
/// different inputs or hyperparameters. Checkpointed word2vec always
/// uses the deterministic sharded schedule, so an interrupted-and-
/// resumed run is bit-identical to an uninterrupted checkpointed one.
/// All slots are cleared on success.
pub fn train_checkpointed(
    input: &mut dyn BufRead,
    threshold: f64,
    seed: u64,
    store: Option<&cats_io::CheckpointStore>,
) -> Result<(String, usize), String> {
    let read_span = cats_obs::span!("cats.cli.train.read_input");
    let items = read_items(input)?;
    drop(read_span);
    if items.is_empty() {
        return Err("no items in training input".into());
    }
    let labels: Vec<u8> = items
        .iter()
        .map(|i| i.label.ok_or_else(|| format!("item {} has no label", i.item_id)))
        .collect::<Result<_, String>>()?;
    if !labels.contains(&1) || !labels.contains(&0) {
        return Err("training data must contain both classes".into());
    }

    // Semantic analyzer from the training comments themselves. Sentiment
    // reviews come from the synthetic language model (the SnowNLP
    // stand-in is pre-trained, exactly as in the paper).
    let corpus: Vec<&str> =
        items.iter().flat_map(|i| i.comments.iter().map(String::as_str)).collect();
    let lang = cats_platform::SyntheticLexicon::generate(Default::default(), 0x1A96);
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<String> = (0..2_000)
        .map(|_| generate_comment(&lang, CommentStyle::OrganicPositive, &mut rng))
        .collect();
    let neg: Vec<String> = (0..2_000)
        .map(|_| generate_comment(&lang, CommentStyle::OrganicNegative, &mut rng))
        .collect();
    let semantic_cfg = cats_core::SemanticConfig {
        word2vec: Word2VecConfig { dim: 48, epochs: 3, ..Word2VecConfig::default() },
        expansion: ExpansionConfig::default(),
        ..cats_core::SemanticConfig::default()
    };
    let pos_refs: Vec<&str> = pos.iter().map(String::as_str).collect();
    let neg_refs: Vec<&str> = neg.iter().map(String::as_str).collect();
    let analyzer = match store {
        Some(store) => SemanticAnalyzer::train_checkpointed(
            &corpus,
            &lang.positive_seeds(),
            &lang.negative_seeds(),
            &pos_refs,
            &neg_refs,
            semantic_cfg,
            store,
        ),
        None => SemanticAnalyzer::train(
            &corpus,
            &lang.positive_seeds(),
            &lang.negative_seeds(),
            &pos_refs,
            &neg_refs,
            semantic_cfg,
        ),
    };

    let ics: Vec<ItemComments> = items.iter().map(ItemLine::to_item_comments).collect();
    let rows = cats_core::features::extract_batch(&ics, &analyzer, 0);
    let mut data = Dataset::new(N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }
    let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
    match store {
        Some(store) => gbt.fit_checkpointed(&data, store, "gbt", 10),
        None => gbt.fit(&data),
    }

    let _snap_span = cats_obs::span!("cats.cli.train.snapshot");
    let snapshot = CatsPipeline::snapshot(
        analyzer,
        DetectorConfig { threshold, ..DetectorConfig::default() },
        gbt,
    );
    let json = snapshot.to_json().map_err(|e| e.to_string())?;
    if let Some(store) = store {
        store.clear_all();
    }
    Ok((json, items.len()))
}

/// Loads a snapshot and scores unlabeled JSONL items; writes JSONL
/// reports and returns the batch summary. `model_bytes` is sniffed:
/// both the CATS-IO2 binary container and JSON snapshots are accepted.
pub fn detect(
    model_bytes: &[u8],
    input: &mut dyn BufRead,
    out: &mut dyn std::io::Write,
) -> Result<DetectionSummary, String> {
    let load_span = cats_obs::span!("cats.cli.detect.load_model");
    // from_bytes also validates the snapshot format version, so a model
    // written by a newer build fails loudly instead of misbehaving.
    let snapshot = PipelineSnapshot::from_bytes(model_bytes).map_err(|e| e.to_string())?;
    let pipeline = CatsPipeline::restore(snapshot);
    drop(load_span);
    let read_span = cats_obs::span!("cats.cli.detect.read_input");
    let items = read_items(input)?;
    let ics: Vec<ItemComments> = items.iter().map(ItemLine::to_item_comments).collect();
    let sales: Vec<u64> = items.iter().map(|i| i.sales_volume).collect();
    drop(read_span);
    let reports = pipeline.detect(&ics, &sales);

    let lines: Vec<ReportLine> = reports
        .iter()
        .zip(&items)
        .map(|(r, i)| ReportLine {
            item_id: i.item_id,
            filter: cats_serve::wire::filter_str(r.filter).to_string(),
            score: r.score,
            is_fraud: r.is_fraud,
        })
        .collect();
    let write_span = cats_obs::span!("cats.cli.detect.write_reports", { lines.len() });
    write_reports(out, &lines).map_err(|e| e.to_string())?;
    drop(write_span);
    Ok(DetectionSummary::from_reports(&reports))
}

/// What [`convert`] did, for the CLI's closing summary line.
#[derive(Debug)]
pub struct ConvertSummary {
    /// Format sniffed from the input file (`"json"` or `"cats-io2"`).
    pub in_format: &'static str,
    /// Format chosen by the output extension (`.cats` selects IO2).
    pub out_format: &'static str,
    /// Size of the written output file in bytes.
    pub out_bytes: u64,
    /// Items scored under both formats when `verify` was set (0 otherwise).
    pub verified_items: usize,
}

/// Converts a model snapshot between the legacy checksummed-JSON format
/// and the CATS-IO2 binary container, in either direction. The output
/// format follows the `--out` extension: `.cats` writes IO2, anything
/// else writes checksummed JSON. Both encoders are canonical, so after
/// writing, the output is read back, decoded, and re-encoded — the
/// re-encoding must be byte-identical to the written file, or the
/// conversion fails instead of leaving a snapshot that drifts on the
/// next rewrite. With `verify`, the input and the freshly written
/// output are additionally restored into full pipelines and scored over
/// a fixed deterministic batch; every score must be bit-identical
/// across the two formats.
pub fn convert(
    in_path: &std::path::Path,
    out_path: &std::path::Path,
    verify: bool,
) -> Result<ConvertSummary, String> {
    let payload =
        cats_io::read_checksummed(in_path).map_err(|e| format!("{}: {e}", in_path.display()))?;
    let in_format = if cats_io::io2::is_io2(&payload) { "cats-io2" } else { "json" };
    let snapshot = PipelineSnapshot::from_bytes(&payload)
        .map_err(|e| format!("{}: {e}", in_path.display()))?;

    let to_cats = out_path.extension().is_some_and(|e| e == "cats");
    let out_format = if to_cats { "cats-io2" } else { "json" };
    if to_cats {
        snapshot.save(out_path).map_err(|e| format!("{}: {e}", out_path.display()))?;
    } else {
        snapshot.save_json(out_path).map_err(|e| format!("{}: {e}", out_path.display()))?;
    }

    // Round-trip check: the written payload must decode to a snapshot
    // that re-encodes to the exact same bytes.
    let written =
        cats_io::read_checksummed(out_path).map_err(|e| format!("{}: {e}", out_path.display()))?;
    let round = PipelineSnapshot::from_bytes(&written)
        .map_err(|e| format!("{}: round-trip: {e}", out_path.display()))?;
    let reencoded = if to_cats {
        round.to_io2_bytes().map_err(|e| e.to_string())?
    } else {
        round.to_json().map_err(|e| e.to_string())?.into_bytes()
    };
    if reencoded != written {
        return Err(format!(
            "{}: round-trip is not byte-identical ({} vs {} bytes)",
            out_path.display(),
            reencoded.len(),
            written.len(),
        ));
    }

    let verified_items = if verify { verify_scores_match(&payload, &written)? } else { 0 };
    let out_bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(written.len() as u64);
    Ok(ConvertSummary { in_format, out_format, out_bytes, verified_items })
}

/// Scores a fixed deterministic batch under two snapshot encodings and
/// requires bit-identical scores. Returns the number of items compared.
fn verify_scores_match(a: &[u8], b: &[u8]) -> Result<usize, String> {
    let restore = |bytes: &[u8]| -> Result<CatsPipeline, String> {
        let snap = PipelineSnapshot::from_bytes(bytes).map_err(|e| e.to_string())?;
        Ok(CatsPipeline::restore(snap))
    };
    let pa = restore(a)?;
    let pb = restore(b)?;
    let platform = datasets::d0(0.002, 0xC0117E57);
    let items: Vec<ItemLine> = platform
        .items()
        .iter()
        .map(|it| ItemLine {
            item_id: it.id,
            sales_volume: it.sales_volume,
            label: None,
            comments: it.comments.iter().map(|c| c.content.clone()).collect(),
        })
        .collect();
    let ics: Vec<ItemComments> = items.iter().map(ItemLine::to_item_comments).collect();
    let sales: Vec<u64> = items.iter().map(|i| i.sales_volume).collect();
    let ra = pa.detect(&ics, &sales);
    let rb = pb.detect(&ics, &sales);
    for (x, y) in ra.iter().zip(&rb) {
        if x.score.to_bits() != y.score.to_bits() || x.is_fraud != y.is_fraud {
            return Err(format!(
                "verification failed: scores diverge across formats ({} vs {})",
                x.score, y.score
            ));
        }
    }
    Ok(ra.len())
}

/// Crawls the simulated public site of an E-platform-shaped world and
/// writes the collected items as unlabeled JSONL (ready for [`detect`]).
/// `fault_intensity` in `[0, 1]` scales the injected fault schedule
/// (0 = clean site). Returns the item count and the crawl statistics.
pub fn crawl(
    scale: f64,
    seed: u64,
    fault_intensity: f64,
    out: &mut dyn std::io::Write,
) -> Result<(usize, CrawlStats), String> {
    if !(0.0..=1.0).contains(&fault_intensity) {
        return Err("--faults must be in [0, 1]".into());
    }
    let platform = datasets::e_platform(scale, seed);
    let site = PublicSite::new(
        &platform,
        SiteConfig {
            seed: seed ^ 0x517E,
            faults: FaultPlan::at_intensity(fault_intensity),
            ..SiteConfig::default()
        },
    );
    let mut collector = Collector::new(CollectorConfig::default());
    let data = collector.crawl(&site);
    let items: Vec<ItemLine> = data
        .items
        .iter()
        .map(|it| ItemLine {
            item_id: it.item_id,
            sales_volume: it.sales_volume,
            label: None,
            comments: it.comments.iter().map(|c| c.content.clone()).collect(),
        })
        .collect();
    write_items(out, &items).map_err(|e| e.to_string())?;
    Ok((items.len(), collector.stats()))
}

/// Options for the `serve` subcommand.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Bind address (`host:port`; port 0 lets the OS pick).
    pub addr: String,
    /// Path to the model snapshot written by `train`.
    pub model_path: String,
    /// Hot-swap the model when the snapshot file is rewritten.
    pub watch: bool,
    /// Micro-batcher: dispatch once a batch holds this many items.
    pub max_batch_items: usize,
    /// Micro-batcher: coalescing window in milliseconds.
    pub max_delay_ms: u64,
    /// Bounded request queue capacity (overflow answers 429).
    pub queue_capacity: usize,
    /// Batch worker threads.
    pub workers: usize,
    /// Directory for the *last-good* model mirror. At startup, a
    /// corrupt/torn primary snapshot falls back to the mirror instead of
    /// refusing to serve; with `watch`, every successfully swapped
    /// snapshot refreshes it.
    pub checkpoint_dir: Option<String>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        let b = cats_serve::BatchConfig::default();
        Self {
            addr: "127.0.0.1:7878".into(),
            model_path: String::new(),
            watch: false,
            max_batch_items: b.max_batch_items,
            max_delay_ms: b.max_delay.as_millis() as u64,
            queue_capacity: b.queue_capacity,
            workers: b.workers,
            checkpoint_dir: None,
        }
    }
}

/// Loads the snapshot at `opts.model_path` and starts the scoring
/// service. Returns the running server (bound address via
/// [`cats_serve::Server::addr`]) and, with `watch`, the file watcher
/// that hot-swaps rewrites of the snapshot into the live server.
pub fn start_server(
    opts: &ServeOpts,
) -> Result<(cats_serve::Server, Option<cats_serve::ModelWatcher>), String> {
    let path = std::path::Path::new(&opts.model_path);
    let last_good: Option<std::path::PathBuf> = match &opts.checkpoint_dir {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            Some(dir.join("last_good.snapshot"))
        }
        None => None,
    };
    let pipeline = match cats_serve::load_pipeline_file(path) {
        Ok(p) => p,
        Err(primary_err) => {
            // A torn or corrupt primary snapshot is exactly what the
            // last-good mirror exists for: serve the mirror rather than
            // refuse to start (DESIGN.md §10).
            let Some(lg) = &last_good else { return Err(primary_err) };
            let p = cats_serve::load_pipeline_file(lg).map_err(|e| {
                format!("{primary_err}; last-good fallback {} also failed: {e}", lg.display())
            })?;
            cats_obs::counter("cats.cli.serve.last_good_fallbacks").inc();
            eprintln!(
                "cats-cli: primary model rejected ({primary_err}); serving last-good mirror {}",
                lg.display()
            );
            p
        }
    };
    let slot = std::sync::Arc::new(cats_serve::ModelSlot::new(pipeline));
    let config = cats_serve::ServeConfig {
        addr: opts.addr.clone(),
        batch: cats_serve::BatchConfig {
            max_batch_items: opts.max_batch_items,
            max_delay: std::time::Duration::from_millis(opts.max_delay_ms),
            queue_capacity: opts.queue_capacity,
            workers: opts.workers,
        },
        ..cats_serve::ServeConfig::default()
    };
    let server = cats_serve::Server::start(slot.clone(), config)
        .map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let watcher = opts.watch.then(|| {
        cats_serve::ModelWatcher::spawn_with_checkpoint(
            slot,
            path.to_path_buf(),
            std::time::Duration::from_millis(500),
            last_good,
        )
    });
    Ok((server, watcher))
}

/// Options for the multi-process cluster (`cats-cli serve --shards N`).
#[derive(Debug, Clone)]
pub struct ClusterOpts {
    /// Router bind address.
    pub addr: String,
    /// Model snapshot every shard starts from (cluster version 1).
    pub model_path: String,
    /// Shard child processes to spawn.
    pub shards: usize,
    /// Batch workers per shard.
    pub workers: usize,
    /// Feature-extraction threads per shard; 0 = an equal slice of the
    /// machine (`default_threads / shards`), so N shards don't each try
    /// to use every core.
    pub score_threads: usize,
}

/// Handle on the cluster's shard children: watches them and respawns
/// any that die onto their original address, so the router's prober can
/// re-admit them. Dropping the supervisor kills the children.
pub struct ClusterSupervisor {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ClusterSupervisor {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

/// Shard-mode argv for re-invoking this binary as shard `id` on `addr`.
fn shard_args(id: usize, addr: &str, opts: &ClusterOpts, score_threads: usize) -> Vec<String> {
    [
        "serve",
        "--shard-of",
        &id.to_string(),
        "--model",
        &opts.model_path,
        "--addr",
        addr,
        "--workers",
        &opts.workers.max(1).to_string(),
        "--score-threads",
        &score_threads.to_string(),
    ]
    .iter()
    .map(ToString::to_string)
    .collect()
}

/// Spawns `opts.shards` shard child processes (this same binary in
/// `--shard-of` mode) and a [`cats_serve::Router`] over them, plus a
/// supervisor that respawns dead shards onto their original address —
/// the router ejects a dead shard, the supervisor brings it back, the
/// router's prober syncs its model version and re-admits it.
pub fn start_cluster(
    opts: &ClusterOpts,
) -> Result<(cats_serve::Router, ClusterSupervisor), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let shards = opts.shards.max(1);
    let score_threads = if opts.score_threads == 0 {
        (cats_par::default_threads() / shards).max(1)
    } else {
        opts.score_threads
    };
    let ready_timeout = std::time::Duration::from_secs(60);
    let mut children = Vec::with_capacity(shards);
    for id in 0..shards {
        // Port 0 on first spawn: the child announces the real address,
        // which then becomes the shard's fixed slot for respawns.
        let args = shard_args(id, "127.0.0.1:0", opts, score_threads);
        children.push(cats_serve::ShardProcess::spawn(id, &exe, &args, ready_timeout)?);
    }
    let shard_addrs: Vec<String> = children.iter().map(|c| c.addr.clone()).collect();
    let router = cats_serve::Router::start(
        shard_addrs,
        cats_serve::RouterConfig {
            addr: opts.addr.clone(),
            initial_artifact: Some(opts.model_path.clone()),
            ..cats_serve::RouterConfig::default()
        },
    )
    .map_err(|e| format!("bind router {}: {e}", opts.addr))?;

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let thread = {
        let stop = stop.clone();
        let opts = opts.clone();
        std::thread::Builder::new()
            .name("cats-cluster-supervisor".into())
            .spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    for child in &mut children {
                        if child.is_alive() {
                            continue;
                        }
                        eprintln!(
                            "cats-cli: shard {} died; respawning on {}",
                            child.id, child.addr
                        );
                        cats_obs::counter("cats.cli.cluster.respawns").inc();
                        let args = shard_args(child.id, &child.addr, &opts, score_threads);
                        match cats_serve::ShardProcess::spawn(child.id, &exe, &args, ready_timeout)
                        {
                            Ok(fresh) => *child = fresh,
                            Err(e) => {
                                eprintln!("cats-cli: respawn shard {} failed: {e}", child.id);
                            }
                        }
                    }
                    // Slice the wait so shutdown stays prompt.
                    for _ in 0..10 {
                        if stop.load(std::sync::atomic::Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                }
                // `children` drops here: each ShardProcess kills its child.
            })
            .map_err(|e| format!("spawn cluster supervisor: {e}"))?
    };
    Ok((router, ClusterSupervisor { stop, thread: Some(thread) }))
}

/// Items per `POST /v1/score` request sent by [`score`]; server-side
/// micro-batching recombines them, so this only bounds request size.
const SCORE_CHUNK: usize = 256;

/// Scores unlabeled JSONL through a running `cats-serve` endpoint and
/// writes JSONL reports. Returns (items scored, model versions seen) —
/// more than one version means a hot-swap landed mid-run, which is
/// fine: each individual response is still single-version.
pub fn score(
    addr: &str,
    input: &mut dyn BufRead,
    out: &mut dyn std::io::Write,
) -> Result<(usize, Vec<u64>), String> {
    let items = read_items(input)?;
    let client = cats_serve::ScoreClient::new(addr);
    let mut versions: Vec<u64> = Vec::new();
    let mut scored = 0usize;
    for chunk in items.chunks(SCORE_CHUNK.max(1)) {
        let request: Vec<cats_serve::ScoreItem> = chunk
            .iter()
            .map(|i| cats_serve::ScoreItem {
                item_id: i.item_id,
                sales_volume: i.sales_volume,
                comments: i.comments.clone(),
            })
            .collect();
        let resp = client.score(&request).map_err(|e| format!("score {addr}: {e}"))?;
        if !versions.contains(&resp.model_version) {
            versions.push(resp.model_version);
        }
        let lines: Vec<ReportLine> = resp
            .verdicts
            .iter()
            .map(|v| ReportLine {
                item_id: v.item_id,
                filter: v.filter.clone(),
                score: v.score,
                is_fraud: v.is_fraud,
            })
            .collect();
        write_reports(&mut *out, &lines).map_err(|e| e.to_string())?;
        scored += lines.len();
    }
    Ok((scored, versions))
}

/// Parses a saved [`cats_obs::RunProfile`] JSON document (written by
/// `--metrics-out`) and returns the human-readable rendering.
pub fn metrics(input: &mut dyn BufRead) -> Result<String, String> {
    let mut text = String::new();
    input.read_to_string(&mut text).map_err(|e| e.to_string())?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| format!("profile: {e}"))?;
    if v["schema"] != "cats.run_profile.v1" {
        return Err(format!("unsupported profile schema: {}", v["schema"]));
    }
    let u = |v: &serde_json::Value| v.as_u64().unwrap_or(0);
    let f = |v: &serde_json::Value| v.as_f64().unwrap_or(0.0);
    let s = |v: &serde_json::Value| v.as_str().unwrap_or("").to_string();
    let arr = |v: &serde_json::Value| v.as_array().cloned().unwrap_or_default();
    let profile = cats_obs::RunProfile {
        label: s(&v["label"]),
        wall_micros: u(&v["wall_micros"]),
        stages: arr(&v["stages"])
            .iter()
            .map(|st| cats_obs::StageProfile {
                name: s(&st["name"]),
                count: u(&st["count"]),
                items: u(&st["items"]),
                total_micros: u(&st["total_micros"]),
                self_micros: u(&st["self_micros"]),
                p50_micros: f(&st["p50_micros"]),
                p95_micros: f(&st["p95_micros"]),
                p99_micros: f(&st["p99_micros"]),
            })
            .collect(),
        counters: arr(&v["counters"]).iter().map(|c| (s(&c["name"]), u(&c["value"]))).collect(),
        gauges: arr(&v["gauges"]).iter().map(|g| (s(&g["name"]), f(&g["value"]))).collect(),
    };
    Ok(profile.render())
}

/// Evaluates a JSONL report file against a labeled JSONL item file,
/// joining on `item_id`.
pub fn analyze(
    reports: &mut dyn BufRead,
    labeled: &mut dyn BufRead,
) -> Result<BinaryMetrics, String> {
    let items = read_items(labeled)?;
    let truth: HashMap<u64, u8> =
        items.iter().filter_map(|i| i.label.map(|l| (i.item_id, l))).collect();
    if truth.is_empty() {
        return Err("labeled file contains no labels".into());
    }
    let mut labels = Vec::new();
    let mut preds = Vec::new();
    for (no, line) in reports.lines().enumerate() {
        let line = line.map_err(|e| format!("reports line {}: {e}", no + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let r: ReportLine =
            serde_json::from_str(&line).map_err(|e| format!("reports line {}: {e}", no + 1))?;
        if let Some(&l) = truth.get(&r.item_id) {
            labels.push(l);
            preds.push(r.is_fraud);
        }
    }
    if labels.is_empty() {
        return Err("no report ids matched the labeled file".into());
    }
    Ok(BinaryMetrics::compute(&labels, &preds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn generate_emits_valid_jsonl() {
        let mut buf = Vec::new();
        let n = generate(0.002, 5, &mut buf).unwrap();
        assert!(n >= 130);
        let items = read_items(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(items.len(), n);
        assert!(items.iter().any(|i| i.label == Some(1)));
        assert!(items.iter().any(|i| i.label == Some(0)));
    }

    #[test]
    fn train_then_detect_then_analyze_closed_loop() {
        // generate labeled data
        let mut data = Vec::new();
        generate(0.004, 9, &mut data).unwrap();

        // train
        let (model, n) = train(&mut BufReader::new(data.as_slice()), 0.5, 9).unwrap();
        assert!(n > 0);
        assert!(model.len() > 10_000, "model json suspiciously small");

        // detect on a fresh platform (same language, different seed)
        let mut eval_data = Vec::new();
        generate(0.004, 10, &mut eval_data).unwrap();
        let mut reports = Vec::new();
        let summary =
            detect(model.as_bytes(), &mut BufReader::new(eval_data.as_slice()), &mut reports)
                .unwrap();
        assert!(summary.reported > 0, "{summary}");

        // analyze against ground truth
        let metrics = analyze(
            &mut BufReader::new(reports.as_slice()),
            &mut BufReader::new(eval_data.as_slice()),
        )
        .unwrap();
        assert!(metrics.f1 > 0.7, "closed-loop F1 too low: {metrics}");
    }

    #[test]
    fn crawl_emits_unlabeled_jsonl() {
        let mut buf = Vec::new();
        let (n, stats) = crawl(0.02, 7, 0.0, &mut buf).unwrap();
        assert!(n > 0);
        assert!(stats.pages_fetched > 0);
        assert_eq!(stats.truncated_resources, 0, "clean site: no truncation");
        let items = read_items(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(items.len(), n);
        assert!(items.iter().all(|i| i.label.is_none()), "crawl output is unlabeled");
    }

    #[test]
    fn crawl_under_faults_still_produces_parseable_output() {
        let mut buf = Vec::new();
        let (n, stats) = crawl(0.02, 7, 0.9, &mut buf).unwrap();
        let items = read_items(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(items.len(), n);
        // heavy faults leave footprints in the stats
        assert!(stats.rate_limited + stats.outage_errors + stats.stalled_pages > 0, "{stats:?}");
        assert!(crawl(0.02, 7, 1.5, &mut Vec::new()).is_err(), "intensity out of range");
    }

    #[test]
    fn crawl_then_detect_closed_loop() {
        // train on labeled generator output, detect on crawled public data
        let mut data = Vec::new();
        generate(0.004, 9, &mut data).unwrap();
        let (model, _) = train(&mut BufReader::new(data.as_slice()), 0.5, 9).unwrap();

        let mut crawled = Vec::new();
        crawl(0.02, 11, 0.5, &mut crawled).unwrap();
        let mut reports = Vec::new();
        let summary =
            detect(model.as_bytes(), &mut BufReader::new(crawled.as_slice()), &mut reports)
                .unwrap();
        assert!(summary.total > 0);
        // degraded input must not leak NaN into the report stream
        let text = String::from_utf8(reports).unwrap();
        assert!(!text.contains("NaN") && !text.contains("null"), "{text}");
    }

    #[test]
    fn train_rejects_unlabeled_and_single_class() {
        let unlabeled = "{\"item_id\":1,\"sales_volume\":2,\"comments\":[\"hao\"]}\n";
        let err = train(&mut BufReader::new(unlabeled.as_bytes()), 0.5, 1).unwrap_err();
        assert!(err.contains("no label"), "{err}");

        let one_class = "{\"item_id\":1,\"sales_volume\":2,\"label\":1,\"comments\":[\"hao\"]}\n";
        let err = train(&mut BufReader::new(one_class.as_bytes()), 0.5, 1).unwrap_err();
        assert!(err.contains("both classes"), "{err}");

        let err = train(&mut BufReader::new("".as_bytes()), 0.5, 1).unwrap_err();
        assert!(err.contains("no items"), "{err}");
    }

    #[test]
    fn serve_then_score_matches_offline_detect() {
        let mut data = Vec::new();
        generate(0.004, 9, &mut data).unwrap();
        let (model, _) = train(&mut BufReader::new(data.as_slice()), 0.5, 9).unwrap();
        let model_path =
            std::env::temp_dir().join(format!("cats_cli_serve_{}.json", std::process::id()));
        std::fs::write(&model_path, &model).unwrap();

        let opts = ServeOpts {
            addr: "127.0.0.1:0".into(),
            model_path: model_path.display().to_string(),
            ..ServeOpts::default()
        };
        let (server, watcher) = start_server(&opts).unwrap();
        assert!(watcher.is_none(), "watch not requested");

        let mut offline = Vec::new();
        detect(model.as_bytes(), &mut BufReader::new(data.as_slice()), &mut offline).unwrap();
        let mut online = Vec::new();
        let (n, versions) =
            score(&server.addr().to_string(), &mut BufReader::new(data.as_slice()), &mut online)
                .unwrap();
        assert!(n > 0);
        assert_eq!(versions, vec![1], "no swap happened, so one model version");
        assert_eq!(
            String::from_utf8(online).unwrap(),
            String::from_utf8(offline).unwrap(),
            "online scoring must agree with offline detect byte-for-byte"
        );
        server.shutdown();
        let _ = std::fs::remove_file(&model_path);
    }

    #[test]
    fn checkpointed_train_is_deterministic_and_clears_its_slots() {
        let mut data = Vec::new();
        generate(0.004, 9, &mut data).unwrap();
        let dir = std::env::temp_dir().join(format!("cats_cli_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = cats_io::CheckpointStore::open(&dir).unwrap();
        let (a, _) =
            train_checkpointed(&mut BufReader::new(data.as_slice()), 0.5, 9, Some(&store)).unwrap();
        assert!(store.load("w2v").is_none(), "w2v slot cleared on success");
        assert!(store.load("gbt").is_none(), "gbt slot cleared on success");
        let (b, _) =
            train_checkpointed(&mut BufReader::new(data.as_slice()), 0.5, 9, Some(&store)).unwrap();
        assert_eq!(a, b, "checkpointed training is deterministic");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn convert_roundtrips_between_json_and_io2_with_verification() {
        let mut data = Vec::new();
        generate(0.004, 9, &mut data).unwrap();
        let (model, _) = train(&mut BufReader::new(data.as_slice()), 0.5, 9).unwrap();
        let dir = std::env::temp_dir().join(format!("cats_cli_convert_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("model.json");
        let cats_path = dir.join("model.cats");
        let back_path = dir.join("back.json");
        cats_io::write_checksummed(&json_path, model.as_bytes()).unwrap();

        // JSON -> IO2, with cross-format score verification.
        let s = convert(&json_path, &cats_path, true).unwrap();
        assert_eq!((s.in_format, s.out_format), ("json", "cats-io2"));
        assert!(s.verified_items > 0, "verification scored a non-empty batch");
        let io2 = cats_io::read_checksummed(&cats_path).unwrap();
        assert!(cats_io::io2::is_io2(&io2), "convert wrote an IO2 container");

        // IO2 -> JSON back again.
        let s = convert(&cats_path, &back_path, true).unwrap();
        assert_eq!((s.in_format, s.out_format), ("cats-io2", "json"));

        // Detect reports are identical whichever format the model is in.
        let mut via_json = Vec::new();
        detect(model.as_bytes(), &mut BufReader::new(data.as_slice()), &mut via_json).unwrap();
        let mut via_io2 = Vec::new();
        detect(&io2, &mut BufReader::new(data.as_slice()), &mut via_io2).unwrap();
        assert_eq!(via_json, via_io2, "reports identical across model formats");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_falls_back_to_last_good_when_primary_is_corrupt() {
        let mut data = Vec::new();
        generate(0.004, 9, &mut data).unwrap();
        let (model, _) = train(&mut BufReader::new(data.as_slice()), 0.5, 9).unwrap();
        let dir = std::env::temp_dir().join(format!("cats_cli_lg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.json");
        // A seeded mirror plus a torn primary: exactly the post-crash
        // state the fallback exists for.
        std::fs::write(dir.join("last_good.snapshot"), &model).unwrap();
        std::fs::write(&model_path, &model[..model.len() / 3]).unwrap();

        let opts = ServeOpts {
            addr: "127.0.0.1:0".into(),
            model_path: model_path.display().to_string(),
            checkpoint_dir: Some(dir.display().to_string()),
            ..ServeOpts::default()
        };
        let (server, watcher) = start_server(&opts).expect("must serve the last-good mirror");
        assert!(watcher.is_none());
        server.shutdown();

        // Without a checkpoint dir the same torn primary refuses to start.
        let opts = ServeOpts { checkpoint_dir: None, ..opts };
        assert!(start_server(&opts).is_err(), "no mirror, no fallback");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn start_server_rejects_missing_model() {
        let opts = ServeOpts {
            addr: "127.0.0.1:0".into(),
            model_path: "/definitely/not/a/model.json".into(),
            ..ServeOpts::default()
        };
        let err = start_server(&opts).unwrap_err();
        assert!(err.contains("model.json"), "{err}");
    }

    #[test]
    fn detect_rejects_bad_model() {
        let mut out = Vec::new();
        let err = detect(b"{not json", &mut BufReader::new("".as_bytes()), &mut out).unwrap_err();
        assert!(err.starts_with("model:"), "{err}");
    }

    #[test]
    fn detect_profile_names_pipeline_stages() {
        let mut data = Vec::new();
        generate(0.004, 9, &mut data).unwrap();
        let (model, _) = train(&mut BufReader::new(data.as_slice()), 0.5, 9).unwrap();
        let mut reports = Vec::new();
        let (res, profile) = profiled("cli.detect", || {
            detect(model.as_bytes(), &mut BufReader::new(data.as_slice()), &mut reports)
        });
        res.unwrap();
        let names: Vec<&str> = profile.stages.iter().map(|s| s.name.as_str()).collect();
        assert!(profile.stages.len() >= 6, "want >=6 stages, got {names:?}");
        for s in &profile.stages {
            assert!(s.count > 0, "{}", s.name);
            assert!(s.self_micros <= s.total_micros, "{}", s.name);
            assert!(s.p50_micros <= s.p95_micros, "{}", s.name);
        }
        for want in [
            "cats.cli.detect.load_model",
            "cats.cli.detect.read_input",
            "cats.cli.detect.write_reports",
            "cats.core.pipeline.detect",
            "cats.core.detect",
            "cats.core.extract",
        ] {
            assert!(profile.stage(want).is_some(), "missing stage {want} in {names:?}");
        }
    }

    #[test]
    fn metrics_renders_saved_profile() {
        let profile = cats_obs::RunProfile {
            label: "demo".into(),
            wall_micros: 1_000,
            stages: vec![cats_obs::StageProfile {
                name: "cats.x.stage".into(),
                count: 2,
                items: 8,
                total_micros: 500,
                self_micros: 400,
                p50_micros: 200.0,
                p95_micros: 300.5,
                p99_micros: 310.0,
            }],
            counters: vec![("cats.x.n".into(), 3)],
            gauges: vec![("cats.x.g".into(), 0.25)],
        };
        let json = profile.to_json();
        let text = metrics(&mut BufReader::new(json.as_bytes())).unwrap();
        assert_eq!(text, profile.render(), "render survives the JSON roundtrip");
        assert!(text.contains("cats.x.stage"));
        assert!(text.contains("cats.x.n 3"));

        let err = metrics(&mut BufReader::new(b"{}".as_slice())).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn analyze_requires_overlap() {
        let labeled = "{\"item_id\":1,\"sales_volume\":2,\"label\":1,\"comments\":[]}\n";
        let reports =
            "{\"item_id\":99,\"filter\":\"classified\",\"score\":0.9,\"is_fraud\":true}\n";
        let err = analyze(
            &mut BufReader::new(reports.as_bytes()),
            &mut BufReader::new(labeled.as_bytes()),
        )
        .unwrap_err();
        assert!(err.contains("matched"), "{err}");
    }
}
