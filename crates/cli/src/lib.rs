//! # cats-cli — command-line interface to the CATS reproduction
//!
//! Subcommands designed for piping:
//!
//! ```text
//! cats-cli generate --scale 0.01 --seed 7            > labeled.jsonl
//! cats-cli train    --input labeled.jsonl --model m.json
//! cats-cli detect   --model m.json --input items.jsonl --metrics-out profile.json > reports.jsonl
//! cats-cli analyze  --reports reports.jsonl --labeled labeled.jsonl
//! cats-cli metrics  --profile profile.json
//! ```
//!
//! `--metrics-out` (on `train` and `detect`) writes the run's
//! [`cats_obs::RunProfile`] — per-stage span timings plus counter/gauge
//! deltas — as JSON; `metrics` pretty-prints such a file.
//!
//! The command logic lives in [`commands`] (testable library functions);
//! `main.rs` is a thin argument dispatcher.

pub mod commands;
pub mod io;
