//! # cats-cli — command-line interface to the CATS reproduction
//!
//! Four subcommands, designed for piping:
//!
//! ```text
//! cats-cli generate --scale 0.01 --seed 7            > labeled.jsonl
//! cats-cli train    --input labeled.jsonl --model m.json
//! cats-cli detect   --model m.json --input items.jsonl > reports.jsonl
//! cats-cli analyze  --reports reports.jsonl --labeled labeled.jsonl
//! ```
//!
//! The command logic lives in [`commands`] (testable library functions);
//! `main.rs` is a thin argument dispatcher.

pub mod commands;
pub mod io;
