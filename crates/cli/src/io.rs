//! JSONL item format shared by the CLI subcommands.
//!
//! One item per line:
//!
//! ```json
//! {"item_id":42,"sales_volume":17,"label":1,"comments":["hao ping ...","..."]}
//! ```
//!
//! `label` is optional — present in training/evaluation files, absent in
//! detection inputs (the public-data scenario).

use cats_core::ItemComments;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One item on the wire.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ItemLine {
    /// Platform item id.
    pub item_id: u64,
    /// Public sales volume.
    pub sales_volume: u64,
    /// Ground-truth label (1 = fraud), when known.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub label: Option<u8>,
    /// Raw comment texts.
    pub comments: Vec<String>,
}

impl ItemLine {
    /// Segments the comments into the extractor input shape.
    pub fn to_item_comments(&self) -> ItemComments {
        ItemComments::from_texts(self.comments.iter().map(String::as_str))
    }
}

/// One detection verdict on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportLine {
    /// Platform item id.
    pub item_id: u64,
    /// Stage-1 outcome (`classified`, `filtered_low_sales`,
    /// `filtered_no_evidence`).
    pub filter: String,
    /// Fraud score in \[0,1\].
    pub score: f64,
    /// Final verdict.
    pub is_fraud: bool,
}

/// Reads JSONL items from a reader; malformed lines are returned as
/// errors with their line number.
pub fn read_items<R: BufRead>(reader: R) -> Result<Vec<ItemLine>, String> {
    let mut items = Vec::new();
    for (no, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", no + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let item: ItemLine =
            serde_json::from_str(&line).map_err(|e| format!("line {}: {e}", no + 1))?;
        items.push(item);
    }
    Ok(items)
}

/// Writes items as JSONL.
pub fn write_items<W: Write>(mut writer: W, items: &[ItemLine]) -> std::io::Result<()> {
    for item in items {
        serde_json::to_writer(&mut writer, item)?;
        writeln!(writer)?;
    }
    Ok(())
}

/// Writes reports as JSONL.
pub fn write_reports<W: Write>(mut writer: W, reports: &[ReportLine]) -> std::io::Result<()> {
    for r in reports {
        serde_json::to_writer(&mut writer, r)?;
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ItemLine> {
        vec![
            ItemLine {
                item_id: 1,
                sales_volume: 9,
                label: Some(1),
                comments: vec!["hao hao".into(), "zan".into()],
            },
            ItemLine { item_id: 2, sales_volume: 3, label: None, comments: vec![] },
        ]
    }

    #[test]
    fn items_roundtrip_jsonl() {
        let mut buf = Vec::new();
        write_items(&mut buf, &sample()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = read_items(text.as_bytes()).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn label_omitted_when_none() {
        let mut buf = Vec::new();
        write_items(&mut buf, &sample()[1..]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("label"), "{text}");
    }

    #[test]
    fn blank_lines_skipped_and_errors_located() {
        let good = "\n{\"item_id\":1,\"sales_volume\":2,\"comments\":[]}\n\n";
        assert_eq!(read_items(good.as_bytes()).unwrap().len(), 1);
        let bad = "{\"item_id\":1,\"sales_volume\":2,\"comments\":[]}\n{broken";
        let err = read_items(bad.as_bytes()).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn to_item_comments_segments() {
        let item = &sample()[0];
        let ic = item.to_item_comments();
        assert_eq!(ic.len(), 2);
        assert_eq!(ic.tokens[0], vec!["hao", "hao"]);
    }

    #[test]
    fn report_lines_serialize() {
        let mut buf = Vec::new();
        write_reports(
            &mut buf,
            &[ReportLine { item_id: 7, filter: "classified".into(), score: 0.93, is_fraud: true }],
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"is_fraud\":true"));
    }
}
