//! Thin argument dispatcher over `cats_cli::commands`.

use std::fs::File;
use std::io::{BufReader, Write};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cats-cli generate --scale <f64> --seed <u64>            (JSONL to stdout)\n  cats-cli crawl    --scale <f64> --seed <u64> [--faults <0..1>]  (JSONL to stdout)\n  cats-cli train    --input <jsonl> --model <out.json> [--threshold <f64>] [--seed <u64>] [--metrics-out <json>]\n  cats-cli detect   --model <json> --input <jsonl> [--metrics-out <json>]  (reports to stdout)\n  cats-cli analyze  --reports <jsonl> --labeled <jsonl>\n  cats-cli metrics  --profile <json>                      (pretty-print a RunProfile)"
    );
    ExitCode::from(2)
}

/// Writes a run profile to `--metrics-out` when the flag was given.
fn write_metrics(path: Option<String>, profile: &cats_obs::RunProfile) -> Result<(), String> {
    if let Some(path) = path {
        std::fs::write(&path, profile.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics profile written to {path}");
    }
    Ok(())
}

/// Pulls `--flag value` pairs out of args; returns None on unknown flags.
fn parse_flags(args: &[String]) -> Option<std::collections::HashMap<String, String>> {
    let mut map = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?;
        let value = it.next()?;
        map.insert(key.to_string(), value.clone());
    }
    Some(map)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(rest).ok_or("malformed flags")?;
    let get = |k: &str| flags.get(k).cloned();
    let parse_f64 = |k: &str, default: f64| -> Result<f64, String> {
        get(k).map_or(Ok(default), |v| v.parse().map_err(|e| format!("--{k}: {e}")))
    };
    let parse_u64 = |k: &str, default: u64| -> Result<u64, String> {
        get(k).map_or(Ok(default), |v| v.parse().map_err(|e| format!("--{k}: {e}")))
    };
    let open = |k: &str| -> Result<BufReader<File>, String> {
        let path = get(k).ok_or(format!("--{k} is required"))?;
        File::open(&path).map(BufReader::new).map_err(|e| format!("{path}: {e}"))
    };

    match cmd.as_str() {
        "generate" => {
            let scale = parse_f64("scale", 0.01)?;
            let seed = parse_u64("seed", 0xCA75)?;
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let n = cats_cli::commands::generate(scale, seed, &mut lock)?;
            eprintln!("generated {n} labeled items");
            Ok(())
        }
        "crawl" => {
            let scale = parse_f64("scale", 0.01)?;
            let seed = parse_u64("seed", 0xCA75)?;
            let faults = parse_f64("faults", 0.0)?;
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let (n, stats) = cats_cli::commands::crawl(scale, seed, faults, &mut lock)?;
            eprintln!(
                "crawled {n} items ({} pages, {} truncated resources, {} poisoned records dropped, {}s simulated waiting)",
                stats.pages_fetched, stats.truncated_resources, stats.poisoned_records, stats.sim_clock_secs
            );
            Ok(())
        }
        "train" => {
            let mut input = open("input")?;
            let model_path = get("model").ok_or("--model is required")?;
            let threshold = parse_f64("threshold", 0.5)?;
            let seed = parse_u64("seed", 0xCA75)?;
            let (result, profile) = cats_cli::commands::profiled("cats-cli train", || {
                cats_cli::commands::train(&mut input, threshold, seed)
            });
            let (json, n) = result?;
            std::fs::write(&model_path, &json).map_err(|e| format!("{model_path}: {e}"))?;
            write_metrics(get("metrics-out"), &profile)?;
            eprintln!(
                "trained on {n} items; model written to {model_path} ({} KiB)",
                json.len() / 1024
            );
            Ok(())
        }
        "detect" => {
            let model_path = get("model").ok_or("--model is required")?;
            let model =
                std::fs::read_to_string(&model_path).map_err(|e| format!("{model_path}: {e}"))?;
            let mut input = open("input")?;
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let (result, profile) = cats_cli::commands::profiled("cats-cli detect", || {
                cats_cli::commands::detect(&model, &mut input, &mut lock)
            });
            let summary = result?;
            lock.flush().ok();
            write_metrics(get("metrics-out"), &profile)?;
            eprintln!("{summary}");
            Ok(())
        }
        "metrics" => {
            let mut profile = open("profile")?;
            let text = cats_cli::commands::metrics(&mut profile)?;
            print!("{text}");
            Ok(())
        }
        "analyze" => {
            let mut reports = open("reports")?;
            let mut labeled = open("labeled")?;
            let m = cats_cli::commands::analyze(&mut reports, &mut labeled)?;
            println!("{m}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
