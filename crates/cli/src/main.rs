//! Thin argument dispatcher over `cats_cli::commands`.

use std::fs::File;
use std::io::{BufReader, Write};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cats-cli generate --scale <f64> --seed <u64>            (JSONL to stdout)\n  cats-cli crawl    --scale <f64> --seed <u64> [--faults <0..1>]  (JSONL to stdout)\n  cats-cli train    --input <jsonl> --model <out.json|out.cats> [--threshold <f64>] [--seed <u64>] [--metrics-out <json>] [--checkpoint-dir <dir>] [--resume]\n  cats-cli detect   --model <json|cats> --input <jsonl> [--metrics-out <json>]  (reports to stdout)\n  cats-cli convert  --in <snapshot.json|.cats> --out <snapshot.cats|.json> [--verify]  (rewrite a model between JSON and CATS-IO2)\n  cats-cli serve    --model <json|cats> [--addr <host:port>] [--watch] [--max-batch <n>] [--max-delay-ms <n>] [--queue <n>] [--workers <n>] [--checkpoint-dir <dir>]\n  cats-cli serve    --model <json|cats> --shards <n> [--addr <host:port>] [--workers <n>] [--score-threads <n>]   (multi-process cluster)\n  cats-cli serve    --model <json|cats> --shard-of <id> [--addr <host:port>] [--workers <n>] [--score-threads <n>] (one cluster shard)\n  cats-cli score    --input <jsonl> [--addr <host:port>]  (reports to stdout)\n  cats-cli analyze  --reports <jsonl> --labeled <jsonl>\n  cats-cli metrics  --profile <json>                      (pretty-print a RunProfile)"
    );
    ExitCode::from(2)
}

/// Writes a run profile to `--metrics-out` when the flag was given.
fn write_metrics(path: Option<String>, profile: &cats_obs::RunProfile) -> Result<(), String> {
    if let Some(path) = path {
        std::fs::write(&path, profile.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics profile written to {path}");
    }
    Ok(())
}

/// Pulls `--flag value` pairs and valueless `--flag` booleans out of
/// args; returns None on tokens that are not flags. A flag followed by
/// another `--flag` (or by nothing) is boolean and maps to `"true"`, so
/// `serve --model m.json --watch` does not swallow the next flag as a
/// value — the bug this replaces.
fn parse_flags(args: &[String]) -> Option<std::collections::HashMap<String, String>> {
    let mut map = std::collections::HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?;
        if key.is_empty() {
            return None;
        }
        let value = match it.peek() {
            Some(next) if !next.starts_with("--") => it.next().expect("peeked").clone(),
            _ => "true".to_string(),
        };
        map.insert(key.to_string(), value);
    }
    Some(map)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(rest).ok_or("malformed flags")?;
    let get = |k: &str| flags.get(k).cloned();
    let parse_f64 = |k: &str, default: f64| -> Result<f64, String> {
        get(k).map_or(Ok(default), |v| v.parse().map_err(|e| format!("--{k}: {e}")))
    };
    let parse_u64 = |k: &str, default: u64| -> Result<u64, String> {
        get(k).map_or(Ok(default), |v| v.parse().map_err(|e| format!("--{k}: {e}")))
    };
    let open = |k: &str| -> Result<BufReader<File>, String> {
        let path = get(k).ok_or(format!("--{k} is required"))?;
        File::open(&path).map(BufReader::new).map_err(|e| format!("{path}: {e}"))
    };

    match cmd.as_str() {
        "generate" => {
            let scale = parse_f64("scale", 0.01)?;
            let seed = parse_u64("seed", 0xCA75)?;
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let n = cats_cli::commands::generate(scale, seed, &mut lock)?;
            eprintln!("generated {n} labeled items");
            Ok(())
        }
        "crawl" => {
            let scale = parse_f64("scale", 0.01)?;
            let seed = parse_u64("seed", 0xCA75)?;
            let faults = parse_f64("faults", 0.0)?;
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let (n, stats) = cats_cli::commands::crawl(scale, seed, faults, &mut lock)?;
            eprintln!(
                "crawled {n} items ({} pages, {} truncated resources, {} poisoned records dropped, {}s simulated waiting)",
                stats.pages_fetched, stats.truncated_resources, stats.poisoned_records, stats.sim_clock_secs
            );
            Ok(())
        }
        "train" => {
            let mut input = open("input")?;
            let model_path = get("model").ok_or("--model is required")?;
            let threshold = parse_f64("threshold", 0.5)?;
            let seed = parse_u64("seed", 0xCA75)?;
            let resume = flags.contains_key("resume");
            let ckpt_dir = get("checkpoint-dir");
            if resume && ckpt_dir.is_none() {
                return Err("--resume requires --checkpoint-dir".into());
            }
            let store = ckpt_dir
                .map(cats_io::CheckpointStore::open)
                .transpose()
                .map_err(|e| e.to_string())?;
            if let (Some(store), false) = (&store, resume) {
                // A fresh (non-resume) run must not silently pick up
                // checkpoints left by an earlier, possibly killed run.
                store.clear_all();
            }
            let (result, profile) = cats_cli::commands::profiled("cats-cli train", || {
                cats_cli::commands::train_checkpointed(&mut input, threshold, seed, store.as_ref())
            });
            let (json, n) = result?;
            let model = std::path::Path::new(&model_path);
            // Atomic either way: a kill mid-write leaves the old model or
            // none, never a torn file. A `.cats` extension selects the
            // CATS-IO2 binary container (per-section CRCs); anything else
            // writes the legacy checksummed JSON, and serve/detect sniff
            // whichever they are given.
            if model.extension().is_some_and(|e| e == "cats") {
                cats_core::pipeline::PipelineSnapshot::from_json(&json)
                    .and_then(|s| s.save(model))
                    .map_err(|e| e.to_string())?;
            } else {
                cats_io::write_checksummed(model, json.as_bytes()).map_err(|e| e.to_string())?;
            }
            let kib = std::fs::metadata(model).map_or(json.len() as u64, |m| m.len()) / 1024;
            write_metrics(get("metrics-out"), &profile)?;
            eprintln!("trained on {n} items; model written to {model_path} ({kib} KiB)");
            Ok(())
        }
        "detect" => {
            let model_path = get("model").ok_or("--model is required")?;
            // Verifies the checksum on legacy `train` output; CATS-IO2
            // containers (self-checksummed per section) and raw-JSON
            // snapshots pass through and are sniffed by `detect`.
            let model = cats_io::read_checksummed(std::path::Path::new(&model_path))
                .map_err(|e| e.to_string())?;
            let mut input = open("input")?;
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let (result, profile) = cats_cli::commands::profiled("cats-cli detect", || {
                cats_cli::commands::detect(&model, &mut input, &mut lock)
            });
            let summary = result?;
            lock.flush().ok();
            write_metrics(get("metrics-out"), &profile)?;
            eprintln!("{summary}");
            Ok(())
        }
        "convert" => {
            let in_path = get("in").ok_or("--in is required")?;
            let out_path = get("out").ok_or("--out is required")?;
            let verify = flags.contains_key("verify");
            let s = cats_cli::commands::convert(
                std::path::Path::new(&in_path),
                std::path::Path::new(&out_path),
                verify,
            )?;
            let verified = if verify {
                format!("; scores verified bit-identical on {} items", s.verified_items)
            } else {
                String::new()
            };
            eprintln!(
                "converted {in_path} ({}) -> {out_path} ({}, {} KiB){verified}",
                s.in_format,
                s.out_format,
                s.out_bytes / 1024,
            );
            Ok(())
        }
        "serve" => {
            // Shard mode: this process IS one cluster shard (spawned by
            // `--shards N` or by the bench harness). It binds, announces
            // the address on stdout, and serves until killed.
            if let Some(shard_id) = get("shard-of") {
                let id: usize = shard_id.parse().map_err(|e| format!("--shard-of: {e}"))?;
                let opts = cats_serve::ShardOpts {
                    addr: get("addr").unwrap_or_else(|| "127.0.0.1:0".into()),
                    model_path: get("model").ok_or("--model is required")?.into(),
                    workers: parse_u64("workers", 1)? as usize,
                    score_threads: parse_u64("score-threads", 0)? as usize,
                };
                let server = cats_serve::start_shard(&opts)?;
                cats_serve::announce_ready(&server);
                eprintln!("cats-serve shard {id} listening on http://{}", server.addr());
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            // Cluster mode: spawn N shard children and route over them.
            let shards = parse_u64("shards", 0)? as usize;
            if shards > 0 {
                let opts = cats_cli::commands::ClusterOpts {
                    addr: get("addr").unwrap_or_else(|| "127.0.0.1:7878".into()),
                    model_path: get("model").ok_or("--model is required")?,
                    shards,
                    workers: parse_u64("workers", 1)? as usize,
                    score_threads: parse_u64("score-threads", 0)? as usize,
                };
                let (router, _supervisor) = cats_cli::commands::start_cluster(&opts)?;
                eprintln!(
                    "cats-serve cluster: router on http://{} over {shards} shards (model {}); Ctrl-C to stop",
                    router.addr(),
                    opts.model_path,
                );
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            let opts = cats_cli::commands::ServeOpts {
                addr: get("addr").unwrap_or_else(|| "127.0.0.1:7878".into()),
                model_path: get("model").ok_or("--model is required")?,
                watch: flags.contains_key("watch"),
                max_batch_items: parse_u64("max-batch", 64)? as usize,
                max_delay_ms: parse_u64("max-delay-ms", 10)?,
                queue_capacity: parse_u64("queue", 256)? as usize,
                workers: parse_u64("workers", 2)? as usize,
                checkpoint_dir: get("checkpoint-dir"),
            };
            let (server, _watcher) = cats_cli::commands::start_server(&opts)?;
            eprintln!(
                "cats-serve listening on http://{} (model {}{}); Ctrl-C to stop",
                server.addr(),
                opts.model_path,
                if opts.watch { ", hot-swap on rewrite" } else { "" },
            );
            // Serve until killed; the accept loop and watcher live on
            // their own threads.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        "score" => {
            let addr = get("addr").unwrap_or_else(|| "127.0.0.1:7878".into());
            let mut input = open("input")?;
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let (n, versions) = cats_cli::commands::score(&addr, &mut input, &mut lock)?;
            lock.flush().ok();
            let vs: Vec<String> = versions.iter().map(u64::to_string).collect();
            eprintln!("scored {n} items via {addr} (model version {})", vs.join(", "));
            Ok(())
        }
        "metrics" => {
            let mut profile = open("profile")?;
            let text = cats_cli::commands::metrics(&mut profile)?;
            print!("{text}");
            Ok(())
        }
        "analyze" => {
            let mut reports = open("reports")?;
            let mut labeled = open("labeled")?;
            let m = cats_cli::commands::analyze(&mut reports, &mut labeled)?;
            println!("{m}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_flags;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn value_flags_parse_as_pairs() {
        let map = parse_flags(&args(&["--scale", "0.5", "--seed", "7"])).unwrap();
        assert_eq!(map.get("scale").map(String::as_str), Some("0.5"));
        assert_eq!(map.get("seed").map(String::as_str), Some("7"));
    }

    #[test]
    fn boolean_flags_do_not_swallow_the_next_flag() {
        // The old parser consumed "--addr" as the VALUE of --watch.
        let map = parse_flags(&args(&["--watch", "--addr", "127.0.0.1:0"])).unwrap();
        assert_eq!(map.get("watch").map(String::as_str), Some("true"));
        assert_eq!(map.get("addr").map(String::as_str), Some("127.0.0.1:0"));
    }

    #[test]
    fn trailing_boolean_flag_parses() {
        let map = parse_flags(&args(&["--model", "m.json", "--watch"])).unwrap();
        assert_eq!(map.get("model").map(String::as_str), Some("m.json"));
        assert_eq!(map.get("watch").map(String::as_str), Some("true"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let map = parse_flags(&args(&["--shift", "-0.25"])).unwrap();
        assert_eq!(map.get("shift").map(String::as_str), Some("-0.25"));
    }

    #[test]
    fn train_resume_and_checkpoint_dir_flags_parse() {
        let map = parse_flags(&args(&[
            "--input",
            "d.jsonl",
            "--model",
            "m.json",
            "--checkpoint-dir",
            "ckpt",
            "--resume",
        ]))
        .unwrap();
        assert_eq!(map.get("checkpoint-dir").map(String::as_str), Some("ckpt"));
        assert_eq!(map.get("resume").map(String::as_str), Some("true"), "--resume is boolean");
        assert_eq!(map.get("model").map(String::as_str), Some("m.json"));
    }

    #[test]
    fn serve_checkpoint_dir_flag_parses_next_to_watch() {
        // --watch is boolean; it must not swallow --checkpoint-dir.
        let map = parse_flags(&args(&[
            "--model",
            "m.json",
            "--watch",
            "--checkpoint-dir",
            "/tmp/cats-ckpt",
        ]))
        .unwrap();
        assert_eq!(map.get("watch").map(String::as_str), Some("true"));
        assert_eq!(map.get("checkpoint-dir").map(String::as_str), Some("/tmp/cats-ckpt"));
    }

    #[test]
    fn cluster_flags_parse() {
        let map =
            parse_flags(&args(&["--model", "m.json", "--shards", "4", "--score-threads", "2"]))
                .unwrap();
        assert_eq!(map.get("shards").map(String::as_str), Some("4"));
        assert_eq!(map.get("score-threads").map(String::as_str), Some("2"));
        let map = parse_flags(&args(&["--shard-of", "1", "--addr", "127.0.0.1:0"])).unwrap();
        assert_eq!(map.get("shard-of").map(String::as_str), Some("1"));
    }

    #[test]
    fn non_flag_tokens_are_rejected() {
        assert!(parse_flags(&args(&["scale", "0.5"])).is_none());
        assert!(parse_flags(&args(&["--", "x"])).is_none(), "bare -- is not a flag");
        assert!(parse_flags(&args(&[])).unwrap().is_empty());
    }
}
