//! End-to-end test of the compiled `cats-cli` binary: the four-subcommand
//! pipeline run through real processes, files and stdio.

use std::path::PathBuf;
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cats-cli")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cats_cli_e2e_{}_{name}", std::process::id()))
}

#[test]
fn four_command_pipeline_through_the_binary() {
    let labeled = tmp("labeled.jsonl");
    let eval = tmp("eval.jsonl");
    let model = tmp("model.json");
    let reports = tmp("reports.jsonl");

    // generate (training data)
    let out = Command::new(bin())
        .args(["generate", "--scale", "0.003", "--seed", "3"])
        .stderr(Stdio::piped())
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::write(&labeled, &out.stdout).unwrap();
    assert!(out.stdout.len() > 1_000);

    // generate (evaluation data, different seed)
    let out = Command::new(bin())
        .args(["generate", "--scale", "0.003", "--seed", "4"])
        .output()
        .expect("run generate 2");
    assert!(out.status.success());
    std::fs::write(&eval, &out.stdout).unwrap();

    // train
    let out = Command::new(bin())
        .args(["train", "--input", labeled.to_str().unwrap(), "--model", model.to_str().unwrap()])
        .output()
        .expect("run train");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    // detect
    let out = Command::new(bin())
        .args(["detect", "--model", model.to_str().unwrap(), "--input", eval.to_str().unwrap()])
        .output()
        .expect("run detect");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::write(&reports, &out.stdout).unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("reported:"), "{stderr}");

    // analyze
    let out = Command::new(bin())
        .args([
            "analyze",
            "--reports",
            reports.to_str().unwrap(),
            "--labeled",
            eval.to_str().unwrap(),
        ])
        .output()
        .expect("run analyze");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("P="), "{stdout}");

    for p in [labeled, eval, model, reports] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn unknown_subcommand_exits_nonzero_with_usage() {
    let out = Command::new(bin()).arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_required_flag_is_reported() {
    let out = Command::new(bin()).args(["train", "--input", "/nonexistent"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}
