//! The consolidated measurement study (paper §V) as one call.
//!
//! The paper validates its E-platform reports by statistical analysis
//! from three aspects — item, user, order — plus the cross-platform
//! comparisons. [`MeasurementStudy::run`] executes all of them over a
//! partition of collected items into reported-fraud and normal sets and
//! returns a single serializable summary (what the bench binaries print,
//! exposed as a library API for downstream users).

use crate::orders::{client_distribution, ClientDistribution};
use crate::temporal::mean_peak_day_share;
use crate::users::{mine_risky_pairs, share_at, share_below, unique_buyers, RiskyPairs};
use crate::wordcloud::WordFrequency;
use cats_collector::CollectedItem;
use cats_text::{Lexicon, Segmenter, WhitespaceSegmenter};

/// All §V measurements in one place.
#[derive(Debug, Clone)]
pub struct MeasurementStudy {
    /// Item aspect: word-frequency table of fraud items' comments.
    pub fraud_words: WordFrequency,
    /// Item aspect: word-frequency table of normal items' comments.
    pub normal_words: WordFrequency,
    /// Positive fraction of the fraud items' top-50 words.
    pub fraud_top50_positive_fraction: f64,
    /// User aspect: share of fraud buyers below userExpValue 2,000.
    pub fraud_buyers_below_2000: f64,
    /// User aspect: share of fraud buyers below 1,000.
    pub fraud_buyers_below_1000: f64,
    /// User aspect: share of fraud buyers at the floor value 100.
    pub fraud_buyers_at_floor: f64,
    /// User aspect: same share for normal buyers (below 2,000).
    pub normal_buyers_below_2000: f64,
    /// User aspect: risky-pair mining result.
    pub risky_pairs: RiskyPairs,
    /// Order aspect: client distribution of fraud orders.
    pub fraud_clients: ClientDistribution,
    /// Order aspect: client distribution of normal orders.
    pub normal_clients: ClientDistribution,
    /// Temporal aspect: mean peak-day share of fraud items' comments.
    pub fraud_peak_day_share: Option<f64>,
    /// Temporal aspect: same for normal items.
    pub normal_peak_day_share: Option<f64>,
}

/// Configuration of the study.
#[derive(Debug, Clone, Default)]
pub struct StudyConfig {
    /// Ground-truth (or expanded) lexicon for positivity measurements.
    pub lexicon: Lexicon,
    /// Words to drop from the frequency tables (function words).
    pub stopwords: Vec<String>,
}

impl MeasurementStudy {
    /// Runs every analysis over the reported-fraud / normal partition.
    pub fn run(
        fraud_items: &[&CollectedItem],
        normal_items: &[&CollectedItem],
        config: &StudyConfig,
    ) -> Self {
        let seg = WhitespaceSegmenter;
        let mut fraud_words = WordFrequency::with_stopwords(config.stopwords.iter().cloned());
        let mut normal_words = WordFrequency::with_stopwords(config.stopwords.iter().cloned());
        for item in fraud_items {
            for c in &item.comments {
                fraud_words.add_comment(&seg.segment(&c.content));
            }
        }
        for item in normal_items {
            for c in &item.comments {
                normal_words.add_comment(&seg.segment(&c.content));
            }
        }

        let fraud_buyers = unique_buyers(fraud_items);
        let normal_buyers = unique_buyers(normal_items);

        let fraud_top50_positive_fraction =
            fraud_words.top_k_positive_fraction(50, &config.lexicon);
        Self {
            fraud_top50_positive_fraction,
            fraud_buyers_below_2000: share_below(&fraud_buyers, 2_000),
            fraud_buyers_below_1000: share_below(&fraud_buyers, 1_000),
            fraud_buyers_at_floor: share_at(&fraud_buyers, 100),
            normal_buyers_below_2000: share_below(&normal_buyers, 2_000),
            risky_pairs: mine_risky_pairs(fraud_items, 2),
            fraud_clients: client_distribution(fraud_items),
            normal_clients: client_distribution(normal_items),
            fraud_peak_day_share: mean_peak_day_share(fraud_items),
            normal_peak_day_share: mean_peak_day_share(normal_items),
            fraud_words,
            normal_words,
        }
    }

    /// The paper's three headline sanity signals for the reported items,
    /// as booleans: buyers skew unreliable, orders skew Web, comments
    /// burst in time.
    pub fn fraud_signals(&self) -> (bool, bool, bool) {
        let unreliable = self.fraud_buyers_below_2000 > self.normal_buyers_below_2000;
        let web_skew = self.fraud_clients.share("Web") > self.normal_clients.share("Web");
        let bursty = match (self.fraud_peak_day_share, self.normal_peak_day_share) {
            (Some(f), Some(n)) => f > n,
            _ => false,
        };
        (unreliable, web_skew, bursty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cats_collector::CollectedComment;

    fn comment(nick: &str, exp: u64, client: &str, date: &str, text: &str) -> CollectedComment {
        CollectedComment {
            comment_id: 0,
            content: text.to_string(),
            nickname: nick.to_string(),
            user_exp_value: exp,
            client: client.to_string(),
            date: date.to_string(),
        }
    }

    fn fraud_item(id: u64) -> CollectedItem {
        CollectedItem {
            item_id: id,
            shop_id: 0,
            name: String::new(),
            price_cents: 0,
            sales_volume: 3,
            comments: vec![
                comment("u***1", 100, "Web", "2017-09-05 10:00:00", "hao hao zan"),
                comment("u***2", 500, "Web", "2017-09-05 11:00:00", "hao zan zan"),
                comment("u***1", 100, "Web", "2017-09-05 12:00:00", "hao de hao"),
            ],
            truncated: false,
        }
    }

    fn normal_item(id: u64) -> CollectedItem {
        CollectedItem {
            item_id: id,
            shop_id: 0,
            name: String::new(),
            price_cents: 0,
            sales_volume: 2,
            comments: vec![
                comment("o***1", 9_000, "Android", "2017-09-02 10:00:00", "shu hao kan"),
                comment("o***2", 12_000, "Android", "2017-10-20 10:00:00", "dongxi cha"),
            ],
            truncated: false,
        }
    }

    fn config() -> StudyConfig {
        StudyConfig {
            lexicon: Lexicon::new(["hao".to_string(), "zan".to_string()], ["cha".to_string()]),
            stopwords: vec!["de".to_string()],
        }
    }

    #[test]
    fn study_computes_all_aspects() {
        let f1 = fraud_item(1);
        let f2 = fraud_item(2);
        let n1 = normal_item(3);
        let s = MeasurementStudy::run(&[&f1, &f2], &[&n1], &config());

        // item aspect: stopwords dropped, positive words dominate
        assert!(s.fraud_words.top_k(50).iter().all(|(w, _)| w != "de"));
        assert!(s.fraud_top50_positive_fraction > 0.5);

        // user aspect
        assert!(s.fraud_buyers_below_2000 > s.normal_buyers_below_2000);
        assert!(s.fraud_buyers_at_floor > 0.0);
        // u***1(100) bought both fraud items → one risky pair? needs two
        // users sharing 2+ items; u***2(500) also bought both → 1 pair.
        assert_eq!(s.risky_pairs.n_pairs, 1);

        // order aspect
        assert_eq!(s.fraud_clients.dominant().unwrap().0, "Web");
        assert_eq!(s.normal_clients.dominant().unwrap().0, "Android");

        // temporal aspect: fraud items bursty (all comments same day)
        assert!(s.fraud_peak_day_share.unwrap() > s.normal_peak_day_share.unwrap());

        assert_eq!(s.fraud_signals(), (true, true, true));
    }

    #[test]
    fn empty_partitions_are_safe() {
        let n1 = normal_item(1);
        let s = MeasurementStudy::run(&[], &[&n1], &config());
        assert_eq!(s.fraud_words.total(), 0);
        assert!(s.fraud_peak_day_share.is_none());
        let (unreliable, web, bursty) = s.fraud_signals();
        assert!(!unreliable && !web && !bursty);
    }
}
