//! Histograms, ECDFs, summary statistics, and the Kolmogorov–Smirnov
//! distance.
//!
//! Every figure in the paper's measurement study is a one-dimensional
//! density or distribution comparison; [`Histogram`] produces the plotted
//! series (probability-density bins over a fixed range) and
//! [`ks_distance`] quantifies "the distributions roughly agree".

/// Fixed-range, fixed-bin-count histogram with probability-density
/// normalization (so its values match the paper's density plots).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    n: u64,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "invalid range");
        assert!(bins > 0, "need at least one bin");
        Self { lo, hi, counts: vec![0; bins], n: 0 }
    }

    /// Builds a histogram from samples in one pass.
    pub fn from_samples(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        let mut h = Self::new(lo, hi, bins);
        for &s in samples {
            h.add(s);
        }
        h
    }

    /// Builds a histogram whose range is derived from the data itself —
    /// the safe constructor for data-driven plots, where feeding a range
    /// computed from an empty or constant dataset into [`Histogram::new`]
    /// would panic. Non-finite samples are skipped entirely. Degenerate
    /// inputs get a well-defined fallback: no finite sample yields an
    /// empty histogram over `[0, 1)`, an all-equal sample `v` yields the
    /// range `[v - 0.5, v + 0.5)`, and `bins` is clamped to at least 1.
    pub fn from_data(samples: &[f64], bins: usize) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for x in samples.iter().copied().filter(|x| x.is_finite()) {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let (lo, hi) = if lo > hi {
            (0.0, 1.0) // no finite samples at all
        } else if lo == hi {
            (lo - 0.5, lo + 0.5)
        } else {
            (lo, hi) // `add` clamps x == hi into the last bin
        };
        let mut h = Self::new(lo, hi, bins.max(1));
        for x in samples.iter().copied().filter(|x| x.is_finite()) {
            h.add(x);
        }
        h
    }

    /// Adds a sample; out-of-range samples are clamped into the edge bins
    /// (NaN is ignored).
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = if t < 0.0 {
            0
        } else if t >= 1.0 {
            bins - 1
        } else {
            ((t * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.n += 1;
    }

    /// Number of samples added.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no sample has been added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bin centers.
    pub fn centers(&self) -> Vec<f64> {
        let w = self.bin_width();
        (0..self.counts.len()).map(|i| self.lo + (i as f64 + 0.5) * w).collect()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Probability densities per bin (integrates to 1 over the range).
    pub fn densities(&self) -> Vec<f64> {
        let denom = self.n as f64 * self.bin_width();
        self.counts.iter().map(|&c| if denom > 0.0 { c as f64 / denom } else { 0.0 }).collect()
    }

    /// Fractions per bin (sum to 1).
    pub fn fractions(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| if self.n > 0 { c as f64 / self.n as f64 } else { 0.0 })
            .collect()
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Renders an ASCII sparkline-style table: one `center density bar`
    /// line per bin — the textual stand-in for the paper's figures.
    pub fn render(&self, width: usize) -> String {
        let dens = self.densities();
        let max = dens.iter().cloned().fold(0.0_f64, f64::max).max(1e-12);
        let mut out = String::new();
        for (c, d) in self.centers().iter().zip(&dens) {
            let bar = "#".repeat(((d / max) * width as f64).round() as usize);
            out.push_str(&format!("{c:>10.3} {d:>9.4} {bar}\n"));
        }
        out
    }
}

/// Mean / standard deviation / min / max / median of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (midpoint of sorted sample).
    pub median: f64,
}

impl SummaryStats {
    /// Computes all statistics. Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Some(Self { mean, std: var.sqrt(), min: sorted[0], max: *sorted.last().unwrap(), median })
    }
}

/// Two-sample Kolmogorov–Smirnov distance: the supremum gap between the
/// two empirical CDFs, in `[0, 1]`. Small values mean "the distributions
/// agree".
///
/// # Panics
/// Panics if either sample is empty.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_densities() {
        let h = Histogram::from_samples(&[0.1, 0.1, 0.9], 0.0, 1.0, 2);
        assert_eq!(h.counts(), &[2, 1]);
        let d = h.densities();
        // bin width 0.5, n 3: densities 2/(3*0.5), 1/(3*0.5)
        assert!((d[0] - 4.0 / 3.0).abs() < 1e-12);
        assert!((d[1] - 2.0 / 3.0).abs() < 1e-12);
        // integral = 1
        let integral: f64 = d.iter().map(|x| x * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let h = Histogram::from_samples(&[-5.0, 0.5, 99.0], 0.0, 1.0, 4);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn nan_is_ignored() {
        let h = Histogram::from_samples(&[f64::NAN, 0.5], 0.0, 1.0, 2);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn fractions_sum_to_one() {
        let h = Histogram::from_samples(&[0.2, 0.4, 0.6, 0.8], 0.0, 1.0, 5);
        let s: f64 = h.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert!(h.is_empty());
        assert!(h.densities().iter().all(|&d| d == 0.0));
        assert!(!h.render(10).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn bad_range_rejected() {
        Histogram::new(1.0, 1.0, 3);
    }

    #[test]
    fn from_data_empty_dataset_does_not_panic() {
        let h = Histogram::from_data(&[], 10);
        assert!(h.is_empty());
        assert_eq!(h.counts().len(), 10);
        assert!(h.densities().iter().all(|&d| d == 0.0));
    }

    #[test]
    fn from_data_nonfinite_only_behaves_like_empty() {
        let h = Histogram::from_data(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY], 4);
        assert!(h.is_empty());
        assert_eq!(h.counts().len(), 4);
    }

    #[test]
    fn from_data_constant_dataset_gets_unit_range() {
        let h = Histogram::from_data(&[3.0, 3.0, 3.0], 5);
        assert_eq!(h.len(), 3);
        assert!((h.bin_width() - 0.2).abs() < 1e-12, "range [2.5, 3.5)");
        let s: f64 = h.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_data_spans_the_sample_range() {
        let h = Histogram::from_data(&[1.0, f64::NAN, 2.0, 5.0], 4);
        assert_eq!(h.len(), 3, "NaN skipped");
        // range [1, 5), width 1: 1.0 -> bin 0, 2.0 -> bin 1, 5.0 clamps
        // into the last bin.
        assert_eq!(h.counts(), &[1, 1, 0, 1]);
    }

    #[test]
    fn from_data_clamps_zero_bins() {
        let h = Histogram::from_data(&[1.0, 2.0], 0);
        assert_eq!(h.counts().len(), 1);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn summary_stats_known_values() {
        let s = SummaryStats::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (1.25_f64).sqrt()).abs() < 1e-12);
        assert!(SummaryStats::of(&[]).is_none());
    }

    #[test]
    fn odd_length_median() {
        let s = SummaryStats::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_distance(&a, &a), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0];
        assert!((ks_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_is_symmetric_and_bounded() {
        let a = [1.0, 3.0, 5.0, 7.0, 9.0];
        let b = [2.0, 3.0, 4.0, 8.0];
        let d1 = ks_distance(&a, &b);
        let d2 = ks_distance(&b, &a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn ks_known_half_shift() {
        // a = {0,1}, b = {1,2}: CDF gap at 0.5 is 0.5
        let d = ks_distance(&[0.0, 1.0], &[1.0, 2.0]);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ks_empty_rejected() {
        ks_distance(&[], &[1.0]);
    }

    #[test]
    fn render_contains_bars() {
        let h = Histogram::from_samples(&[0.1, 0.1, 0.1, 0.9], 0.0, 1.0, 2);
        let r = h.render(10);
        assert!(r.contains('#'));
        assert_eq!(r.lines().count(), 2);
    }
}
