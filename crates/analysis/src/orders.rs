//! The order aspect of the measurement study (paper §V, Fig 12).
//!
//! Only buyers can comment, so each comment's client field doubles as the
//! order source. The paper observes fraud orders arrive predominantly
//! through the Web client while normal orders arrive through Android —
//! [`client_distribution`] computes the per-class shares behind Fig 12.

use cats_collector::CollectedItem;
use std::collections::HashMap;

/// Per-client order shares (fractions summing to 1 for non-empty input),
/// keyed by the client's display name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClientDistribution {
    shares: HashMap<String, f64>,
    total_orders: u64,
}

impl ClientDistribution {
    /// The share of `client` (0 if unseen).
    pub fn share(&self, client: &str) -> f64 {
        self.shares.get(client).copied().unwrap_or(0.0)
    }

    /// Total orders counted.
    pub fn total(&self) -> u64 {
        self.total_orders
    }

    /// The client with the largest share, if any.
    pub fn dominant(&self) -> Option<(&str, f64)> {
        self.shares
            .iter()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal).then(b.0.cmp(a.0))
            })
            .map(|(k, &v)| (k.as_str(), v))
    }

    /// `(client, share)` pairs sorted by descending share then name.
    pub fn sorted(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self.shares.clone().into_iter().collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        v
    }
}

/// Computes the order-source distribution over a set of items.
pub fn client_distribution(items: &[&CollectedItem]) -> ClientDistribution {
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut total = 0u64;
    for item in items {
        for c in &item.comments {
            *counts.entry(c.client.clone()).or_insert(0) += 1;
            total += 1;
        }
    }
    let shares = counts.into_iter().map(|(k, v)| (k, v as f64 / total.max(1) as f64)).collect();
    ClientDistribution { shares, total_orders: total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cats_collector::CollectedComment;

    fn item(clients: &[&str]) -> CollectedItem {
        CollectedItem {
            item_id: 0,
            shop_id: 0,
            name: String::new(),
            price_cents: 0,
            sales_volume: clients.len() as u64,
            comments: clients
                .iter()
                .map(|c| CollectedComment {
                    comment_id: 0,
                    content: String::new(),
                    nickname: "a***b".into(),
                    user_exp_value: 100,
                    client: c.to_string(),
                    date: String::new(),
                })
                .collect(),
            truncated: false,
        }
    }

    #[test]
    fn shares_computed_per_client() {
        let a = item(&["Web", "Web", "Android", "iPhone"]);
        let d = client_distribution(&[&a]);
        assert_eq!(d.total(), 4);
        assert!((d.share("Web") - 0.5).abs() < 1e-12);
        assert!((d.share("Android") - 0.25).abs() < 1e-12);
        assert_eq!(d.share("Wechat"), 0.0);
    }

    #[test]
    fn dominant_client() {
        let a = item(&["Web", "Web", "Android"]);
        let d = client_distribution(&[&a]);
        let (name, share) = d.dominant().unwrap();
        assert_eq!(name, "Web");
        assert!((share - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_order_is_descending() {
        let a = item(&["Web", "Android", "Android", "iPhone", "Android"]);
        let d = client_distribution(&[&a]);
        let s = d.sorted();
        assert_eq!(s[0].0, "Android");
        assert!(s.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn shares_sum_to_one() {
        let a = item(&["Web", "Android", "iPhone", "Wechat", "Web"]);
        let d = client_distribution(&[&a]);
        let sum: f64 = d.sorted().iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_safe() {
        let d = client_distribution(&[]);
        assert_eq!(d.total(), 0);
        assert!(d.dominant().is_none());
    }
}
