//! The user aspect of the measurement study (paper §V, Fig 11).
//!
//! Works over the *collected* public data: each comment carries the
//! buyer's userExpValue and nickname, so the analysis (1) identifies
//! unique buyers per item class, (2) compares their reliability
//! distributions, (3) computes per-item average buyer reliability
//! (avgUserExpValue), and (4) mines *risky users* (buyers of reported
//! fraud items) and *risky pairs* — pairs of users that co-purchased two
//! or more of the same fraud items, the paper's hired-pool fingerprint
//! (83,745 pairs collapsing to 1,056 distinct users).

use cats_collector::CollectedItem;
use std::collections::{HashMap, HashSet};

/// A user identity as recoverable from public comment records. The paper
/// "employ\[s\] userExpValue and nickname to approximately identify unique
/// users"; we do the same.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserKey {
    /// Anonymized nickname.
    pub nickname: String,
    /// Reliability score.
    pub exp_value: u64,
}

/// Collects the unique buyers of a set of items.
pub fn unique_buyers(items: &[&CollectedItem]) -> Vec<UserKey> {
    let mut set: HashSet<UserKey> = HashSet::new();
    for item in items {
        for c in &item.comments {
            set.insert(UserKey { nickname: c.nickname.clone(), exp_value: c.user_exp_value });
        }
    }
    let mut v: Vec<UserKey> = set.into_iter().collect();
    v.sort();
    v
}

/// Share of buyers with `exp_value` strictly below `threshold`.
pub fn share_below(buyers: &[UserKey], threshold: u64) -> f64 {
    if buyers.is_empty() {
        return 0.0;
    }
    buyers.iter().filter(|u| u.exp_value < threshold).count() as f64 / buyers.len() as f64
}

/// Share of buyers exactly at `value` (the paper reports 15% of fraud
/// buyers at the floor score 100).
pub fn share_at(buyers: &[UserKey], value: u64) -> f64 {
    if buyers.is_empty() {
        return 0.0;
    }
    buyers.iter().filter(|u| u.exp_value == value).count() as f64 / buyers.len() as f64
}

/// Average buyer exp-value of one item (`avgUserExpValue`); `None` if the
/// item has no comments.
pub fn avg_user_exp(item: &CollectedItem) -> Option<f64> {
    if item.comments.is_empty() {
        return None;
    }
    Some(
        item.comments.iter().map(|c| c.user_exp_value as f64).sum::<f64>()
            / item.comments.len() as f64,
    )
}

/// Result of the risky-pair mining.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskyPairs {
    /// Number of unordered user pairs sharing ≥ `min_shared` fraud items.
    pub n_pairs: usize,
    /// Distinct users participating in at least one such pair.
    pub n_users: usize,
    /// Maximum number of fraud items any single user purchased.
    pub max_purchases_by_one_user: usize,
    /// Share of risky users that purchased more than one fraud item.
    pub repeat_buyer_share: f64,
}

/// Mines risky users and pairs over the reported fraud items.
///
/// A *risky user* is any buyer of a reported fraud item. A *risky pair*
/// is an unordered pair of risky users that co-purchased at least
/// `min_shared` distinct fraud items.
pub fn mine_risky_pairs(fraud_items: &[&CollectedItem], min_shared: usize) -> RiskyPairs {
    // user -> set of fraud item ids they commented on
    let mut purchases: HashMap<UserKey, HashSet<u64>> = HashMap::new();
    for item in fraud_items {
        for c in &item.comments {
            purchases
                .entry(UserKey { nickname: c.nickname.clone(), exp_value: c.user_exp_value })
                .or_default()
                .insert(item.item_id);
        }
    }

    let max_purchases = purchases.values().map(HashSet::len).max().unwrap_or(0);
    let repeat = purchases.values().filter(|s| s.len() > 1).count();
    let repeat_share =
        if purchases.is_empty() { 0.0 } else { repeat as f64 / purchases.len() as f64 };

    // Invert: item -> buyer index list, then count shared items per pair.
    let users: Vec<&UserKey> = purchases.keys().collect();
    let index: HashMap<&UserKey, usize> = users.iter().enumerate().map(|(i, &u)| (u, i)).collect();
    let mut by_item: HashMap<u64, Vec<usize>> = HashMap::new();
    for (user, items) in &purchases {
        let ui = index[user];
        for &it in items {
            by_item.entry(it).or_default().push(ui);
        }
    }
    let mut pair_counts: HashMap<(usize, usize), usize> = HashMap::new();
    for buyers in by_item.values() {
        let mut b = buyers.clone();
        b.sort_unstable();
        for i in 0..b.len() {
            for j in i + 1..b.len() {
                *pair_counts.entry((b[i], b[j])).or_insert(0) += 1;
            }
        }
    }
    let mut pair_users: HashSet<usize> = HashSet::new();
    let mut n_pairs = 0usize;
    for (&(a, b), &shared) in &pair_counts {
        if shared >= min_shared {
            n_pairs += 1;
            pair_users.insert(a);
            pair_users.insert(b);
        }
    }
    RiskyPairs {
        n_pairs,
        n_users: pair_users.len(),
        max_purchases_by_one_user: max_purchases,
        repeat_buyer_share: repeat_share,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cats_collector::CollectedComment;

    fn comment(nick: &str, exp: u64) -> CollectedComment {
        CollectedComment {
            comment_id: 0,
            content: String::new(),
            nickname: nick.to_string(),
            user_exp_value: exp,
            client: "Web".into(),
            date: String::new(),
        }
    }

    fn item(id: u64, buyers: &[(&str, u64)]) -> CollectedItem {
        CollectedItem {
            item_id: id,
            shop_id: 0,
            name: String::new(),
            price_cents: 0,
            sales_volume: buyers.len() as u64,
            comments: buyers.iter().map(|(n, e)| comment(n, *e)).collect(),
            truncated: false,
        }
    }

    #[test]
    fn unique_buyers_dedup_by_nickname_and_exp() {
        let a = item(1, &[("u1", 100), ("u1", 100), ("u2", 500)]);
        let buyers = unique_buyers(&[&a]);
        assert_eq!(buyers.len(), 2);
    }

    #[test]
    fn same_nickname_different_exp_is_two_users() {
        // approximate identification: the pair (nickname, exp) is the key
        let a = item(1, &[("u1", 100), ("u1", 200)]);
        assert_eq!(unique_buyers(&[&a]).len(), 2);
    }

    #[test]
    fn shares() {
        let a = item(1, &[("a", 100), ("b", 500), ("c", 1500), ("d", 5000)]);
        let buyers = unique_buyers(&[&a]);
        assert!((share_below(&buyers, 1000) - 0.5).abs() < 1e-12);
        assert!((share_below(&buyers, 2000) - 0.75).abs() < 1e-12);
        assert!((share_at(&buyers, 100) - 0.25).abs() < 1e-12);
        assert_eq!(share_below(&[], 100), 0.0);
    }

    #[test]
    fn avg_exp_of_item() {
        let a = item(1, &[("a", 100), ("b", 300)]);
        assert_eq!(avg_user_exp(&a), Some(200.0));
        let empty = item(2, &[]);
        assert_eq!(avg_user_exp(&empty), None);
    }

    #[test]
    fn risky_pairs_require_min_shared_items() {
        // u1,u2 share items 1 and 2; u3 only buys item 1.
        let i1 = item(1, &[("u1", 100), ("u2", 100), ("u3", 900)]);
        let i2 = item(2, &[("u1", 100), ("u2", 100)]);
        let r = mine_risky_pairs(&[&i1, &i2], 2);
        assert_eq!(r.n_pairs, 1);
        assert_eq!(r.n_users, 2);
        assert_eq!(r.max_purchases_by_one_user, 2);
        // u1,u2 are repeat buyers; u3 is not → 2/3
        assert!((r.repeat_buyer_share - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_shared_one_counts_every_copurchase() {
        let i1 = item(1, &[("u1", 100), ("u2", 100), ("u3", 900)]);
        let r = mine_risky_pairs(&[&i1], 1);
        assert_eq!(r.n_pairs, 3); // all C(3,2) pairs share item 1
        assert_eq!(r.n_users, 3);
    }

    #[test]
    fn duplicate_comments_by_same_user_count_once_per_item() {
        let i1 = item(1, &[("u1", 100), ("u1", 100), ("u2", 100)]);
        let i2 = item(2, &[("u1", 100), ("u2", 100)]);
        let r = mine_risky_pairs(&[&i1, &i2], 2);
        assert_eq!(r.n_pairs, 1);
        assert_eq!(r.max_purchases_by_one_user, 2);
    }

    #[test]
    fn empty_input_is_safe() {
        let r = mine_risky_pairs(&[], 2);
        assert_eq!(r.n_pairs, 0);
        assert_eq!(r.n_users, 0);
        assert_eq!(r.max_purchases_by_one_user, 0);
        assert_eq!(r.repeat_buyer_share, 0.0);
    }
}
