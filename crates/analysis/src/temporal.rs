//! Temporal analysis of comment arrivals.
//!
//! A natural extension the paper flags as future work ("mine and
//! understand the underground ecosystem"): hired campaigns post their
//! comments in *bursts* — a pool works through an item over days, not
//! months — whereas organic reviews arrive spread over the item's
//! lifetime. This module measures that burstiness from the public
//! timestamps of the comment records.

use cats_collector::CollectedItem;
use std::collections::HashMap;

/// Parses the synthetic timestamp format `YYYY-MM-DD HH:MM:SS` into a
/// comparable minute index (30-day months — the platform's own calendar).
/// Returns `None` on malformed input.
pub fn parse_minutes(date: &str) -> Option<u64> {
    let bytes = date.as_bytes();
    if bytes.len() < 16 {
        return None;
    }
    let num = |s: &str| s.parse::<u64>().ok();
    let year = num(date.get(0..4)?)?;
    let month = num(date.get(5..7)?)?;
    let day = num(date.get(8..10)?)?;
    let hour = num(date.get(11..13)?)?;
    let minute = num(date.get(14..16)?)?;
    if !(1..=12 + 12).contains(&month) || day == 0 {
        return None;
    }
    Some(((((year * 12 + month - 1) * 30 + day - 1) * 24 + hour) * 60) + minute)
}

/// Per-item temporal statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalStats {
    /// Span between first and last comment, in days.
    pub span_days: f64,
    /// Largest share of the item's comments falling in any single day.
    pub peak_day_share: f64,
    /// Mean inter-comment gap in hours (0 for single-comment items).
    pub mean_gap_hours: f64,
}

/// Computes temporal statistics for one item; `None` if it has no
/// parseable timestamps.
pub fn temporal_stats(item: &CollectedItem) -> Option<TemporalStats> {
    let mut minutes: Vec<u64> =
        item.comments.iter().filter_map(|c| parse_minutes(&c.date)).collect();
    if minutes.is_empty() {
        return None;
    }
    minutes.sort_unstable();
    let span_min = minutes.last().unwrap() - minutes[0];

    let mut per_day: HashMap<u64, usize> = HashMap::new();
    for &m in &minutes {
        *per_day.entry(m / (24 * 60)).or_insert(0) += 1;
    }
    let peak = per_day.values().copied().max().unwrap_or(0);

    let mean_gap_hours =
        if minutes.len() < 2 { 0.0 } else { (span_min as f64 / (minutes.len() - 1) as f64) / 60.0 };
    Some(TemporalStats {
        span_days: span_min as f64 / (24.0 * 60.0),
        peak_day_share: peak as f64 / minutes.len() as f64,
        mean_gap_hours,
    })
}

/// Mean peak-day share over a set of items (the burstiness headline
/// statistic; higher = more campaign-like). `None` for an empty or
/// timestamp-free set.
pub fn mean_peak_day_share(items: &[&CollectedItem]) -> Option<f64> {
    let shares: Vec<f64> =
        items.iter().filter_map(|i| temporal_stats(i)).map(|s| s.peak_day_share).collect();
    if shares.is_empty() {
        return None;
    }
    Some(shares.iter().sum::<f64>() / shares.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cats_collector::CollectedComment;

    fn item(dates: &[&str]) -> CollectedItem {
        CollectedItem {
            item_id: 0,
            shop_id: 0,
            name: String::new(),
            price_cents: 0,
            sales_volume: dates.len() as u64,
            comments: dates
                .iter()
                .map(|d| CollectedComment {
                    comment_id: 0,
                    content: String::new(),
                    nickname: "a***b".into(),
                    user_exp_value: 100,
                    client: "Web".into(),
                    date: d.to_string(),
                })
                .collect(),
            truncated: false,
        }
    }

    #[test]
    fn parse_minutes_ordering() {
        let a = parse_minutes("2017-09-01 00:00:00").unwrap();
        let b = parse_minutes("2017-09-01 00:01:00").unwrap();
        let c = parse_minutes("2017-09-02 00:00:00").unwrap();
        let d = parse_minutes("2017-10-01 00:00:00").unwrap();
        assert!(a < b && b < c && c < d);
        assert_eq!(b - a, 1);
        assert_eq!(c - a, 24 * 60);
        assert_eq!(d - a, 30 * 24 * 60);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_minutes("").is_none());
        assert!(parse_minutes("2017-09-01").is_none());
        assert!(parse_minutes("not a date at all!").is_none());
        assert!(parse_minutes("2017-00-01 00:00:00").is_none());
    }

    #[test]
    fn bursty_item_has_high_peak_share() {
        let it = item(&[
            "2017-09-05 10:00:00",
            "2017-09-05 11:00:00",
            "2017-09-05 12:00:00",
            "2017-09-05 13:00:00",
            "2017-11-20 09:00:00",
        ]);
        let s = temporal_stats(&it).unwrap();
        assert!((s.peak_day_share - 0.8).abs() < 1e-12);
        assert!(s.span_days > 70.0);
    }

    #[test]
    fn spread_item_has_low_peak_share() {
        let it = item(&[
            "2017-09-01 10:00:00",
            "2017-09-15 10:00:00",
            "2017-10-01 10:00:00",
            "2017-10-15 10:00:00",
        ]);
        let s = temporal_stats(&it).unwrap();
        assert!((s.peak_day_share - 0.25).abs() < 1e-12);
        assert!(s.mean_gap_hours > 300.0);
    }

    #[test]
    fn single_comment_item() {
        let s = temporal_stats(&item(&["2017-09-01 00:00:00"])).unwrap();
        assert_eq!(s.span_days, 0.0);
        assert_eq!(s.peak_day_share, 1.0);
        assert_eq!(s.mean_gap_hours, 0.0);
    }

    #[test]
    fn timestamp_free_item_is_none() {
        assert!(temporal_stats(&item(&["garbage"])).is_none());
        assert!(temporal_stats(&item(&[])).is_none());
    }

    #[test]
    fn mean_peak_share_aggregates() {
        let a = item(&["2017-09-01 00:00:00", "2017-09-01 01:00:00"]); // 1.0
        let b = item(&["2017-09-01 00:00:00", "2017-09-02 01:00:00"]); // 0.5
        let m = mean_peak_day_share(&[&a, &b]).unwrap();
        assert!((m - 0.75).abs() < 1e-12);
        assert!(mean_peak_day_share(&[]).is_none());
    }
}
