//! Word-frequency analysis (Figs 8–9, Tables VIII–IX).
//!
//! The paper's "word clouds" are frequency-ranked word lists over the
//! comments of a class of items; its Tables VIII–IX list the top-50 words
//! of fraud items on both platforms and observe that (1) the lists are
//! dominated by positive words (~28% of total occurrences) and (2) the
//! lists agree across platforms. [`WordFrequency`] computes the ranking
//! plus the positive-word share and a rank-overlap measure.

use cats_text::Lexicon;
use std::collections::{HashMap, HashSet};

/// A frequency table over words (punctuation excluded; optionally,
/// stopwords too — the paper's top-50 lists contain no function words,
/// implying its segmentation pipeline dropped them).
#[derive(Debug, Clone, Default)]
pub struct WordFrequency {
    counts: HashMap<String, u64>,
    total: u64,
    stopwords: HashSet<String>,
}

impl WordFrequency {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table that additionally drops `stopwords`.
    pub fn with_stopwords<I: IntoIterator<Item = String>>(stopwords: I) -> Self {
        Self { stopwords: stopwords.into_iter().collect(), ..Self::default() }
    }

    /// Accumulates one segmented comment (punctuation and stopword tokens
    /// skipped).
    pub fn add_comment(&mut self, tokens: &[String]) {
        for t in tokens {
            if cats_text::segment::is_punctuation_token(t) || self.stopwords.contains(t) {
                continue;
            }
            *self.counts.entry(t.clone()).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Total non-punctuation token occurrences.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct words seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most frequent words with counts, ties broken
    /// lexicographically for determinism.
    pub fn top_k(&self, k: usize) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self.counts.iter().map(|(w, &c)| (w.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Fraction of total occurrences contributed by the top-`k` words that
    /// are in the positive set — the paper's "top 50 words … occupy ~28%
    /// of a total".
    pub fn top_k_positive_share(&self, k: usize, lexicon: &Lexicon) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mass: u64 =
            self.top_k(k).iter().filter(|(w, _)| lexicon.is_positive(w)).map(|(_, c)| c).sum();
        mass as f64 / self.total as f64
    }

    /// Fraction of the top-`k` *words* that are positive.
    pub fn top_k_positive_fraction(&self, k: usize, lexicon: &Lexicon) -> f64 {
        let top = self.top_k(k);
        if top.is_empty() {
            return 0.0;
        }
        top.iter().filter(|(w, _)| lexicon.is_positive(w)).count() as f64 / top.len() as f64
    }

    /// Jaccard overlap of the top-`k` word sets of two tables — the
    /// cross-platform agreement measure for Tables VIII vs IX.
    pub fn top_k_overlap(&self, other: &Self, k: usize) -> f64 {
        let a: std::collections::HashSet<String> =
            self.top_k(k).into_iter().map(|(w, _)| w).collect();
        let b: std::collections::HashSet<String> =
            other.top_k(k).into_iter().map(|(w, _)| w).collect();
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn counts_and_ranks() {
        let mut wf = WordFrequency::new();
        wf.add_comment(&toks(&["a", "b", "b", "c", "c", "c"]));
        assert_eq!(wf.total(), 6);
        assert_eq!(wf.distinct(), 3);
        let top = wf.top_k(2);
        assert_eq!(top[0], ("c".to_string(), 3));
        assert_eq!(top[1], ("b".to_string(), 2));
    }

    #[test]
    fn punctuation_excluded() {
        let mut wf = WordFrequency::new();
        wf.add_comment(&toks(&["a", "!", "，", "b"]));
        assert_eq!(wf.total(), 2);
        assert_eq!(wf.distinct(), 2);
    }

    #[test]
    fn ties_break_lexicographically() {
        let mut wf = WordFrequency::new();
        wf.add_comment(&toks(&["z", "a"]));
        let top = wf.top_k(2);
        assert_eq!(top[0].0, "a");
        assert_eq!(top[1].0, "z");
    }

    #[test]
    fn positive_share_and_fraction() {
        let lex = Lexicon::new(["hao".to_string()], []);
        let mut wf = WordFrequency::new();
        wf.add_comment(&toks(&["hao", "hao", "hao", "x", "y"]));
        // top-1 = hao(3) of total 5
        assert!((wf.top_k_positive_share(1, &lex) - 0.6).abs() < 1e-12);
        assert!((wf.top_k_positive_fraction(2, &lex) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_table_is_safe() {
        let lex = Lexicon::empty();
        let wf = WordFrequency::new();
        assert_eq!(wf.top_k_positive_share(10, &lex), 0.0);
        assert_eq!(wf.top_k_positive_fraction(10, &lex), 0.0);
        assert!(wf.top_k(5).is_empty());
    }

    #[test]
    fn stopwords_are_dropped() {
        let mut wf = WordFrequency::with_stopwords(["de".to_string(), "le".to_string()]);
        wf.add_comment(&toks(&["hao", "de", "le", "hao"]));
        assert_eq!(wf.total(), 2);
        assert_eq!(wf.distinct(), 1);
        assert!(wf.top_k(5).iter().all(|(w, _)| w != "de" && w != "le"));
    }

    #[test]
    fn overlap_of_identical_tables_is_one() {
        let mut a = WordFrequency::new();
        a.add_comment(&toks(&["x", "y", "z"]));
        assert!((a.top_k_overlap(&a.clone(), 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_disjoint_tables_is_zero() {
        let mut a = WordFrequency::new();
        a.add_comment(&toks(&["x"]));
        let mut b = WordFrequency::new();
        b.add_comment(&toks(&["y"]));
        assert_eq!(a.top_k_overlap(&b, 5), 0.0);
    }

    #[test]
    fn overlap_of_empty_tables_is_one() {
        let a = WordFrequency::new();
        assert_eq!(a.top_k_overlap(&WordFrequency::new(), 5), 1.0);
    }
}
