//! Cross-platform feature-distribution comparison (paper Fig 13 a–k).
//!
//! The paper's final validation argument: the 11 feature distributions of
//! the *reported* fraud items on E-platform "roughly agree" with those of
//! the *labeled* fraud items on Taobao, and the fraud-vs-normal contrast
//! is similar on both platforms. [`FeatureComparison`] computes, per
//! feature, the KS distances behind that claim.

use crate::hist::ks_distance;
use cats_core::{FeatureVector, FEATURE_NAMES, N_FEATURES};

/// Per-feature cross-platform agreement figures.
#[derive(Debug, Clone)]
pub struct FeatureComparison {
    /// KS distance between platform A fraud and platform B fraud, per
    /// feature (small = the fraud signatures agree).
    pub fraud_vs_fraud: [f64; N_FEATURES],
    /// KS distance between platform A normal and platform B normal.
    pub normal_vs_normal: [f64; N_FEATURES],
    /// KS distance between fraud and normal *within* platform A (large =
    /// the feature separates classes there).
    pub contrast_a: [f64; N_FEATURES],
    /// Same within platform B.
    pub contrast_b: [f64; N_FEATURES],
}

fn column(rows: &[FeatureVector], f: usize) -> Vec<f64> {
    rows.iter().map(|r| r.0[f]).collect()
}

impl FeatureComparison {
    /// Computes all four KS families.
    ///
    /// # Panics
    /// Panics if any of the four row sets is empty.
    pub fn compute(
        fraud_a: &[FeatureVector],
        normal_a: &[FeatureVector],
        fraud_b: &[FeatureVector],
        normal_b: &[FeatureVector],
    ) -> Self {
        let mut out = Self {
            fraud_vs_fraud: [0.0; N_FEATURES],
            normal_vs_normal: [0.0; N_FEATURES],
            contrast_a: [0.0; N_FEATURES],
            contrast_b: [0.0; N_FEATURES],
        };
        for f in 0..N_FEATURES {
            let fa = column(fraud_a, f);
            let na = column(normal_a, f);
            let fb = column(fraud_b, f);
            let nb = column(normal_b, f);
            out.fraud_vs_fraud[f] = ks_distance(&fa, &fb);
            out.normal_vs_normal[f] = ks_distance(&na, &nb);
            out.contrast_a[f] = ks_distance(&fa, &na);
            out.contrast_b[f] = ks_distance(&fb, &nb);
        }
        out
    }

    /// One row per feature: `(name, fraud↔fraud, normal↔normal,
    /// contrast A, contrast B)`.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64, f64, f64)> {
        (0..N_FEATURES)
            .map(|f| {
                (
                    FEATURE_NAMES[f],
                    self.fraud_vs_fraud[f],
                    self.normal_vs_normal[f],
                    self.contrast_a[f],
                    self.contrast_b[f],
                )
            })
            .collect()
    }

    /// The paper's agreement claim, made testable: on average across
    /// features, the cross-platform same-class distance is smaller than
    /// the within-platform class contrast.
    pub fn platforms_agree(&self) -> bool {
        let mean = |xs: &[f64; N_FEATURES]| xs.iter().sum::<f64>() / N_FEATURES as f64;
        let cross = (mean(&self.fraud_vs_fraud) + mean(&self.normal_vs_normal)) / 2.0;
        let contrast = (mean(&self.contrast_a) + mean(&self.contrast_b)) / 2.0;
        cross < contrast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic rows: fraud concentrates high on every feature, normal
    /// low; platform B adds slight jitter to platform A.
    fn rows(base: f64, jitter: f64, n: usize) -> Vec<FeatureVector> {
        (0..n)
            .map(|i| {
                let x = base + jitter * ((i % 7) as f64 / 7.0);
                FeatureVector([x; N_FEATURES])
            })
            .collect()
    }

    #[test]
    fn agreement_holds_for_matching_platforms() {
        let fa = rows(10.0, 0.5, 60);
        let na = rows(1.0, 0.5, 60);
        let fb = rows(10.1, 0.5, 60);
        let nb = rows(1.1, 0.5, 60);
        let c = FeatureComparison::compute(&fa, &na, &fb, &nb);
        assert!(c.platforms_agree());
        for f in 0..N_FEATURES {
            assert!(c.contrast_a[f] > 0.9, "classes should separate");
            assert!(c.fraud_vs_fraud[f] < 0.5, "fraud signatures should agree");
        }
    }

    #[test]
    fn agreement_fails_for_mismatched_platforms() {
        let fa = rows(10.0, 0.5, 60);
        let na = rows(1.0, 0.5, 60);
        // platform B's "fraud" looks like A's normal and vice versa
        let fb = rows(1.0, 0.5, 60);
        let nb = rows(10.0, 0.5, 60);
        let c = FeatureComparison::compute(&fa, &na, &fb, &nb);
        assert!(!c.platforms_agree());
    }

    #[test]
    fn rows_are_named_and_complete() {
        let fa = rows(2.0, 0.1, 10);
        let c = FeatureComparison::compute(&fa, &fa, &fa, &fa);
        let r = c.rows();
        assert_eq!(r.len(), N_FEATURES);
        assert_eq!(r[0].0, "averagePositiveNumber");
        // identical inputs → zero distances
        assert!(r.iter().all(|&(_, a, b, _, _)| a == 0.0 && b == 0.0));
    }
}
