//! # cats-analysis — measurement & validation toolkit
//!
//! Implements the paper's §IV-B/§V methodology: validating the detector's
//! reports on an unlabeled platform by combining simulated expert auditing
//! with statistical comparisons against the labeled platform, plus the
//! measurement study of fraud characteristics:
//!
//! * [`hist`] — histograms, ECDFs, summary statistics and the
//!   Kolmogorov–Smirnov distance (used to quantify the "distributions
//!   roughly agree" claims of Figs 10 & 13);
//! * [`wordcloud`] — word-frequency tables behind Figs 8–9 and the top-50
//!   word lists of Tables VIII–IX;
//! * [`users`] — the user aspect: userExpValue distributions (Fig 11),
//!   per-item average buyer reliability, risky users and risky-user
//!   pairs (§V);
//! * [`orders`] — the order aspect: client-source distributions (Fig 12);
//! * [`expert`] — the simulated expert panel standing in for Alibaba's
//!   manual validation (the 91% / 96% precision numbers);
//! * [`compare`] — cross-platform feature-distribution comparison
//!   (Fig 13 a–k);
//! * [`temporal`] — comment-arrival burstiness (a campaign fingerprint;
//!   an extension the paper flags as future work).

pub mod compare;
pub mod ecdf;
pub mod expert;
pub mod hist;
pub mod orders;
pub mod study;
pub mod temporal;
pub mod users;
pub mod wordcloud;

pub use ecdf::Ecdf;
pub use expert::{ExpertPanel, ExpertVerdict};
pub use hist::{ks_distance, Histogram, SummaryStats};
pub use study::{MeasurementStudy, StudyConfig};
pub use wordcloud::WordFrequency;
