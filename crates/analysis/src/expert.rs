//! Simulated expert validation (paper §III/§IV-B).
//!
//! The paper validates CATS' reports through human experts: Alibaba's
//! anti-fraud team confirmed 91% of the Taobao reports, and a 1,000-item
//! random sample of the E-platform reports was manually confirmed at 96%.
//! We have no human panel, but the generator's latent labels play the
//! ground truth; the panel audits a random sample of reported items
//! against those labels with a configurable disagreement rate (experts
//! are not oracles — they occasionally confirm a false positive or reject
//! a true one).

use rand::{rngs::StdRng, RngExt, SeedableRng};

/// The audit configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpertPanel {
    /// Sample size drawn from the reported items (paper: 1,000).
    pub sample_size: usize,
    /// Probability the panel's verdict contradicts ground truth.
    pub disagreement_rate: f64,
    /// RNG seed for sampling and disagreement.
    pub seed: u64,
}

impl Default for ExpertPanel {
    fn default() -> Self {
        Self { sample_size: 1_000, disagreement_rate: 0.02, seed: 0xE49E47 }
    }
}

/// Outcome of an audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpertVerdict {
    /// Items actually sampled (≤ `sample_size`).
    pub sampled: usize,
    /// Items the panel confirmed as fraudulent.
    pub confirmed: usize,
    /// Confirmed / sampled — the paper's reported "accuracy"/precision.
    pub precision: f64,
}

impl ExpertPanel {
    /// Audits `reported_truth`: one bool per *reported* item, `true` if the
    /// item is fraudulent per latent ground truth. Returns the panel's
    /// verdict over a random sample.
    pub fn audit(&self, reported_truth: &[bool]) -> ExpertVerdict {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = reported_truth.len();
        if n == 0 {
            return ExpertVerdict { sampled: 0, confirmed: 0, precision: 0.0 };
        }
        // Sample without replacement via partial Fisher–Yates.
        let k = self.sample_size.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + rng.random_range(0..n - i);
            idx.swap(i, j);
        }
        let mut confirmed = 0usize;
        for &i in &idx[..k] {
            let truth = reported_truth[i];
            let verdict = if rng.random_bool(self.disagreement_rate) { !truth } else { truth };
            if verdict {
                confirmed += 1;
            }
        }
        ExpertVerdict { sampled: k, confirmed, precision: confirmed as f64 / k as f64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reports_with_oracle_panel() {
        let panel = ExpertPanel { sample_size: 100, disagreement_rate: 0.0, seed: 1 };
        let truth = vec![true; 500];
        let v = panel.audit(&truth);
        assert_eq!(v.sampled, 100);
        assert_eq!(v.confirmed, 100);
        assert_eq!(v.precision, 1.0);
    }

    #[test]
    fn sample_clamped_to_population() {
        let panel = ExpertPanel { sample_size: 1_000, disagreement_rate: 0.0, seed: 1 };
        let v = panel.audit(&[true, false, true]);
        assert_eq!(v.sampled, 3);
        assert_eq!(v.confirmed, 2);
    }

    #[test]
    fn precision_tracks_ground_truth_rate() {
        let panel = ExpertPanel { sample_size: 2_000, disagreement_rate: 0.0, seed: 7 };
        // 90% true frauds among reports
        let truth: Vec<bool> = (0..5_000).map(|i| i % 10 != 0).collect();
        let v = panel.audit(&truth);
        assert!((v.precision - 0.9).abs() < 0.03, "{}", v.precision);
    }

    #[test]
    fn disagreement_blurs_the_verdict() {
        let panel = ExpertPanel { sample_size: 2_000, disagreement_rate: 0.1, seed: 7 };
        let truth = vec![true; 3_000];
        let v = panel.audit(&truth);
        assert!(
            (v.precision - 0.9).abs() < 0.03,
            "10% disagreement should cost ~10%: {}",
            v.precision
        );
    }

    #[test]
    fn empty_reports_are_safe() {
        let v = ExpertPanel::default().audit(&[]);
        assert_eq!(v.sampled, 0);
        assert_eq!(v.precision, 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let panel = ExpertPanel { sample_size: 50, disagreement_rate: 0.3, seed: 5 };
        let truth: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        assert_eq!(panel.audit(&truth), panel.audit(&truth));
    }
}
