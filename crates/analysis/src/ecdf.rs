//! Empirical cumulative distribution functions.
//!
//! The paper describes several findings as CDF statements ("45% of users
//! have their userExpValue below 2,000"); [`Ecdf`] answers exactly those
//! queries, plus quantiles, from a stored sorted sample.

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF, dropping NaNs.
    ///
    /// # Panics
    /// Panics if no finite samples remain.
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        assert!(!sorted.is_empty(), "ECDF needs at least one finite sample");
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — the fraction of samples `<= x`.
    pub fn cdf(&self, x: f64) -> f64 {
        // partition_point: count of elements <= x
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly below `x` (the paper's "below 2,000"
    /// phrasing).
    pub fn fraction_below(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v < x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile, `q ∈ [0, 1]`, by the nearest-rank method.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Evaluates the CDF at evenly spaced points across the sample range —
    /// the plotted series for a figure.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least 2 points");
        let (lo, hi) = (self.min(), self.max());
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.cdf(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf() -> Ecdf {
        Ecdf::new(&[4.0, 1.0, 3.0, 2.0])
    }

    #[test]
    fn cdf_steps_through_sample() {
        let e = ecdf();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(99.0), 1.0);
    }

    #[test]
    fn fraction_below_is_strict() {
        let e = ecdf();
        assert_eq!(e.fraction_below(1.0), 0.0);
        assert_eq!(e.fraction_below(1.5), 0.25);
        assert_eq!(e.fraction_below(4.0), 0.75);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = ecdf();
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.25), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
    }

    #[test]
    fn duplicates_counted_with_multiplicity() {
        let e = Ecdf::new(&[1.0, 1.0, 1.0, 5.0]);
        assert_eq!(e.cdf(1.0), 0.75);
        assert_eq!(e.fraction_below(1.0), 0.0);
    }

    #[test]
    fn nan_dropped() {
        let e = Ecdf::new(&[f64::NAN, 2.0]);
        assert_eq!(e.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one finite sample")]
    fn all_nan_rejected() {
        Ecdf::new(&[f64::NAN]);
    }

    #[test]
    fn curve_is_monotone_and_spans_range() {
        let e = Ecdf::new(&[0.0, 1.0, 2.0, 3.0, 10.0]);
        let c = e.curve(11);
        assert_eq!(c.len(), 11);
        assert_eq!(c[0].0, 0.0);
        assert_eq!(c[10].0, 10.0);
        assert!(c.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(c[10].1, 1.0);
    }

    #[test]
    fn cdf_matches_paper_style_queries() {
        // "45% of users below 2000"-style query
        let exp_values = [100.0, 500.0, 1500.0, 3000.0, 9000.0];
        let e = Ecdf::new(&exp_values);
        assert_eq!(e.fraction_below(2000.0), 0.6);
    }
}
