//! Property-based tests for the analysis toolkit.

use cats_analysis::{ks_distance, Histogram, SummaryStats};
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-1e6f64..1e6).prop_filter("finite", |x| x.is_finite()), 1..200)
}

proptest! {
    #[test]
    fn histogram_conserves_samples(xs in samples(), bins in 1usize..40) {
        let h = Histogram::from_samples(&xs, -1e6, 1e6 + 1.0, bins);
        prop_assert_eq!(h.len(), xs.len() as u64);
        let count_sum: u64 = h.counts().iter().sum();
        prop_assert_eq!(count_sum, xs.len() as u64);
    }

    #[test]
    fn histogram_density_integrates_to_one(xs in samples(), bins in 1usize..40) {
        let h = Histogram::from_samples(&xs, -1e6, 1e6 + 1.0, bins);
        let integral: f64 = h.densities().iter().map(|d| d * h.bin_width()).sum();
        prop_assert!((integral - 1.0).abs() < 1e-9, "integral {integral}");
    }

    #[test]
    fn histogram_fractions_sum_to_one(xs in samples(), bins in 1usize..40) {
        let h = Histogram::from_samples(&xs, -1e6, 1e6 + 1.0, bins);
        let s: f64 = h.fractions().iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn summary_stats_ordering(xs in samples()) {
        let s = SummaryStats::of(&xs).unwrap();
        prop_assert!(s.min <= s.median + 1e-12);
        prop_assert!(s.median <= s.max + 1e-12);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
    }

    #[test]
    fn ks_is_a_premetric(a in samples(), b in samples()) {
        let dab = ks_distance(&a, &b);
        let dba = ks_distance(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0).contains(&dab), "bounds");
        prop_assert!(ks_distance(&a, &a) < 1e-12, "identity");
    }

    #[test]
    fn ks_detects_shift(a in samples(), shift in 1e7f64..1e8) {
        let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
        // shift larger than the whole sample range: fully separated CDFs
        prop_assert!((ks_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_triangle_like_monotonicity(a in samples()) {
        // Mixing a with itself cannot increase distance to a.
        let mut doubled = a.clone();
        doubled.extend_from_slice(&a);
        prop_assert!(ks_distance(&a, &doubled) < 1e-12);
    }
}

mod wordcloud_props {
    use cats_analysis::WordFrequency;
    use proptest::prelude::*;

    fn comments() -> impl Strategy<Value = Vec<Vec<String>>> {
        prop::collection::vec(prop::collection::vec("[a-z]{1,5}", 0..20), 0..20)
    }

    proptest! {
        #[test]
        fn top_k_is_sorted_and_bounded(cs in comments(), k in 0usize..30) {
            let mut wf = WordFrequency::new();
            for c in &cs {
                wf.add_comment(c);
            }
            let top = wf.top_k(k);
            prop_assert!(top.len() <= k);
            prop_assert!(top.windows(2).all(|w| w[0].1 >= w[1].1), "sorted by count");
            let total: u64 = top.iter().map(|(_, c)| c).sum();
            prop_assert!(total <= wf.total());
        }

        #[test]
        fn total_counts_non_punctuation_tokens(cs in comments()) {
            let mut wf = WordFrequency::new();
            let mut expected = 0u64;
            for c in &cs {
                wf.add_comment(c);
                expected += c.len() as u64; // strategy emits no punctuation
            }
            prop_assert_eq!(wf.total(), expected);
        }
    }
}

mod ecdf_props {
    use cats_analysis::Ecdf;
    use proptest::prelude::*;

    fn sample() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-1e6f64..1e6, 1..120)
    }

    proptest! {
        #[test]
        fn cdf_is_monotone_and_bounded(xs in sample(), probe in -2e6f64..2e6) {
            let e = Ecdf::new(&xs);
            let a = e.cdf(probe);
            let b = e.cdf(probe + 1.0);
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert!(a <= b + 1e-12);
            prop_assert!(e.cdf(e.max()) == 1.0);
            prop_assert!(e.fraction_below(e.min()) == 0.0);
        }

        #[test]
        fn quantile_inverts_cdf(xs in sample(), q in 0.01f64..1.0) {
            let e = Ecdf::new(&xs);
            let x = e.quantile(q);
            // at least a q-fraction of the sample is <= quantile(q)
            prop_assert!(e.cdf(x) + 1e-12 >= q);
        }

        #[test]
        fn quantiles_are_monotone(xs in sample(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let e = Ecdf::new(&xs);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.quantile(lo) <= e.quantile(hi) + 1e-12);
        }
    }
}
