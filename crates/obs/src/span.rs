//! Spans: scoped timers with parent–child nesting and self-time.
//!
//! `let _g = span!("cats.core.detect");` opens a span that closes when
//! the guard drops. Each completed span records into the process-global
//! registry's per-name [`StageStats`] (count, total/self time, a
//! duration histogram, an items tally) and appends a [`SpanEvent`] to a
//! per-thread buffer that is flushed in batches into a bounded global
//! event stream.
//!
//! Nesting is tracked per thread: a child's wall time is subtracted
//! from its parent's *self* time, so `self_micros` across all stages
//! partitions the instrumented wall clock without double counting.
//! Worker threads (`cats-par`) each carry their own stack and handle
//! cache, so recording never takes a lock on the hot path.

use crate::clock;
use crate::metrics::{global, Histogram, StageSnapshot};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Flush the thread-local event buffer at this size.
const THREAD_BUF: usize = 64;
/// Bound on the global event stream; past this, events are counted as
/// dropped instead of buffered (aggregates in [`StageStats`] still
/// record everything).
const MAX_EVENTS: usize = 1 << 16;

/// Aggregate statistics for one span name. All-atomic: recording from
/// worker threads is lock-free.
#[derive(Debug)]
pub struct StageStats {
    count: AtomicU64,
    items: AtomicU64,
    total_micros: AtomicU64,
    self_micros: AtomicU64,
    hist: Histogram,
}

impl StageStats {
    pub(crate) fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            items: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
            self_micros: AtomicU64::new(0),
            hist: Histogram::exponential_micros(),
        }
    }

    fn record(&self, wall: u64, self_micros: u64, items: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(items, Ordering::Relaxed);
        self.total_micros.fetch_add(wall, Ordering::Relaxed);
        self.self_micros.fetch_add(self_micros, Ordering::Relaxed);
        self.hist.record(wall as f64);
    }

    pub(crate) fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            count: self.count.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            self_micros: self.self_micros.load(Ordering::Relaxed),
            hist: self.hist.snapshot(),
        }
    }
}

/// One completed span occurrence in the structured event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (`cats.<crate>.<stage>` — a `'static` literal at every
    /// call site).
    pub name: &'static str,
    /// Observability thread ordinal (order of first span per thread).
    pub thread: usize,
    /// Nesting depth on the recording thread (0 = root).
    pub depth: usize,
    /// Observer time at span open.
    pub start_micros: u64,
    /// Wall duration (observer time).
    pub wall_micros: u64,
    /// Wall minus directly nested child spans.
    pub self_micros: u64,
    /// Optional items-processed payload (`span!(name, { n })`).
    pub items: u64,
}

struct EventSink {
    events: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
}

fn sink() -> &'static EventSink {
    static SINK: OnceLock<EventSink> = OnceLock::new();
    SINK.get_or_init(|| EventSink { events: Mutex::new(Vec::new()), dropped: AtomicU64::new(0) })
}

/// Drains and returns all flushed events (order: flush order, i.e.
/// batched per thread).
pub fn take_events() -> Vec<SpanEvent> {
    std::mem::take(&mut *sink().events.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
}

/// How many events were discarded because the global stream was full.
pub fn dropped_events() -> u64 {
    sink().dropped.load(Ordering::Relaxed)
}

/// Flushes the calling thread's event buffer into the global stream.
/// Called automatically at buffer capacity and on thread exit;
/// [`crate::StageTimer::finish`] calls it for the finishing thread.
pub fn flush_thread() {
    CTX.with(|c| flush_buf(&mut c.borrow_mut().buf));
}

fn flush_buf(buf: &mut Vec<SpanEvent>) {
    if buf.is_empty() {
        return;
    }
    let mut events = sink().events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let room = MAX_EVENTS.saturating_sub(events.len());
    if buf.len() > room {
        sink().dropped.fetch_add((buf.len() - room) as u64, Ordering::Relaxed);
        buf.truncate(room);
    }
    events.append(buf);
}

struct ThreadCtx {
    /// Per-open-span accumulator of direct children's wall time.
    stack: Vec<u64>,
    buf: Vec<SpanEvent>,
    ordinal: usize,
    /// Per-thread cache of registry handles so span exit stays lock-free.
    stats: HashMap<&'static str, Arc<StageStats>>,
}

impl ThreadCtx {
    fn new() -> Self {
        static NEXT_ORDINAL: AtomicUsize = AtomicUsize::new(0);
        Self {
            stack: Vec::new(),
            buf: Vec::with_capacity(THREAD_BUF),
            ordinal: NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed),
            stats: HashMap::new(),
        }
    }
}

impl Drop for ThreadCtx {
    fn drop(&mut self) {
        flush_buf(&mut self.buf);
    }
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::new());
}

/// RAII span guard: the span closes (and records) when this drops.
/// Hold it in a named binding — `let _span = span!(...)` — because
/// `let _ =` drops immediately.
#[must_use = "a span measures the scope of its guard; bind it with `let _span = ...`"]
pub struct SpanGuard {
    name: &'static str,
    start: u64,
    items: u64,
    obs: Option<Arc<dyn clock::Observer>>,
}

/// Opens a span. Prefer the [`crate::span!`] macro.
pub fn enter(name: &'static str) -> SpanGuard {
    enter_with(name, 0)
}

/// Opens a span carrying an items-processed payload.
pub fn enter_with(name: &'static str, items: u64) -> SpanGuard {
    let obs = clock::observer();
    if !obs.enabled() {
        return SpanGuard { name, start: 0, items: 0, obs: None };
    }
    let start = obs.now_micros();
    CTX.with(|c| c.borrow_mut().stack.push(0));
    SpanGuard { name, start, items, obs: Some(obs) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(obs) = self.obs.take() else {
            return;
        };
        let wall = obs.now_micros().saturating_sub(self.start);
        let (event, stats) = CTX.with(|c| {
            let mut c = c.borrow_mut();
            let child = c.stack.pop().unwrap_or(0);
            let depth = c.stack.len();
            if let Some(parent) = c.stack.last_mut() {
                *parent += wall;
            }
            let self_micros = wall.saturating_sub(child);
            let event = SpanEvent {
                name: self.name,
                thread: c.ordinal,
                depth,
                start_micros: self.start,
                wall_micros: wall,
                self_micros,
                items: self.items,
            };
            c.buf.push(event.clone());
            if c.buf.len() >= THREAD_BUF {
                flush_buf(&mut c.buf);
            }
            let stats =
                c.stats.entry(self.name).or_insert_with(|| global().stage(self.name)).clone();
            (event, stats)
        });
        stats.record(event.wall_micros, event.self_micros, event.items);
    }
}

/// Opens a span recording into the global registry.
///
/// ```
/// let _span = cats_obs::span!("cats.doc.example");
/// let _span2 = cats_obs::span!("cats.doc.example.items", { 3usize });
/// let _span3 = cats_obs::span!("cats.doc.example.kv", items = 3u64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::enter($name)
    };
    ($name:literal, { $items:expr }) => {
        $crate::span::enter_with($name, $items as u64)
    };
    ($name:literal, items = $items:expr) => {
        $crate::span::enter_with($name, $items as u64)
    };
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::clock::{set_observer, SimObserver, WallObserver};

    /// Span tests mutate the process-global observer/registry, so they
    /// serialize on one lock and measure via snapshot diffs.
    pub(crate) static OBS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn nesting_attributes_self_time_to_the_right_span() {
        let _g = OBS_LOCK.lock().unwrap();
        let sim = Arc::new(SimObserver::new());
        set_observer(sim.clone());
        let before = global().snapshot();

        {
            let _outer = crate::span!("cats.obs.test.outer");
            sim.advance_micros(10);
            {
                let _inner = crate::span!("cats.obs.test.inner", { 7usize });
                sim.advance_micros(5);
            }
            sim.advance_micros(3);
        }
        flush_thread();

        let d = global().snapshot().diff(&before);
        let outer = &d.stages["cats.obs.test.outer"];
        let inner = &d.stages["cats.obs.test.inner"];
        assert_eq!(inner.count, 1);
        assert_eq!(inner.total_micros, 5);
        assert_eq!(inner.self_micros, 5);
        assert_eq!(inner.items, 7);
        assert_eq!(outer.total_micros, 18);
        assert_eq!(outer.self_micros, 13, "child time subtracted");

        set_observer(Arc::new(WallObserver::new()));
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let _g = OBS_LOCK.lock().unwrap();
        set_observer(Arc::new(crate::clock::NoopObserver));
        let before = global().snapshot();
        {
            let _span = crate::span!("cats.obs.test.noop");
        }
        flush_thread();
        let d = global().snapshot().diff(&before);
        assert!(
            d.stages.get("cats.obs.test.noop").is_none_or(|s| s.count == 0),
            "noop observer must suppress spans"
        );
        set_observer(Arc::new(WallObserver::new()));
    }

    #[test]
    fn events_flow_through_the_stream() {
        let _g = OBS_LOCK.lock().unwrap();
        set_observer(Arc::new(SimObserver::new()));
        take_events();
        {
            let _span = crate::span!("cats.obs.test.event");
        }
        flush_thread();
        let events = take_events();
        assert!(
            events.iter().any(|e| e.name == "cats.obs.test.event"),
            "event recorded: {events:?}"
        );
        set_observer(Arc::new(WallObserver::new()));
    }
}
