//! Lock-free-ish metrics: named counters, gauges and fixed-bucket
//! histograms backed by atomics.
//!
//! Handle lookup (`registry.counter("name")`) takes a mutex; recording
//! through a handle is atomics only, so `cats-par` worker threads cache
//! a handle once and record without locks. Names follow the
//! `cats.<crate>.<stage>.<name>` scheme documented in DESIGN.md §8.
//!
//! [`Registry::snapshot`] captures a consistent-enough point-in-time
//! copy of every metric; [`Snapshot::diff`] subtracts an earlier
//! snapshot, which is how per-run [`crate::RunProfile`]s are carved out
//! of the process-global, monotonically growing registry.

use crate::span::StageStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram: `bounds` are ascending bucket upper bounds
/// plus one implicit overflow bucket. Recording is a binary search and
/// two relaxed atomic adds; percentiles are estimated by linear
/// interpolation inside the winning bucket.
///
/// Non-finite samples are dropped, and quantiles of an empty histogram
/// are `None` — never a panic (see the `empty_and_nan` tests).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Builds a histogram from the given bucket upper bounds.
    /// Non-finite bounds are dropped; duplicates are merged.
    pub fn new(bounds: &[f64]) -> Self {
        let mut b: Vec<f64> = bounds.iter().copied().filter(|x| x.is_finite()).collect();
        b.sort_by(f64::total_cmp);
        b.dedup();
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: b,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Default duration buckets: powers of two from 1 µs to ~1.2 hours.
    pub fn exponential_micros() -> Self {
        let bounds: Vec<f64> = (0..32).map(|i| (1u64 << i) as f64).collect();
        Self::new(&bounds)
    }

    /// Records one sample. Non-finite samples (NaN, ±inf) are ignored.
    pub fn record(&self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|b| *b < x);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + x).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`, clamped). `None` when
    /// the histogram is empty or `q` is NaN.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Plain-data copy of a [`Histogram`]; supports exact bucket-wise
/// subtraction so per-run percentiles can be computed from deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    pub bounds: Vec<f64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl HistSnapshot {
    /// Empty snapshot with the default duration buckets.
    pub fn empty() -> Self {
        Histogram::exponential_micros().snapshot()
    }

    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= rank {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow bucket: clamp to the last finite bound.
                    self.bounds.last().copied().unwrap_or(0.0)
                };
                let frac = (rank - (seen - c)) as f64 / c as f64;
                return Some(lo + (hi - lo).max(0.0) * frac);
            }
        }
        None
    }

    /// Bucket-wise `self - earlier` (saturating). Bounds must match;
    /// mismatched layouts fall back to `self`.
    pub fn diff(&self, earlier: &HistSnapshot) -> HistSnapshot {
        if self.bounds != earlier.bounds || self.buckets.len() != earlier.buckets.len() {
            return self.clone();
        }
        HistSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: (self.sum - earlier.sum).max(0.0),
        }
    }

    /// Bucket-wise `self + other` when the bucket layouts match.
    /// Mismatched layouts cannot be added meaningfully, so the merge
    /// deterministically keeps the "bigger" histogram (by count, then
    /// sum, then layout) — the same winner regardless of argument
    /// order, which keeps [`Snapshot::merge`] commutative.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        if self.bounds == other.bounds && self.buckets.len() == other.buckets.len() {
            return HistSnapshot {
                bounds: self.bounds.clone(),
                buckets: self
                    .buckets
                    .iter()
                    .zip(&other.buckets)
                    .map(|(a, b)| a.saturating_add(*b))
                    .collect(),
                count: self.count.saturating_add(other.count),
                sum: self.sum + other.sum,
            };
        }
        if hist_rank(self, other) == std::cmp::Ordering::Less {
            other.clone()
        } else {
            self.clone()
        }
    }
}

/// Deterministic total order on histogram snapshots used to break ties
/// when layouts are incompatible: count, then sum, then the layout
/// itself so equal-count/sum snapshots still order consistently.
fn hist_rank(a: &HistSnapshot, b: &HistSnapshot) -> std::cmp::Ordering {
    a.count
        .cmp(&b.count)
        .then(a.sum.total_cmp(&b.sum))
        .then(a.bounds.len().cmp(&b.bounds.len()))
        .then_with(|| {
            for (x, y) in a.bounds.iter().zip(&b.bounds) {
                let o = x.total_cmp(y);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            a.buckets.cmp(&b.buckets)
        })
}

/// Plain-data copy of one span name's aggregate stats.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    pub count: u64,
    pub items: u64,
    pub total_micros: u64,
    pub self_micros: u64,
    pub hist: HistSnapshot,
}

impl StageSnapshot {
    fn diff(&self, earlier: &StageSnapshot) -> StageSnapshot {
        StageSnapshot {
            count: self.count.saturating_sub(earlier.count),
            items: self.items.saturating_sub(earlier.items),
            total_micros: self.total_micros.saturating_sub(earlier.total_micros),
            self_micros: self.self_micros.saturating_sub(earlier.self_micros),
            hist: self.hist.diff(&earlier.hist),
        }
    }

    /// `self + other`: spans observed by two processes are disjoint
    /// events, so every aggregate simply adds.
    fn merge(&self, other: &StageSnapshot) -> StageSnapshot {
        StageSnapshot {
            count: self.count.saturating_add(other.count),
            items: self.items.saturating_add(other.items),
            total_micros: self.total_micros.saturating_add(other.total_micros),
            self_micros: self.self_micros.saturating_add(other.self_micros),
            hist: self.hist.merge(&other.hist),
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    hists: BTreeMap<String, Arc<Histogram>>,
    stages: BTreeMap<String, Arc<StageStats>>,
}

/// Named-metric registry. Handle lookup locks; recording does not.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns (registering on first use) a histogram with the default
    /// duration buckets.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.hists
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::exponential_micros()))
            .clone()
    }

    /// Returns (registering on first use) a histogram with caller-chosen
    /// bucket bounds. Bounds are fixed by whichever call registers first.
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.hists.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new(bounds))).clone()
    }

    pub(crate) fn stage(&self, name: &str) -> Arc<StageStats> {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.stages.entry(name.to_string()).or_insert_with(|| Arc::new(StageStats::new())).clone()
    }

    /// Point-in-time copy of every metric, keyed and ordered by name.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = crate::clock::now_micros();
        Snapshot {
            counters: g.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            hists: g.hists.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
            stages: g.stages.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
            taken_at_micros: now,
            gauges_at: g.gauges.keys().map(|k| (k.clone(), now)).collect(),
        }
    }

    /// JSON export of the current state (see [`Snapshot::to_json`]).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Prometheus text export (see [`Snapshot::to_prometheus`]).
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

/// The process-global registry all instrumentation records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand for `global().counter(name)`.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand for `global().gauge(name)`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand for `global().histogram(name)`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Plain-data copy of a whole [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub hists: BTreeMap<String, HistSnapshot>,
    pub stages: BTreeMap<String, StageSnapshot>,
    /// Clock reading (µs) when this snapshot was captured; 0 for
    /// hand-built snapshots.
    pub taken_at_micros: u64,
    /// Per-gauge capture timestamps (µs). [`Registry::snapshot`] stamps
    /// every gauge with the snapshot time; [`Snapshot::merge`] keeps
    /// the later writer per gauge, which is what makes gauge merging
    /// latest-by-timestamp rather than order-of-arguments.
    pub gauges_at: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Value of a counter, defaulting to 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// `self - earlier` for counters, histograms and stages (entries
    /// absent from `earlier` pass through). Gauges are last-write-wins,
    /// so the later value is kept as-is.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
                .collect(),
            gauges: self.gauges.clone(),
            hists: self
                .hists
                .iter()
                .map(|(k, v)| match earlier.hists.get(k) {
                    Some(e) => (k.clone(), v.diff(e)),
                    None => (k.clone(), v.clone()),
                })
                .collect(),
            stages: self
                .stages
                .iter()
                .map(|(k, v)| match earlier.stages.get(k) {
                    Some(e) => (k.clone(), v.diff(e)),
                    None => (k.clone(), v.clone()),
                })
                .collect(),
            taken_at_micros: self.taken_at_micros,
            gauges_at: self.gauges_at.clone(),
        }
    }

    /// Union of two registries, for aggregating shard processes at the
    /// router:
    ///
    /// * counters sum (saturating) — events happened in both places;
    /// * gauges are latest-by-timestamp per key ([`Snapshot::gauges_at`],
    ///   falling back to the snapshot-level [`Snapshot::taken_at_micros`]),
    ///   tie-broken on the value bits so the result never depends on
    ///   argument order;
    /// * histograms add bucket-wise when layouts match
    ///   ([`HistSnapshot::merge`]);
    /// * stages add all aggregates.
    ///
    /// Merge is commutative and associative, so a router can fold any
    /// number of shard snapshots in any order and land on one result.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut counters = self.counters.clone();
        for (k, v) in &other.counters {
            let e = counters.entry(k.clone()).or_insert(0);
            *e = e.saturating_add(*v);
        }

        let mut gauges = BTreeMap::new();
        let mut gauges_at = BTreeMap::new();
        let keys: std::collections::BTreeSet<&String> =
            self.gauges.keys().chain(other.gauges.keys()).collect();
        for k in keys {
            let a = self.gauges.get(k).map(|v| (self.gauge_stamp(k), *v));
            let b = other.gauges.get(k).map(|v| (other.gauge_stamp(k), *v));
            let (ts, v) = match (a, b) {
                (Some((ta, va)), Some((tb, vb))) => {
                    // Later timestamp wins; equal stamps fall back to
                    // the larger value bits — arbitrary but symmetric.
                    if (tb, vb.to_bits()) > (ta, va.to_bits()) {
                        (tb, vb)
                    } else {
                        (ta, va)
                    }
                }
                (Some(x), None) | (None, Some(x)) => x,
                (None, None) => unreachable!("key came from one of the maps"),
            };
            gauges.insert(k.clone(), v);
            gauges_at.insert(k.clone(), ts);
        }

        let mut hists = self.hists.clone();
        for (k, v) in &other.hists {
            match hists.entry(k.clone()) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let merged = e.get().merge(v);
                    e.insert(merged);
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v.clone());
                }
            }
        }

        let mut stages = self.stages.clone();
        for (k, v) in &other.stages {
            match stages.entry(k.clone()) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let merged = e.get().merge(v);
                    e.insert(merged);
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v.clone());
                }
            }
        }

        Snapshot {
            counters,
            gauges,
            hists,
            stages,
            taken_at_micros: self.taken_at_micros.max(other.taken_at_micros),
            gauges_at,
        }
    }

    /// Capture time of one gauge: its per-key stamp when present, else
    /// the snapshot-level stamp (hand-built snapshots).
    fn gauge_stamp(&self, name: &str) -> u64 {
        self.gauges_at.get(name).copied().unwrap_or(self.taken_at_micros)
    }

    /// Hand-rolled JSON object (the obs crate is dependency-free):
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...},
    /// "stages": {...}}` with keys in sorted order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_map(&mut out, self.counters.iter().map(|(k, v)| (k, v.to_string())));
        out.push_str("},\n  \"gauges\": {");
        push_map(&mut out, self.gauges.iter().map(|(k, v)| (k, fmt_f64(*v))));
        out.push_str("},\n  \"histograms\": {");
        push_map(
            &mut out,
            self.hists.iter().map(|(k, h)| {
                (
                    k,
                    format!(
                        "{{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                        h.count,
                        fmt_f64(h.sum),
                        fmt_f64(h.quantile(0.50).unwrap_or(0.0)),
                        fmt_f64(h.quantile(0.95).unwrap_or(0.0)),
                        fmt_f64(h.quantile(0.99).unwrap_or(0.0)),
                    ),
                )
            }),
        );
        out.push_str("},\n  \"stages\": {");
        push_map(
            &mut out,
            self.stages.iter().map(|(k, s)| {
                (
                    k,
                    format!(
                        "{{\"count\": {}, \"items\": {}, \"total_micros\": {}, \
                         \"self_micros\": {}, \"p50_micros\": {}, \"p95_micros\": {}, \
                         \"p99_micros\": {}}}",
                        s.count,
                        s.items,
                        s.total_micros,
                        s.self_micros,
                        fmt_f64(s.hist.quantile(0.50).unwrap_or(0.0)),
                        fmt_f64(s.hist.quantile(0.95).unwrap_or(0.0)),
                        fmt_f64(s.hist.quantile(0.99).unwrap_or(0.0)),
                    ),
                )
            }),
        );
        out.push_str("}\n}\n");
        out
    }

    /// Prometheus text format: every line is `name{labels} value` (or
    /// `name value`), names sanitized to `[a-zA-Z0-9_:]`. Histograms and
    /// stages export `_count`/`_sum`-style series plus
    /// `{quantile="..."}` summary lines.
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_labeled(&[])
    }

    /// [`Snapshot::to_prometheus`] with a fixed label set attached to
    /// every series — e.g. `&[("shard", "2")]` so a router can expose
    /// each shard's registry next to the merged cluster view without
    /// name collisions.
    pub fn to_prometheus_labeled(&self, labels: &[(&str, &str)]) -> String {
        let base = prom_labels(labels);
        let plain = if base.is_empty() { String::new() } else { format!("{{{}}}", base) };
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{}{plain} {v}\n", prom_name(k)));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{}{plain} {}\n", prom_name(k), fmt_f64(*v)));
        }
        for (k, h) in &self.hists {
            prom_summary(&mut out, &prom_name(k), &base, h);
        }
        for (k, s) in &self.stages {
            let name = prom_name(&format!("{k}.micros"));
            prom_summary(&mut out, &name, &base, &s.hist);
            out.push_str(&format!(
                "{}{plain} {}\n",
                prom_name(&format!("{k}.self_micros")),
                s.self_micros
            ));
            if s.items > 0 {
                out.push_str(&format!("{}{plain} {}\n", prom_name(&format!("{k}.items")), s.items));
            }
        }
        out
    }
}

/// Renders a label set as the inside of a `{...}` block (no braces),
/// values escaped per the Prometheus exposition rules.
fn prom_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&prom_name(k));
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

fn prom_summary(out: &mut String, name: &str, base_labels: &str, h: &HistSnapshot) {
    let plain = if base_labels.is_empty() { String::new() } else { format!("{{{base_labels}}}") };
    out.push_str(&format!("{name}_count{plain} {}\n", h.count));
    out.push_str(&format!("{name}_sum{plain} {}\n", fmt_f64(h.sum)));
    for (label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
        let qlabel = if base_labels.is_empty() {
            format!("quantile=\"{label}\"")
        } else {
            format!("{base_labels},quantile=\"{label}\"")
        };
        out.push_str(&format!("{name}{{{qlabel}}} {}\n", fmt_f64(h.quantile(q).unwrap_or(0.0))));
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {v}", json_escape(k)));
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic, JSON-compatible float formatting (shortest
/// round-trip; NaN/inf mapped to 0 for JSON safety).
pub(crate) fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    v.to_string()
}

/// Sanitizes a dotted metric name for the Prometheus exposition format.
pub(crate) fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("cats.test.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("cats.test.count").get(), 5, "same handle by name");
        let g = r.gauge("cats.test.gauge");
        g.set(2.5);
        assert_eq!(r.gauge("cats.test.gauge").get(), 2.5);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::exponential_micros();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((256.0..=1024.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!(p99 <= 1024.0, "p99 {p99}");
    }

    #[test]
    fn empty_and_nan_histogram_is_safe() {
        let h = Histogram::exponential_micros();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0, "non-finite samples dropped");
        assert_eq!(h.quantile(0.99), None);
        h.record(3.0);
        assert_eq!(h.quantile(f64::NAN), None, "NaN quantile rejected");
        assert!(h.quantile(-1.0).unwrap() <= h.quantile(2.0).unwrap(), "q clamped");
    }

    #[test]
    fn zero_bucket_histogram_is_safe() {
        let h = Histogram::new(&[]);
        h.record(7.0);
        assert_eq!(h.count(), 1, "overflow bucket still counts");
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_buckets() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.histogram("h").record(5.0);
        let before = r.snapshot();
        r.counter("a").add(2);
        r.histogram("h").record(9.0);
        r.histogram("h").record(9.0);
        let delta = r.snapshot().diff(&before);
        assert_eq!(delta.counter("a"), 2);
        let h = &delta.hists["h"];
        assert_eq!(h.count, 2);
        assert!((h.sum - 18.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_lines_parse_as_name_value() {
        let r = Registry::new();
        r.counter("cats.demo.fetch.pages").add(2);
        r.gauge("cats.demo.loss").set(0.25);
        r.histogram("cats.demo.latency").record(10.0);
        for line in r.to_prometheus().lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(parts.len(), 2, "line {line:?}");
            let name = parts[0];
            let metric = name.split('{').next().unwrap();
            assert!(!metric.is_empty());
            for (i, c) in metric.chars().enumerate() {
                let ok = c.is_ascii_alphabetic()
                    || c == '_'
                    || c == ':'
                    || (i > 0 && c.is_ascii_digit());
                assert!(ok, "bad char {c:?} in {name:?}");
            }
            if let Some(rest) = name.strip_prefix(metric) {
                if !rest.is_empty() {
                    assert!(rest.starts_with('{') && rest.ends_with('}'), "labels {rest:?}");
                }
            }
            parts[1].parse::<f64>().expect("value parses");
        }
    }

    #[test]
    fn json_export_is_well_formed_enough() {
        let r = Registry::new();
        r.counter("a\"b").inc();
        let json = r.to_json();
        assert!(json.contains("a\\\"b"), "escaped: {json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn merge_sums_overlapping_counters() {
        let a = Registry::new();
        a.counter("shared").add(3);
        a.counter("only_a").add(1);
        let b = Registry::new();
        b.counter("shared").add(4);
        b.counter("only_b").add(9);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.counter("shared"), 7, "overlapping names sum");
        assert_eq!(m.counter("only_a"), 1, "disjoint names pass through");
        assert_eq!(m.counter("only_b"), 9);
    }

    #[test]
    fn merge_gauges_take_latest_by_timestamp() {
        let mut a = Snapshot::default();
        a.gauges.insert("depth".into(), 5.0);
        a.gauges_at.insert("depth".into(), 100);
        let mut b = Snapshot::default();
        b.gauges.insert("depth".into(), 2.0);
        b.gauges_at.insert("depth".into(), 200);
        // b wrote later, so its (smaller) value wins — in both orders.
        assert_eq!(a.merge(&b).gauges["depth"], 2.0);
        assert_eq!(b.merge(&a).gauges["depth"], 2.0);
        assert_eq!(a.merge(&b).gauges_at["depth"], 200, "winning stamp kept");
        // Registry snapshots stamp gauges, so real merges get this too.
        let r = Registry::new();
        r.gauge("g").set(1.0);
        let s = r.snapshot();
        assert_eq!(s.gauges_at["g"], s.taken_at_micros);
    }

    #[test]
    fn merge_hists_add_bucket_wise() {
        let a = Registry::new();
        for v in [1.0, 3.0, 700.0] {
            a.histogram("lat").record(v);
        }
        let b = Registry::new();
        for v in [2.0, 900.0] {
            b.histogram("lat").record(v);
        }
        let m = a.snapshot().merge(&b.snapshot());
        let h = &m.hists["lat"];
        assert_eq!(h.count, 5);
        assert!((h.sum - 1606.0).abs() < 1e-9);
        let ha = a.snapshot().hists["lat"].clone();
        let hb = b.snapshot().hists["lat"].clone();
        for (i, &c) in h.buckets.iter().enumerate() {
            assert_eq!(c, ha.buckets[i] + hb.buckets[i], "bucket {i} adds");
        }
    }

    #[test]
    fn merge_mismatched_hist_layouts_pick_one_side_deterministically() {
        let a = Histogram::new(&[1.0, 2.0]);
        a.record(1.5);
        let b = Histogram::new(&[10.0, 20.0]);
        b.record(15.0);
        b.record(16.0);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let ab = sa.merge(&sb);
        let ba = sb.merge(&sa);
        assert_eq!(ab, ba, "winner independent of argument order");
        assert_eq!(ab.count, 2, "bigger histogram kept whole");
    }

    /// Seeded SplitMix64 — enough randomness for property-style tests
    /// without a dependency.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Random snapshot: overlapping key space ("m0".."m5"), integer
    /// gauge values (exact under f64 addition is irrelevant for gauges,
    /// but integer histogram samples keep `sum` exactly associative),
    /// explicit per-gauge stamps.
    fn random_snapshot(seed: u64) -> Snapshot {
        let mut s = seed;
        let mut snap =
            Snapshot { taken_at_micros: splitmix(&mut s) % 1_000, ..Snapshot::default() };
        for i in 0..6 {
            let key = format!("m{i}");
            if splitmix(&mut s) % 4 != 0 {
                snap.counters.insert(key.clone(), splitmix(&mut s) % 1_000);
            }
            if splitmix(&mut s) % 4 != 0 {
                snap.gauges.insert(key.clone(), (splitmix(&mut s) % 100) as f64);
                snap.gauges_at.insert(key.clone(), splitmix(&mut s) % 1_000);
            }
            if splitmix(&mut s) % 4 != 0 {
                let h = Histogram::exponential_micros();
                for _ in 0..(splitmix(&mut s) % 20) {
                    h.record((splitmix(&mut s) % 100_000) as f64);
                }
                snap.hists.insert(key.clone(), h.snapshot());
            }
            if splitmix(&mut s) % 4 != 0 {
                let h = Histogram::exponential_micros();
                for _ in 0..(splitmix(&mut s) % 10) {
                    h.record((splitmix(&mut s) % 10_000) as f64);
                }
                snap.stages.insert(
                    key,
                    StageSnapshot {
                        count: splitmix(&mut s) % 50,
                        items: splitmix(&mut s) % 500,
                        total_micros: splitmix(&mut s) % 10_000,
                        self_micros: splitmix(&mut s) % 10_000,
                        hist: h.snapshot(),
                    },
                );
            }
        }
        snap
    }

    #[test]
    fn merge_is_commutative_and_associative_on_seeded_registries() {
        for seed in 0..32u64 {
            let a = random_snapshot(seed.wrapping_mul(3).wrapping_add(1));
            let b = random_snapshot(seed.wrapping_mul(5).wrapping_add(2));
            let c = random_snapshot(seed.wrapping_mul(7).wrapping_add(3));
            assert_eq!(a.merge(&b), b.merge(&a), "commutative (seed {seed})");
            assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)), "associative (seed {seed})");
        }
    }
}
