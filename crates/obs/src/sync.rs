//! Poison-recovering lock acquisition.
//!
//! A poisoned `Mutex` means some thread panicked while holding it — not
//! that the protected data is unusable. For every lock in this workspace
//! the guarded state is either append-only (metric maps, event buffers)
//! or replaced wholesale under the lock (the serving model slot), so the
//! correct reaction to poison is to *recover and continue*: propagating
//! the panic would cascade one worker's failure into every thread that
//! touches the same lock, which is exactly what the supervision layer
//! (DESIGN.md §10) exists to prevent.
//!
//! [`lock_recover`] is the one idiom: take the lock, and on poison count
//! the observation under `cats.obs.lock.poison_recovered` and proceed
//! with the inner guard. The registry's own internals use the raw
//! `unwrap_or_else(PoisonError::into_inner)` form instead, because
//! incrementing a counter re-enters the registry.

use std::sync::{Mutex, MutexGuard};

/// Acquires `m`, recovering from poison instead of panicking. `name`
/// identifies the lock in the recovery log line; each observed poisoning
/// also increments the `cats.obs.lock.poison_recovered` counter.
pub fn lock_recover<'a, T>(m: &'a Mutex<T>, name: &str) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| {
        crate::counter("cats.obs.lock.poison_recovered").inc();
        eprintln!("cats-obs: recovered poisoned lock {name}");
        poisoned.into_inner()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn poisoned_lock_recovers_with_inner_state() {
        let m = Arc::new(Mutex::new(41));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            *g = 42;
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned(), "precondition: the lock is poisoned");
        let before = crate::counter("cats.obs.lock.poison_recovered").get();
        let g = lock_recover(&m, "test.lock");
        assert_eq!(*g, 42, "state written before the panic is preserved");
        drop(g);
        assert!(crate::counter("cats.obs.lock.poison_recovered").get() > before);
        // Subsequent acquisitions keep working.
        assert_eq!(*lock_recover(&m, "test.lock"), 42);
    }
}
