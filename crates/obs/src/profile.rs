//! Per-run profiles: a [`StageTimer`] brackets a unit of work (one CLI
//! invocation, one bench sweep row) and rolls every span and counter
//! recorded in between into a [`RunProfile`] — the machine-readable
//! artifact behind `cats-cli --metrics-out` and `BENCH_*.json`.
//!
//! The registry is process-global and monotonic; the timer snapshots it
//! at start and diffs at finish, so concurrent earlier runs don't leak
//! into the profile as long as runs don't overlap in time.

use crate::metrics::{fmt_f64, global, json_escape, Snapshot};
use crate::{clock, span};

/// Aggregate of one span name inside a run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Sum of `items` payloads (0 when the site passes none).
    pub items: u64,
    /// Total wall time across occurrences.
    pub total_micros: u64,
    /// Wall time minus nested child spans.
    pub self_micros: u64,
    pub p50_micros: f64,
    pub p95_micros: f64,
    pub p99_micros: f64,
}

/// Everything observed during one timed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunProfile {
    pub label: String,
    /// Wall time between start and finish — the one field that is never
    /// deterministic, hence [`RunProfile::to_json_stripped`].
    pub wall_micros: u64,
    /// Stages sorted by name.
    pub stages: Vec<StageProfile>,
    /// Counter deltas sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values at finish, sorted by name.
    pub gauges: Vec<(String, f64)>,
}

impl RunProfile {
    /// Builds a profile from a registry snapshot diff. Stages with no
    /// occurrences inside the run are omitted.
    pub fn from_diff(label: &str, wall_micros: u64, diff: &Snapshot) -> Self {
        let stages = diff
            .stages
            .iter()
            .filter(|(_, s)| s.count > 0)
            .map(|(name, s)| StageProfile {
                name: name.clone(),
                count: s.count,
                items: s.items,
                total_micros: s.total_micros,
                self_micros: s.self_micros,
                p50_micros: s.hist.quantile(0.50).unwrap_or(0.0),
                p95_micros: s.hist.quantile(0.95).unwrap_or(0.0),
                p99_micros: s.hist.quantile(0.99).unwrap_or(0.0),
            })
            .collect();
        let counters = diff.counters.iter().filter(|(_, v)| **v > 0).map(|(k, v)| (k.clone(), *v));
        let gauges = diff.gauges.iter().map(|(k, v)| (k.clone(), *v));
        RunProfile {
            label: label.to_string(),
            wall_micros,
            stages,
            counters: counters.collect(),
            gauges: gauges.collect(),
        }
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Counter delta by name, defaulting to 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    }

    /// Hand-rolled JSON document (schema `cats.run_profile.v1`).
    pub fn to_json(&self) -> String {
        self.json_impl(true)
    }

    /// JSON with the non-deterministic `wall_micros` field stripped;
    /// two identical deterministic runs compare byte-equal on this.
    pub fn to_json_stripped(&self) -> String {
        self.json_impl(false)
    }

    fn json_impl(&self, with_wall: bool) -> String {
        let mut out = String::from("{\n  \"schema\": \"cats.run_profile.v1\",\n");
        out.push_str(&format!("  \"label\": \"{}\",\n", json_escape(&self.label)));
        if with_wall {
            out.push_str(&format!("  \"wall_micros\": {},\n", self.wall_micros));
        }
        out.push_str("  \"stages\": [");
        let mut first = true;
        for s in &self.stages {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"items\": {}, \
                 \"total_micros\": {}, \"self_micros\": {}, \"p50_micros\": {}, \
                 \"p95_micros\": {}, \"p99_micros\": {}}}",
                json_escape(&s.name),
                s.count,
                s.items,
                s.total_micros,
                s.self_micros,
                fmt_f64(s.p50_micros),
                fmt_f64(s.p95_micros),
                fmt_f64(s.p99_micros),
            ));
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"counters\": [");
        first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {{\"name\": \"{}\", \"value\": {v}}}", json_escape(k)));
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"gauges\": [");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"value\": {}}}",
                json_escape(k),
                fmt_f64(*v)
            ));
        }
        out.push_str(if first { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }

    /// Human-readable rendering (the `cats-cli metrics` view).
    pub fn render(&self) -> String {
        let mut out =
            format!("RunProfile: {}  (wall {:.3}s)\n", self.label, self.wall_micros as f64 / 1e6);
        out.push_str(&format!(
            "{:<44} {:>8} {:>10} {:>11} {:>11} {:>9} {:>9}\n",
            "stage", "count", "items", "total(ms)", "self(ms)", "p50(us)", "p95(us)"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<44} {:>8} {:>10} {:>11.3} {:>11.3} {:>9.1} {:>9.1}\n",
                s.name,
                s.count,
                s.items,
                s.total_micros as f64 / 1e3,
                s.self_micros as f64 / 1e3,
                s.p50_micros,
                s.p95_micros,
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k} {}\n", fmt_f64(*v)));
            }
        }
        out
    }
}

/// Brackets one run: snapshots the global registry at start, diffs at
/// finish, and returns the per-run [`RunProfile`].
pub struct StageTimer {
    label: String,
    start_micros: u64,
    base: Snapshot,
}

impl StageTimer {
    pub fn start(label: &str) -> Self {
        Self {
            label: label.to_string(),
            start_micros: clock::now_micros(),
            base: global().snapshot(),
        }
    }

    pub fn finish(self) -> RunProfile {
        span::flush_thread();
        let wall = clock::now_micros().saturating_sub(self.start_micros);
        let diff = global().snapshot().diff(&self.base);
        RunProfile::from_diff(&self.label, wall, &diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{set_observer, SimObserver, WallObserver};
    use std::sync::Arc;

    #[test]
    fn timer_profiles_only_its_own_window() {
        let _g = crate::span::tests::OBS_LOCK.lock().unwrap();
        let sim = Arc::new(SimObserver::new());
        set_observer(sim.clone());
        crate::counter("cats.obs.test.before").add(9);

        let timer = StageTimer::start("unit");
        crate::counter("cats.obs.test.during").add(2);
        {
            let _span = crate::span!("cats.obs.test.stage", { 4usize });
            sim.advance_micros(100);
        }
        let profile = timer.finish();

        assert_eq!(profile.counter("cats.obs.test.during"), 2);
        assert_eq!(profile.counter("cats.obs.test.before"), 0, "pre-run counts excluded");
        let stage = profile.stage("cats.obs.test.stage").expect("stage present");
        assert_eq!(stage.count, 1);
        assert_eq!(stage.items, 4);
        assert_eq!(stage.total_micros, 100);
        assert!(stage.p50_micros > 0.0);
        set_observer(Arc::new(WallObserver::new()));
    }

    #[test]
    fn stripped_json_hides_wall_clock_only() {
        let profile = RunProfile {
            label: "x".into(),
            wall_micros: 123,
            stages: vec![],
            counters: vec![("c".into(), 1)],
            gauges: vec![("g".into(), 0.5)],
        };
        let full = profile.to_json();
        let stripped = profile.to_json_stripped();
        assert!(full.contains("\"wall_micros\": 123"));
        assert!(!stripped.contains("wall_micros"));
        assert_eq!(full.replace("  \"wall_micros\": 123,\n", ""), stripped);
    }

    #[test]
    fn render_mentions_every_stage_and_counter() {
        let profile = RunProfile {
            label: "demo".into(),
            wall_micros: 2_000_000,
            stages: vec![StageProfile {
                name: "cats.x.y".into(),
                count: 3,
                items: 0,
                total_micros: 1500,
                self_micros: 1200,
                p50_micros: 400.0,
                p95_micros: 700.0,
                p99_micros: 900.0,
            }],
            counters: vec![("cats.x.events".into(), 7)],
            gauges: vec![],
        };
        let text = profile.render();
        assert!(text.contains("cats.x.y"));
        assert!(text.contains("cats.x.events 7"));
        assert!(text.contains("wall 2.000s"));
    }
}
