//! Streaming distribution-drift monitor (DESIGN.md §15).
//!
//! Compares the *live* feature distributions the deployed detector is
//! scoring against a *training-time reference* snapshot, per feature,
//! with two complementary statistics:
//!
//! * **PSI** (population stability index) over reference-quantile bins —
//!   sensitive to mass shifting between regions of the distribution;
//! * **two-sample KS** — the max ECDF gap, sensitive to location and
//!   shape changes PSI's coarse bins can smear out.
//!
//! Both are NaN-proof by construction: PSI floors empty and zero-mass
//! bins at a small epsilon before taking the log ratio, and KS over
//! constant (zero-variance) samples degenerates to an exact ECDF
//! comparison that is 0.0 for identical constants and 1.0 for disjoint
//! ones — never NaN, never infinite.
//!
//! On top of the statistics sits a [`DriftMonitor`]: a bounded sliding
//! window of live rows, periodic evaluation, per-feature
//! `cats.drift.psi.<feature>` / `cats.drift.ks.<feature>` gauges, and a
//! [`DriftVerdict`] state machine with hysteresis (consecutive
//! breaching evaluations to escalate, consecutive clean ones to
//! de-escalate) so a single noisy window cannot flap the serving layer
//! in and out of degraded mode.
//!
//! This crate sits below `cats-core`, so the monitor works on plain
//! `&[f64]` rows plus caller-supplied feature names; the typed glue
//! (building a reference from `FeatureVector`s, persisting it in the
//! IO2 model artifact) lives in `cats-core`.

use crate::metrics::gauge;
use crate::sync::lock_recover;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Mass floor for PSI bins: an empty bin contributes a large-but-finite
/// term instead of an infinite (or NaN) log ratio.
const PSI_EPSILON: f64 = 1e-4;

/// Population stability index between two *sample counts over the same
/// bins*. `expected` is the reference binning, `actual` the live one.
/// Counts are normalized to mass internally; zero-mass bins (on either
/// side) are floored at a small epsilon so the result is always finite.
/// Empty inputs (either side all-zero, or zero bins) return 0.0.
pub fn psi(expected: &[f64], actual: &[f64]) -> f64 {
    if expected.len() != actual.len() || expected.is_empty() {
        return 0.0;
    }
    let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
    let e_total: f64 = expected.iter().copied().map(clean).sum();
    let a_total: f64 = actual.iter().copied().map(clean).sum();
    if e_total <= 0.0 || a_total <= 0.0 {
        return 0.0;
    }
    let mut out = 0.0;
    for (&e, &a) in expected.iter().zip(actual) {
        let pe = (clean(e) / e_total).max(PSI_EPSILON);
        let pa = (clean(a) / a_total).max(PSI_EPSILON);
        out += (pa - pe) * (pa / pe).ln();
    }
    out
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum gap between the
/// empirical CDFs of `a` and `b`. Non-finite samples are dropped; an
/// empty side returns 0.0 (no evidence of drift). Constant
/// distributions are handled exactly: identical constants give 0.0,
/// disjoint constants give 1.0 — always finite.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    let mut xs: Vec<f64> = a.iter().copied().filter(|x| x.is_finite()).collect();
    let mut ys: Vec<f64> = b.iter().copied().filter(|x| x.is_finite()).collect();
    if xs.is_empty() || ys.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    let (nx, ny) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xs.len() && j < ys.len() {
        let x = xs[i];
        let y = ys[j];
        let t = x.min(y);
        while i < xs.len() && xs[i] <= t {
            i += 1;
        }
        while j < ys.len() && ys[j] <= t {
            j += 1;
        }
        d = d.max((i as f64 / nx - j as f64 / ny).abs());
    }
    // Exhausting one side pins its ECDF at 1.0; the final gap is
    // 1 - F_other(t), maximal at the first remaining point.
    if i < xs.len() {
        d = d.max(1.0 - j as f64 / ny).max(1.0 - i as f64 / nx);
    }
    if j < ys.len() {
        d = d.max(1.0 - i as f64 / nx).max(1.0 - j as f64 / ny);
    }
    d.clamp(0.0, 1.0)
}

/// Bin edges from a sorted reference sample: `n_bins − 1` interior
/// quantile cuts, deduplicated. A constant reference degenerates to a
/// single bin (no edges), which PSI then scores as mass-in-one-bin vs
/// mass-in-one-bin — finite by construction.
pub fn quantile_edges(sorted: &[f64], n_bins: usize) -> Vec<f64> {
    let mut edges = Vec::new();
    if sorted.is_empty() || n_bins < 2 {
        return edges;
    }
    let min = sorted[0];
    for k in 1..n_bins {
        let q = k as f64 / n_bins as f64;
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        let e = sorted[idx];
        // An edge at (or below) the minimum would create a permanently
        // empty left bin; skipping it makes a constant reference
        // degenerate to one bin, no edges.
        if e.is_finite() && e > min && edges.last().is_none_or(|&last| e > last) {
            edges.push(e);
        }
    }
    edges
}

/// Histogram of `sample` over `edges` (bins = `edges.len() + 1`;
/// value ≤ edge falls left). Non-finite samples are dropped.
pub fn bin_counts(sample: &[f64], edges: &[f64]) -> Vec<f64> {
    let mut counts = vec![0.0; edges.len() + 1];
    for &x in sample {
        if !x.is_finite() {
            continue;
        }
        let bin = edges.iter().position(|&e| x <= e).unwrap_or(edges.len());
        counts[bin] += 1.0;
    }
    counts
}

/// One feature's training-time reference: its name and a sorted,
/// possibly down-sampled sample of training values.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureReference {
    /// Feature name (becomes the gauge suffix).
    pub name: String,
    /// Sorted reference sample (ascending, finite).
    pub sample: Vec<f64>,
}

impl FeatureReference {
    /// A reference from an unsorted sample; non-finite values dropped.
    pub fn new(name: impl Into<String>, mut sample: Vec<f64>) -> Self {
        sample.retain(|x| x.is_finite());
        sample.sort_by(f64::total_cmp);
        Self { name: name.into(), sample }
    }
}

/// Drift-monitor thresholds and window geometry.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// PSI bins per feature (reference quantile cuts).
    pub n_bins: usize,
    /// Live rows kept per feature (ring buffer).
    pub window: usize,
    /// Minimum live rows before any evaluation fires.
    pub min_window: usize,
    /// Evaluate every this many observed rows.
    pub eval_every: usize,
    /// PSI above this on any feature is a Warning-level breach.
    pub psi_warning: f64,
    /// PSI above this on any feature is a Critical-level breach.
    pub psi_critical: f64,
    /// KS above this on any feature is a Warning-level breach.
    pub ks_warning: f64,
    /// KS above this on any feature is a Critical-level breach.
    pub ks_critical: f64,
    /// Consecutive breaching evaluations required to escalate.
    pub escalate_after: usize,
    /// Consecutive clean evaluations required to de-escalate one level.
    pub clear_after: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            n_bins: 10,
            window: 512,
            min_window: 64,
            eval_every: 64,
            psi_warning: 0.2,
            psi_critical: 0.5,
            ks_warning: 0.15,
            ks_critical: 0.35,
            escalate_after: 2,
            clear_after: 3,
        }
    }
}

/// The drift state machine's output, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftVerdict {
    /// Live distributions match the reference.
    Stable,
    /// At least one feature breaches the warning thresholds.
    Warning,
    /// At least one feature breaches the critical thresholds — the
    /// serving layer flags degraded mode and retraining may trigger.
    Critical,
}

impl DriftVerdict {
    /// Stable name, as surfaced on `/healthz`.
    pub fn as_str(self) -> &'static str {
        match self {
            DriftVerdict::Stable => "stable",
            DriftVerdict::Warning => "warning",
            DriftVerdict::Critical => "critical",
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            DriftVerdict::Stable => 0,
            DriftVerdict::Warning => 1,
            DriftVerdict::Critical => 2,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => DriftVerdict::Stable,
            1 => DriftVerdict::Warning,
            _ => DriftVerdict::Critical,
        }
    }
}

/// One feature's latest statistics, from [`DriftMonitor::stats`].
#[derive(Debug, Clone)]
pub struct FeatureDrift {
    /// Feature name.
    pub name: String,
    /// Latest PSI vs the reference binning.
    pub psi: f64,
    /// Latest two-sample KS vs the reference sample.
    pub ks: f64,
}

struct FeatureState {
    name: String,
    reference: Vec<f64>,
    ref_counts: Vec<f64>,
    edges: Vec<f64>,
    live: Vec<f64>,
    head: usize,
    psi: f64,
    ks: f64,
}

impl FeatureState {
    fn new(r: FeatureReference, n_bins: usize) -> Self {
        let edges = quantile_edges(&r.sample, n_bins);
        let ref_counts = bin_counts(&r.sample, &edges);
        Self {
            name: r.name,
            reference: r.sample,
            ref_counts,
            edges,
            live: Vec::new(),
            head: 0,
            psi: 0.0,
            ks: 0.0,
        }
    }
}

struct MonitorState {
    features: Vec<FeatureState>,
    rows_seen: usize,
    rows_since_eval: usize,
    evaluations: u64,
    breach_streak: usize,
    clean_streak: usize,
}

/// Streaming drift monitor: feed it live feature rows, read back a
/// hysteresis-smoothed [`DriftVerdict`]. Thread-safe; the verdict read
/// ([`DriftMonitor::verdict`]) is a single atomic load so the serving
/// hot path can poll it per request.
pub struct DriftMonitor {
    config: DriftConfig,
    state: Mutex<MonitorState>,
    verdict: AtomicU8,
}

impl DriftMonitor {
    /// A monitor against the given per-feature references.
    pub fn new(references: Vec<FeatureReference>, config: DriftConfig) -> Self {
        let features =
            references.into_iter().map(|r| FeatureState::new(r, config.n_bins)).collect();
        Self {
            config,
            state: Mutex::new(MonitorState {
                features,
                rows_seen: 0,
                rows_since_eval: 0,
                evaluations: 0,
                breach_streak: 0,
                clean_streak: 0,
            }),
            verdict: AtomicU8::new(DriftVerdict::Stable.as_u8()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Observes one live feature row (`row.len()` must match the
    /// reference count; extra/missing trailing features are ignored —
    /// references define what is monitored). Every
    /// `config.eval_every` rows an evaluation runs inline.
    pub fn observe_row(&self, row: &[f64]) {
        let mut s = lock_recover(&self.state, "cats.drift.state");
        for (f, &x) in s.features.iter_mut().zip(row) {
            if !x.is_finite() {
                continue;
            }
            if f.live.len() < self.config.window {
                f.live.push(x);
            } else {
                let head = f.head;
                f.live[head] = x;
                f.head = (head + 1) % self.config.window;
            }
        }
        s.rows_seen += 1;
        s.rows_since_eval += 1;
        if s.rows_since_eval >= self.config.eval_every {
            s.rows_since_eval = 0;
            self.evaluate_locked(&mut s);
        }
    }

    /// Forces an evaluation now (e.g. at the end of an epoch), returning
    /// the post-evaluation verdict.
    pub fn evaluate(&self) -> DriftVerdict {
        let mut s = lock_recover(&self.state, "cats.drift.state");
        s.rows_since_eval = 0;
        self.evaluate_locked(&mut s);
        self.verdict()
    }

    fn evaluate_locked(&self, s: &mut MonitorState) {
        let mut raw = DriftVerdict::Stable;
        let window_full = s.features.iter().all(|f| f.live.len() >= self.config.min_window);
        if window_full {
            s.evaluations += 1;
            for f in s.features.iter_mut() {
                let live_counts = bin_counts(&f.live, &f.edges);
                f.psi = psi(&f.ref_counts, &live_counts);
                f.ks = ks_statistic(&f.reference, &f.live);
                gauge(&format!("cats.drift.psi.{}", f.name)).set(f.psi);
                gauge(&format!("cats.drift.ks.{}", f.name)).set(f.ks);
                let level = if f.psi >= self.config.psi_critical || f.ks >= self.config.ks_critical
                {
                    DriftVerdict::Critical
                } else if f.psi >= self.config.psi_warning || f.ks >= self.config.ks_warning {
                    DriftVerdict::Warning
                } else {
                    DriftVerdict::Stable
                };
                raw = raw.max(level);
            }
        }
        // Hysteresis: escalate only after `escalate_after` consecutive
        // breaching evaluations at (or above) the candidate level;
        // de-escalate one level per `clear_after` consecutive clean ones.
        let current = self.verdict();
        let next = if raw > current {
            s.clean_streak = 0;
            s.breach_streak += 1;
            if s.breach_streak >= self.config.escalate_after {
                s.breach_streak = 0;
                raw
            } else {
                current
            }
        } else if raw < current {
            s.breach_streak = 0;
            s.clean_streak += 1;
            if s.clean_streak >= self.config.clear_after {
                s.clean_streak = 0;
                DriftVerdict::from_u8(current.as_u8().saturating_sub(1))
            } else {
                current
            }
        } else {
            s.breach_streak = 0;
            s.clean_streak = 0;
            current
        };
        self.verdict.store(next.as_u8(), Ordering::Release);
        gauge("cats.drift.verdict").set(next.as_u8() as f64);
    }

    /// The current hysteresis-smoothed verdict (single atomic load).
    pub fn verdict(&self) -> DriftVerdict {
        DriftVerdict::from_u8(self.verdict.load(Ordering::Acquire))
    }

    /// Whether the serving layer should report degraded mode.
    pub fn degraded(&self) -> bool {
        self.verdict() >= DriftVerdict::Warning
    }

    /// Latest per-feature statistics (as of the last evaluation).
    pub fn stats(&self) -> Vec<FeatureDrift> {
        let s = lock_recover(&self.state, "cats.drift.state");
        s.features
            .iter()
            .map(|f| FeatureDrift { name: f.name.clone(), psi: f.psi, ks: f.ks })
            .collect()
    }

    /// Total rows observed.
    pub fn rows_seen(&self) -> usize {
        lock_recover(&self.state, "cats.drift.state").rows_seen
    }

    /// Evaluations that had a full-enough window to score.
    pub fn evaluations(&self) -> u64 {
        lock_recover(&self.state, "cats.drift.state").evaluations
    }

    /// Re-anchors the monitor on fresh references (after a retrain
    /// promoted a new model): live windows, streaks and the verdict all
    /// reset — the new model starts Stable against its own training
    /// distribution.
    pub fn reset(&self, references: Vec<FeatureReference>) {
        let mut s = lock_recover(&self.state, "cats.drift.state");
        s.features =
            references.into_iter().map(|r| FeatureState::new(r, self.config.n_bins)).collect();
        s.rows_since_eval = 0;
        s.breach_streak = 0;
        s.clean_streak = 0;
        self.verdict.store(DriftVerdict::Stable.as_u8(), Ordering::Release);
        gauge("cats.drift.verdict").set(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|i| lo + (hi - lo) * (i as f64 + 0.5) / n as f64).collect()
    }

    #[test]
    fn psi_is_zero_for_identical_distributions() {
        let c = [10.0, 20.0, 30.0, 40.0];
        assert!(psi(&c, &c).abs() < 1e-12);
    }

    #[test]
    fn psi_with_empty_and_zero_mass_bins_is_finite() {
        // Live mass concentrated where the reference has none and vice
        // versa — the classic log(0)/0 trap.
        let expected = [100.0, 0.0, 0.0, 50.0];
        let actual = [0.0, 80.0, 20.0, 0.0];
        let v = psi(&expected, &actual);
        assert!(v.is_finite(), "psi must be finite, got {v}");
        assert!(v > 1.0, "disjoint mass should score large, got {v}");
        // Degenerate inputs: empty, all-zero, mismatched lengths.
        assert_eq!(psi(&[], &[]), 0.0);
        assert_eq!(psi(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(psi(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
        assert_eq!(psi(&[1.0], &[1.0, 2.0]), 0.0);
        assert!(psi(&[f64::NAN, 1.0], &[1.0, 1.0]).is_finite());
    }

    #[test]
    fn ks_over_constant_distributions_is_finite() {
        // Identical constants: no drift.
        assert_eq!(ks_statistic(&[3.0; 50], &[3.0; 20]), 0.0);
        // Disjoint constants: total drift, exactly 1.
        assert_eq!(ks_statistic(&[0.0; 50], &[1.0; 20]), 1.0);
        // Constant vs spread, and empties.
        let spread = uniform(100, 0.0, 1.0);
        let v = ks_statistic(&[0.5; 40], &spread);
        assert!(v.is_finite() && (0.0..=1.0).contains(&v));
        assert_eq!(ks_statistic(&[], &spread), 0.0);
        assert_eq!(ks_statistic(&spread, &[]), 0.0);
        assert!(ks_statistic(&[f64::NAN; 3], &spread).is_finite());
    }

    #[test]
    fn ks_detects_location_shift() {
        let a = uniform(200, 0.0, 1.0);
        let b = uniform(200, 0.5, 1.5);
        let v = ks_statistic(&a, &b);
        assert!(v > 0.4, "half-width shift should score ~0.5, got {v}");
        assert!(v <= 1.0);
    }

    #[test]
    fn quantile_edges_dedup_constant_reference() {
        assert!(quantile_edges(&[5.0; 100], 10).is_empty());
        let e = quantile_edges(&uniform(100, 0.0, 1.0), 4);
        assert_eq!(e.len(), 3);
        assert!(e.windows(2).all(|w| w[0] < w[1]));
        assert!(quantile_edges(&[], 10).is_empty());
    }

    fn monitor(config: DriftConfig) -> DriftMonitor {
        let refs = vec![
            FeatureReference::new("f0", uniform(256, 0.0, 1.0)),
            FeatureReference::new("f1", uniform(256, 10.0, 20.0)),
        ];
        DriftMonitor::new(refs, config)
    }

    fn tight() -> DriftConfig {
        DriftConfig {
            window: 128,
            min_window: 32,
            eval_every: 32,
            escalate_after: 2,
            clear_after: 2,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn stable_input_stays_stable() {
        let m = monitor(tight());
        for i in 0..512u64 {
            // A low-discrepancy scramble of [0,1): even partially filled
            // warm-up windows look uniform, like real sampled traffic.
            let x = ((i * 53 % 128) as f64 + 0.5) / 128.0;
            m.observe_row(&[x, 10.0 + 10.0 * x]);
        }
        assert_eq!(m.verdict(), DriftVerdict::Stable);
        assert!(!m.degraded());
        assert!(m.evaluations() > 0);
        for f in m.stats() {
            assert!(f.psi < 0.2, "{}: psi {}", f.name, f.psi);
            assert!(f.ks < 0.15, "{}: ks {}", f.name, f.ks);
        }
    }

    #[test]
    fn shifted_input_escalates_to_critical_with_hysteresis() {
        let m = monitor(tight());
        // Feed strongly shifted rows; the first breaching evaluation must
        // NOT flip the verdict (hysteresis), the second may.
        for i in 0..32 {
            m.observe_row(&[5.0 + (i % 7) as f64 * 0.01, 50.0]);
        }
        let after_one = m.evaluations();
        assert!(after_one >= 1);
        assert_eq!(m.verdict(), DriftVerdict::Stable, "one breach must not escalate");
        for i in 0..64 {
            m.observe_row(&[5.0 + (i % 7) as f64 * 0.01, 50.0]);
        }
        assert_eq!(m.verdict(), DriftVerdict::Critical);
        assert!(m.degraded());
        let stats = m.stats();
        assert!(stats.iter().all(|f| f.psi.is_finite() && f.ks.is_finite()));
    }

    #[test]
    fn recovery_de_escalates_one_level_at_a_time() {
        let m = monitor(tight());
        for i in 0..96 {
            m.observe_row(&[5.0 + (i % 7) as f64 * 0.01, 50.0]);
        }
        assert_eq!(m.verdict(), DriftVerdict::Critical);
        // Back to in-distribution rows: the window flushes out the
        // shifted mass and the verdict steps down Critical → Warning →
        // Stable, `clear_after` clean evaluations per step.
        for i in 0..1024 {
            let x = (i % 89) as f64 / 89.0;
            m.observe_row(&[x, 10.0 + 10.0 * x]);
        }
        assert_eq!(m.verdict(), DriftVerdict::Stable);
    }

    #[test]
    fn reset_re_anchors_and_clears_verdict() {
        let m = monitor(tight());
        for i in 0..96 {
            m.observe_row(&[5.0 + (i % 7) as f64 * 0.01, 50.0]);
        }
        assert_eq!(m.verdict(), DriftVerdict::Critical);
        // Retrained model: the shifted region IS the new reference.
        let shifted: Vec<f64> = (0..256).map(|i| 5.0 + (i % 7) as f64 * 0.01).collect();
        m.reset(vec![
            FeatureReference::new("f0", shifted),
            FeatureReference::new("f1", vec![50.0; 256]),
        ]);
        assert_eq!(m.verdict(), DriftVerdict::Stable);
        for i in 0..96 {
            m.observe_row(&[5.0 + (i % 7) as f64 * 0.01, 50.0]);
        }
        assert_eq!(m.verdict(), DriftVerdict::Stable, "new reference matches live");
    }

    #[test]
    fn short_window_never_evaluates() {
        let m = monitor(DriftConfig { min_window: 64, eval_every: 8, ..tight() });
        for _ in 0..32 {
            m.observe_row(&[9.0, 90.0]);
        }
        assert_eq!(m.evaluations(), 0);
        assert_eq!(m.verdict(), DriftVerdict::Stable);
    }

    #[test]
    fn verdict_ordering_and_names() {
        assert!(DriftVerdict::Stable < DriftVerdict::Warning);
        assert!(DriftVerdict::Warning < DriftVerdict::Critical);
        assert_eq!(DriftVerdict::Critical.as_str(), "critical");
        assert_eq!(DriftVerdict::from_u8(1), DriftVerdict::Warning);
    }
}
