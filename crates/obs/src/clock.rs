//! Time sources for the observability layer.
//!
//! Every duration recorded by [`crate::span`] and [`crate::StageTimer`]
//! comes from the process-global [`Observer`], so swapping the observer
//! swaps the clock for the whole instrumentation layer at once:
//!
//! * [`WallObserver`] — real monotonic time (the default),
//! * [`SimObserver`] — a manually advanced clock, so tests that already
//!   run the chaos-ingestion simulated clock can drive span timing
//!   deterministically,
//! * [`NoopObserver`] — reports `enabled() == false`, which makes every
//!   span a no-op; used to measure the instrumentation overhead itself.
//!
//! Setting the environment variable `CATS_OBS` to `off`, `0` or `noop`
//! before first use installs the no-op observer (the knob behind the
//! exp_scaling overhead check).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A pluggable time source / master switch for span recording.
pub trait Observer: Send + Sync {
    /// Current time in microseconds since an arbitrary fixed epoch.
    fn now_micros(&self) -> u64;

    /// When `false`, span enter/exit becomes a no-op (counters and
    /// gauges still record — they are too cheap to gate).
    fn enabled(&self) -> bool {
        true
    }
}

/// Real wall-clock observer: monotonic time since construction.
pub struct WallObserver {
    epoch: Instant,
}

impl WallObserver {
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for WallObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer for WallObserver {
    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// Simulated clock: time only moves when a test calls
/// [`SimObserver::advance_micros`]. Share it with the instrumented code
/// via `Arc` to advance it mid-run.
#[derive(Default)]
pub struct SimObserver {
    micros: AtomicU64,
}

impl SimObserver {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn advance_micros(&self, delta: u64) {
        self.micros.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn advance_secs(&self, secs: u64) {
        self.advance_micros(secs.saturating_mul(1_000_000));
    }
}

impl Observer for SimObserver {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

/// Disabled observer: spans cost one branch and nothing else.
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn now_micros(&self) -> u64 {
        0
    }

    fn enabled(&self) -> bool {
        false
    }
}

fn slot() -> &'static RwLock<Arc<dyn Observer>> {
    static SLOT: OnceLock<RwLock<Arc<dyn Observer>>> = OnceLock::new();
    SLOT.get_or_init(|| {
        let obs: Arc<dyn Observer> = match std::env::var("CATS_OBS").as_deref() {
            Ok("off") | Ok("0") | Ok("noop") => Arc::new(NoopObserver),
            _ => Arc::new(WallObserver::new()),
        };
        RwLock::new(obs)
    })
}

/// Installs a new process-global observer (tests: pass a
/// [`SimObserver`] or [`NoopObserver`]).
pub fn set_observer(obs: Arc<dyn Observer>) {
    *slot().write().unwrap() = obs;
}

/// The current process-global observer.
pub fn observer() -> Arc<dyn Observer> {
    slot().read().unwrap().clone()
}

/// Whether span recording is currently enabled.
pub fn enabled() -> bool {
    slot().read().unwrap().enabled()
}

/// Current observer time in microseconds.
pub fn now_micros() -> u64 {
    slot().read().unwrap().now_micros()
}
