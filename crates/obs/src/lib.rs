//! # cats-obs — zero-dependency observability for the CATS workspace
//!
//! Three pieces, layered bottom-up (DESIGN.md §8):
//!
//! 1. **Metrics registry** ([`metrics`]): named [`Counter`]s,
//!    [`Gauge`]s and fixed-bucket [`Histogram`]s backed by atomics —
//!    handle lookup locks once, recording never does — with JSON and
//!    Prometheus-text exporters.
//! 2. **Spans** ([`span`]): `let _g = span!("cats.core.detect");`
//!    scoped timers with parent–child nesting, wall/self time, an
//!    items payload, and a bounded structured event stream fed from
//!    per-thread buffers.
//! 3. **Run profiles** ([`profile`]): a [`StageTimer`] diffs registry
//!    snapshots around a unit of work and emits a [`RunProfile`] — the
//!    JSON artifact behind `cats-cli --metrics-out` and the
//!    `BENCH_*.json` per-stage breakdowns.
//!
//! Timing flows through a pluggable [`Observer`]: wall clock by
//! default, a [`SimObserver`] for deterministic tests, and a
//! [`NoopObserver`] (also via `CATS_OBS=off`) that turns every span
//! into a single branch for overhead measurements.
//!
//! Metric names follow `cats.<crate>.<stage>.<name>`; the Prometheus
//! exporter sanitizes `.` to `_`.
//!
//! Like `cats-par`, this crate is deliberately dependency-free so it
//! can sit below every other crate in the workspace.

pub mod clock;
pub mod drift;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod sync;

pub use clock::{
    enabled, now_micros, observer, set_observer, NoopObserver, Observer, SimObserver, WallObserver,
};
pub use drift::{
    ks_statistic, psi, DriftConfig, DriftMonitor, DriftVerdict, FeatureDrift, FeatureReference,
};
pub use metrics::{
    counter, gauge, global, histogram, Counter, Gauge, HistSnapshot, Histogram, Registry, Snapshot,
    StageSnapshot,
};
pub use profile::{RunProfile, StageProfile, StageTimer};
pub use span::{dropped_events, flush_thread, take_events, SpanEvent, StageStats};
pub use sync::lock_recover;
