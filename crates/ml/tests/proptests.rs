//! Property-based tests for the ML substrate.

use cats_ml::classifier::predict_all;
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::metrics::{BinaryMetrics, Confusion};
use cats_ml::naive_bayes::GaussianNaiveBayes;
use cats_ml::tree::{DecisionTree, TreeConfig};
use cats_ml::{Classifier, Dataset, StandardScaler};
use proptest::prelude::*;

/// Strategy: a labeled dataset with 2 features, both classes present.
fn dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (
            prop::num::f64::NORMAL.prop_map(|x| x % 100.0),
            prop::num::f64::NORMAL.prop_map(|x| x % 100.0),
            prop::bool::ANY,
        ),
        4..60,
    )
    .prop_map(|rows| {
        let mut d = Dataset::new(2);
        // Force at least one example of each class.
        d.push(&[1.0, 1.0], 1);
        d.push(&[-1.0, -1.0], 0);
        for (a, b, y) in rows {
            d.push(&[a, b], u8::from(y));
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_in_unit_interval(tp in 0usize..50, fp in 0usize..50, tn in 0usize..50, fn_ in 0usize..50) {
        let m = BinaryMetrics::from_confusion(Confusion { tp, fp, tn, fn_ });
        for v in [m.precision, m.recall, m.f1, m.accuracy] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // F1 is between min and max of P and R when both nonzero.
        if m.precision > 0.0 && m.recall > 0.0 {
            prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-12);
            prop_assert!(m.f1 >= m.precision.min(m.recall) - 1e-12);
        }
    }

    #[test]
    fn kfold_partitions_exactly(data in dataset(), k in 2usize..6) {
        let folds = data.stratified_kfold(k, 7);
        prop_assert_eq!(folds.len(), k);
        let total: usize = folds.iter().map(|(_, te)| te.len()).sum();
        prop_assert_eq!(total, data.len());
        for (tr, te) in &folds {
            prop_assert_eq!(tr.len() + te.len(), data.len());
        }
        // Class balance: each fold's positive count within ±1 of fair share.
        let pos = data.n_positive();
        for (_, te) in &folds {
            let share = pos as f64 / k as f64;
            prop_assert!((te.n_positive() as f64 - share).abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn scaler_transform_is_affine_and_finite(data in dataset()) {
        let sc = StandardScaler::fit(&data);
        let t = sc.transform(&data);
        prop_assert_eq!(t.len(), data.len());
        for i in 0..t.len() {
            for &v in t.row(i) {
                prop_assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn gbt_probabilities_valid_on_any_data(data in dataset()) {
        let mut m = GradientBoostedTrees::new(GbtConfig {
            n_trees: 10,
            subsample: 1.0,
            ..GbtConfig::default()
        });
        m.fit(&data);
        for i in 0..data.len() {
            let p = m.predict_proba(data.row(i));
            prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn tree_training_accuracy_not_worse_than_majority(data in dataset()) {
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&data);
        let preds = predict_all(&t, &data);
        let correct = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, &l)| **p == (l == 1))
            .count();
        let pos = data.n_positive();
        let majority = pos.max(data.len() - pos);
        prop_assert!(correct >= majority, "tree {correct} < majority {majority}");
    }

    #[test]
    fn nb_probability_monotone_along_class_axis(shift in 1.0f64..50.0) {
        // Two Gaussian blobs separated along feature 0 by `shift`.
        let mut d = Dataset::new(1);
        for i in 0..20 {
            let j = (i as f64) / 20.0;
            d.push(&[shift + j], 1);
            d.push(&[-shift - j], 0);
        }
        let mut m = GaussianNaiveBayes::new();
        m.fit(&d);
        let p_neg = m.predict_proba(&[-shift]);
        let p_mid = m.predict_proba(&[0.0]);
        let p_pos = m.predict_proba(&[shift]);
        prop_assert!(p_neg <= p_mid + 1e-9);
        prop_assert!(p_mid <= p_pos + 1e-9);
    }

    #[test]
    fn stratified_split_preserves_all_rows(data in dataset(), frac in 0.1f64..0.5) {
        let (tr, te) = data.stratified_split(frac, 3);
        prop_assert_eq!(tr.len() + te.len(), data.len());
        prop_assert_eq!(tr.n_positive() + te.n_positive(), data.n_positive());
    }
}

mod ranking_props {
    use cats_ml::ranking::{average_precision, pr_curve, roc_auc};
    use proptest::prelude::*;

    fn scored() -> impl Strategy<Value = (Vec<f64>, Vec<u8>)> {
        prop::collection::vec((0.0f64..1.0, 0u8..2), 2..80).prop_map(|v| {
            let (s, l): (Vec<f64>, Vec<u8>) = v.into_iter().unzip();
            (s, l)
        })
    }

    proptest! {
        #[test]
        fn auc_bounded_and_complement_symmetric((scores, labels) in scored()) {
            let auc = roc_auc(&scores, &labels);
            prop_assert!((0.0..=1.0).contains(&auc));
            // Flipping labels mirrors the AUC around 0.5 (when both classes
            // are present).
            let flipped: Vec<u8> = labels.iter().map(|&l| 1 - l).collect();
            let has_both = labels.contains(&0) && labels.contains(&1);
            if has_both {
                let auc_f = roc_auc(&scores, &flipped);
                prop_assert!((auc + auc_f - 1.0).abs() < 1e-9, "{auc} + {auc_f}");
            }
        }

        #[test]
        fn auc_invariant_under_monotone_transform((scores, labels) in scored()) {
            let squashed: Vec<f64> = scores.iter().map(|s| s * s).collect();
            let a = roc_auc(&scores, &labels);
            let b = roc_auc(&squashed, &labels);
            prop_assert!((a - b).abs() < 1e-9);
        }

        #[test]
        fn pr_curve_valid((scores, labels) in scored()) {
            let curve = pr_curve(&scores, &labels);
            for p in &curve {
                prop_assert!((0.0..=1.0).contains(&p.precision));
                prop_assert!((0.0..=1.0).contains(&p.recall));
            }
            prop_assert!(curve.windows(2).all(|w| w[0].recall <= w[1].recall));
            let ap = average_precision(&scores, &labels);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        }
    }
}
