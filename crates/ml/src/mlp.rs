//! One-hidden-layer neural network with SGD.
//!
//! The "Neural Network" baseline of Table III (the paper's weakest
//! candidate at P 0.83 / R 0.65 — small tabular data with 11 features does
//! not favour an MLP). tanh hidden units, a sigmoid output, cross-entropy
//! loss, mini-batchless SGD with momentum, internal standardization.

use crate::classifier::Classifier;
use crate::data::{Dataset, StandardScaler};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Epochs of SGD.
    pub epochs: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// RNG seed for init and example order.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self { hidden: 16, lr: 0.05, momentum: 0.9, epochs: 60, weight_decay: 1e-4, seed: 21 }
    }
}

/// The network: `w1 [hidden × in]`, `b1 [hidden]`, `w2 [hidden]`, `b2`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    config: MlpConfig,
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    n_in: usize,
    scaler: Option<StandardScaler>,
}

impl Mlp {
    /// Creates an untrained network.
    pub fn new(config: MlpConfig) -> Self {
        assert!(config.hidden > 0, "hidden width must be positive");
        Self {
            config,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
            n_in: 0,
            scaler: None,
        }
    }

    /// Whether the network has been fit.
    pub fn is_fit(&self) -> bool {
        self.scaler.is_some()
    }

    /// Forward pass on a standardized row; returns (hidden activations,
    /// output probability).
    fn forward(&self, x: &[f64], hidden_buf: &mut Vec<f64>) -> f64 {
        let h = self.config.hidden;
        hidden_buf.clear();
        hidden_buf.reserve(h);
        for j in 0..h {
            let mut z = self.b1[j];
            let row = &self.w1[j * self.n_in..(j + 1) * self.n_in];
            for (w, xi) in row.iter().zip(x) {
                z += w * xi;
            }
            hidden_buf.push(z.tanh());
        }
        let mut z = self.b2;
        for (w, a) in self.w2.iter().zip(hidden_buf.iter()) {
            z += w * a;
        }
        1.0 / (1.0 + (-z).exp())
    }
}

impl Classifier for Mlp {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit MLP on an empty dataset");
        let cfg = self.config;
        let scaler = StandardScaler::fit(data);
        let scaled = scaler.transform(data);
        let n = scaled.len();
        self.n_in = scaled.n_features();
        let h = cfg.hidden;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Xavier-ish init.
        let scale1 = (2.0 / (self.n_in + h) as f64).sqrt();
        self.w1 = (0..h * self.n_in).map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale1).collect();
        self.b1 = vec![0.0; h];
        let scale2 = (2.0 / (h + 1) as f64).sqrt();
        self.w2 = (0..h).map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale2).collect();
        self.b2 = 0.0;

        let mut vw1 = vec![0.0; h * self.n_in];
        let mut vb1 = vec![0.0; h];
        let mut vw2 = vec![0.0; h];
        let mut vb2 = 0.0;
        let mut hidden = Vec::with_capacity(h);

        for _epoch in 0..cfg.epochs {
            for _step in 0..n {
                let i = rng.random_range(0..n);
                let x = scaled.row(i);
                let y = f64::from(scaled.label(i));
                let p = self.forward(x, &mut hidden);
                let dz2 = p - y; // dL/dz_out for cross-entropy + sigmoid

                // Output layer.
                for j in 0..h {
                    let g = dz2 * hidden[j] + cfg.weight_decay * self.w2[j];
                    vw2[j] = cfg.momentum * vw2[j] - cfg.lr * g;
                    self.w2[j] += vw2[j];
                }
                vb2 = cfg.momentum * vb2 - cfg.lr * dz2;
                self.b2 += vb2;

                // Hidden layer.
                for j in 0..h {
                    let da = dz2 * self.w2[j];
                    let dz1 = da * (1.0 - hidden[j] * hidden[j]);
                    let row = j * self.n_in;
                    for k in 0..self.n_in {
                        let g = dz1 * x[k] + cfg.weight_decay * self.w1[row + k];
                        vw1[row + k] = cfg.momentum * vw1[row + k] - cfg.lr * g;
                        self.w1[row + k] += vw1[row + k];
                    }
                    vb1[j] = cfg.momentum * vb1[j] - cfg.lr * dz1;
                    self.b1[j] += vb1[j];
                }
            }
        }
        self.scaler = Some(scaler);
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        let mut x = row.to_vec();
        scaler.transform_row(&mut x);
        let mut hidden = Vec::with_capacity(self.config.hidden);
        self.forward(&x, &mut hidden)
    }

    fn name(&self) -> &'static str {
        "Neural Network"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::predict_all;

    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n {
            let x = (i % 17) as f64 / 17.0;
            d.push(&[1.0 + x, 10.0 * x], 1);
            d.push(&[-1.0 - x, -10.0 * x], 0);
        }
        d
    }

    #[test]
    fn fits_separable_data() {
        let d = separable(80);
        let mut m = Mlp::new(MlpConfig::default());
        m.fit(&d);
        let acc =
            predict_all(&m, &d).iter().zip(d.labels()).filter(|(p, &l)| **p == (l == 1)).count()
                as f64
                / d.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn solves_xor() {
        let mut d = Dataset::new(2);
        for _ in 0..40 {
            d.push(&[0.0, 0.0], 0);
            d.push(&[0.0, 1.0], 1);
            d.push(&[1.0, 0.0], 1);
            d.push(&[1.0, 1.0], 0);
        }
        let mut m = Mlp::new(MlpConfig { epochs: 200, hidden: 8, ..MlpConfig::default() });
        m.fit(&d);
        assert!(!m.predict(&[0.0, 0.0]));
        assert!(m.predict(&[0.0, 1.0]));
        assert!(m.predict(&[1.0, 0.0]));
        assert!(!m.predict(&[1.0, 1.0]));
    }

    #[test]
    fn proba_in_unit_interval() {
        let d = separable(30);
        let mut m = Mlp::new(MlpConfig::default());
        m.fit(&d);
        for i in 0..d.len() {
            let p = m.predict_proba(d.row(i));
            assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = separable(30);
        let mut a = Mlp::new(MlpConfig::default());
        let mut b = Mlp::new(MlpConfig::default());
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.predict_proba(d.row(3)), b.predict_proba(d.row(3)));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        Mlp::new(MlpConfig::default()).predict_proba(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "hidden width must be positive")]
    fn zero_hidden_rejected() {
        Mlp::new(MlpConfig { hidden: 0, ..MlpConfig::default() });
    }
}
