//! The classifier interface.
//!
//! The paper notes that "any classifier that shows satisfactory
//! performance can be employed" in the detector, so CATS' detector is
//! generic over this object-safe trait; all six Table III models implement
//! it.

use crate::data::Dataset;
use crate::flat::ColMatrix;
use crate::metrics::BinaryMetrics;

/// An object-safe binary classifier.
///
/// `Send + Sync` so a shared reference can cross worker threads during
/// fold-parallel cross-validation; every model here is plain data.
pub trait Classifier: Send + Sync {
    /// Fits the model to `data`, replacing any previous fit.
    fn fit(&mut self, data: &Dataset);

    /// Probability-like fraud score for a feature row, in `[0, 1]`.
    fn predict_proba(&self, row: &[f64]) -> f64;

    /// Hard decision at the 0.5 operating point.
    fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Probability scores for a whole column-major batch, one per row,
    /// bit-identical to calling [`Classifier::predict_proba`] row by
    /// row. The default does exactly that; models with a vectorized
    /// scoring path (the GBT's branch-lite flat forest) override it.
    fn predict_proba_batch(&self, cols: &ColMatrix) -> Vec<f64> {
        let mut row = vec![0.0; cols.n_cols()];
        (0..cols.n_rows())
            .map(|r| {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = cols.at(r, c);
                }
                self.predict_proba(&row)
            })
            .collect()
    }

    /// Human-readable model name (used in Table III output).
    fn name(&self) -> &'static str;

    /// Boxed deep copy, so parallel cross-validation can refit one clone
    /// per fold.
    fn clone_box(&self) -> Box<dyn Classifier>;
}

/// Scores every row of `data` with `model`.
pub fn predict_all(model: &dyn Classifier, data: &Dataset) -> Vec<bool> {
    (0..data.len()).map(|i| model.predict(data.row(i))).collect()
}

/// Fits on `train`, evaluates on `test`.
pub fn fit_evaluate(model: &mut dyn Classifier, train: &Dataset, test: &Dataset) -> BinaryMetrics {
    model.fit(train);
    let preds = predict_all(model, test);
    BinaryMetrics::compute(test.labels(), &preds)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed-threshold toy model: positive iff feature 0 is positive.
    struct Stub;
    impl Classifier for Stub {
        fn fit(&mut self, _: &Dataset) {}
        fn predict_proba(&self, row: &[f64]) -> f64 {
            if row[0] > 0.0 {
                1.0
            } else {
                0.0
            }
        }
        fn name(&self) -> &'static str {
            "stub"
        }
        fn clone_box(&self) -> Box<dyn Classifier> {
            Box::new(Stub)
        }
    }

    fn toy() -> Dataset {
        Dataset::from_rows(&[vec![1.0], vec![2.0], vec![-1.0], vec![-2.0]], &[1, 1, 0, 0])
    }

    #[test]
    fn default_predict_uses_half_threshold() {
        let s = Stub;
        assert!(s.predict(&[1.0]));
        assert!(!s.predict(&[-1.0]));
    }

    #[test]
    fn predict_all_covers_every_row() {
        let preds = predict_all(&Stub, &toy());
        assert_eq!(preds, vec![true, true, false, false]);
    }

    #[test]
    fn fit_evaluate_end_to_end() {
        let d = toy();
        let m = fit_evaluate(&mut Stub, &d, &d);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Classifier> = Box::new(Stub);
        assert_eq!(boxed.name(), "stub");
    }
}
