//! Gaussian Naive Bayes over the 11 dense features.
//!
//! One of the Table III baselines (paper: P 0.91 / R 0.65). Per class and
//! per feature, fits a univariate Gaussian; prediction multiplies the
//! class prior by the product of feature likelihoods (in log space).

use crate::classifier::Classifier;
use crate::data::Dataset;
use serde::{Deserialize, Serialize};

/// Variance floor: features with (near-)zero within-class variance would
/// otherwise produce infinite likelihood ratios.
const VAR_FLOOR: f64 = 1e-9;

/// Per-class Gaussian parameters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ClassStats {
    log_prior: f64,
    means: Vec<f64>,
    vars: Vec<f64>,
}

/// The fitted model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    pos: ClassStats,
    neg: ClassStats,
    fit_done: bool,
}

impl GaussianNaiveBayes {
    /// Creates an untrained model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the model has been fit.
    pub fn is_fit(&self) -> bool {
        self.fit_done
    }

    fn class_stats(data: &Dataset, class: u8, n_total: usize) -> ClassStats {
        let nf = data.n_features();
        let idx: Vec<usize> = (0..data.len()).filter(|&i| data.label(i) == class).collect();
        let n = idx.len();
        // An absent class gets a vanishing prior and uninformative
        // likelihoods; predictions then collapse to the other class.
        if n == 0 {
            return ClassStats {
                log_prior: f64::NEG_INFINITY,
                means: vec![0.0; nf],
                vars: vec![1.0; nf],
            };
        }
        let mut means = vec![0.0; nf];
        for &i in &idx {
            for (m, &v) in means.iter_mut().zip(data.row(i)) {
                *m += v;
            }
        }
        means.iter_mut().for_each(|m| *m /= n as f64);
        let mut vars = vec![0.0; nf];
        for &i in &idx {
            for ((s, &v), &m) in vars.iter_mut().zip(data.row(i)).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        vars.iter_mut().for_each(|v| *v = (*v / n as f64).max(VAR_FLOOR));
        ClassStats { log_prior: (n as f64 / n_total as f64).ln(), means, vars }
    }

    fn log_likelihood(stats: &ClassStats, row: &[f64]) -> f64 {
        let mut ll = stats.log_prior;
        if ll == f64::NEG_INFINITY {
            return ll;
        }
        for ((&x, &m), &v) in row.iter().zip(&stats.means).zip(&stats.vars) {
            ll += -0.5 * ((x - m) * (x - m) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit NB on an empty dataset");
        self.pos = Self::class_stats(data, 1, data.len());
        self.neg = Self::class_stats(data, 0, data.len());
        self.fit_done = true;
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        assert!(self.is_fit(), "predict before fit");
        let lp = Self::log_likelihood(&self.pos, row);
        let ln = Self::log_likelihood(&self.neg, row);
        if lp == f64::NEG_INFINITY {
            return 0.0;
        }
        if ln == f64::NEG_INFINITY {
            return 1.0;
        }
        1.0 / (1.0 + (ln - lp).exp())
    }

    fn name(&self) -> &'static str {
        "Naive Bayes"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::predict_all;

    fn gaussian_blobs(n: usize) -> Dataset {
        // Two well-separated blobs along feature 0 with deterministic
        // low-discrepancy jitter.
        let mut d = Dataset::new(2);
        for i in 0..n {
            let j = ((i * 37) % 100) as f64 / 100.0 - 0.5;
            d.push(&[3.0 + j, j], 1);
            d.push(&[-3.0 + j, -j], 0);
        }
        d
    }

    #[test]
    fn separates_gaussian_blobs() {
        let d = gaussian_blobs(100);
        let mut m = GaussianNaiveBayes::new();
        m.fit(&d);
        let preds = predict_all(&m, &d);
        assert!(preds.iter().zip(d.labels()).all(|(p, &l)| *p == (l == 1)));
    }

    #[test]
    fn probabilities_reflect_distance_to_means() {
        let d = gaussian_blobs(100);
        let mut m = GaussianNaiveBayes::new();
        m.fit(&d);
        let near_pos = m.predict_proba(&[3.0, 0.0]);
        let mid = m.predict_proba(&[0.0, 0.0]);
        let near_neg = m.predict_proba(&[-3.0, 0.0]);
        assert!(near_pos > 0.95);
        assert!(near_neg < 0.05);
        assert!((0.05..0.95).contains(&mid), "{mid}");
    }

    #[test]
    fn constant_feature_does_not_explode() {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            d.push(&[1.0, i as f64], u8::from(i >= 10));
        }
        let mut m = GaussianNaiveBayes::new();
        m.fit(&d);
        let p = m.predict_proba(&[1.0, 15.0]);
        assert!(p.is_finite());
        assert!(p > 0.5);
    }

    #[test]
    fn single_class_training() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            d.push(&[i as f64], 1);
        }
        let mut m = GaussianNaiveBayes::new();
        m.fit(&d);
        assert_eq!(m.predict_proba(&[4.0]), 1.0);
    }

    #[test]
    fn prior_shifts_decision() {
        // Same likelihoods, imbalanced priors: ambiguous point goes to the
        // majority class.
        let mut d = Dataset::new(1);
        for i in 0..90 {
            d.push(&[(i % 10) as f64 - 5.0], 0);
        }
        for i in 0..10 {
            d.push(&[(i % 10) as f64 - 5.0], 1);
        }
        let mut m = GaussianNaiveBayes::new();
        m.fit(&d);
        assert!(m.predict_proba(&[0.0]) < 0.5);
    }

    #[test]
    fn proba_in_unit_interval() {
        let d = gaussian_blobs(50);
        let mut m = GaussianNaiveBayes::new();
        m.fit(&d);
        for x in [-10.0, -1.0, 0.0, 1.0, 10.0] {
            let p = m.predict_proba(&[x, x]);
            assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        GaussianNaiveBayes::new().predict_proba(&[0.0]);
    }
}
