//! Weighted CART decision trees.
//!
//! One of the Table III baselines, and (at depth 1) the weak learner of
//! AdaBoost. Splits are exact: candidate thresholds are the midpoints
//! between consecutive distinct sorted feature values, scored by weighted
//! Gini impurity decrease.

use crate::classifier::Classifier;
use crate::data::Dataset;
use serde::{Deserialize, Serialize};

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (a depth-0 tree is a single leaf).
    pub max_depth: usize,
    /// Minimum total example weight required to attempt a split.
    pub min_split_weight: f64,
    /// Minimum impurity decrease required to keep a split. The default of
    /// 0 admits zero-gain splits on impure nodes (necessary for XOR-like
    /// structure where no single split reduces Gini but descendants do).
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 6, min_split_weight: 2.0, min_gain: 0.0 }
    }
}

/// Tree nodes in a flat arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Weighted fraction of positive examples at the leaf.
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the `< threshold` child.
        left: usize,
        /// Index of the `>= threshold` child.
        right: usize,
    },
}

/// A trained (or yet-untrained) CART classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Creates an untrained tree.
    pub fn new(config: TreeConfig) -> Self {
        Self { config, nodes: Vec::new() }
    }

    /// Fits with uniform example weights.
    pub fn fit_unweighted(&mut self, data: &Dataset) {
        let w = vec![1.0; data.len()];
        self.fit_weighted(data, &w);
    }

    /// Fits with explicit non-negative example weights (AdaBoost re-weights
    /// between rounds).
    ///
    /// # Panics
    /// Panics if `weights.len() != data.len()` or the dataset is empty.
    pub fn fit_weighted(&mut self, data: &Dataset, weights: &[f64]) {
        assert_eq!(weights.len(), data.len(), "weights/data mismatch");
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        self.nodes.clear();
        let idx: Vec<usize> = (0..data.len()).collect();
        self.build(data, weights, idx, 0);
    }

    /// Recursively builds the subtree over `idx`; returns the node index.
    fn build(&mut self, data: &Dataset, weights: &[f64], idx: Vec<usize>, depth: usize) -> usize {
        let (w_total, w_pos) = class_weights(data, weights, &idx);
        let prob = if w_total > 0.0 { w_pos / w_total } else { 0.5 };

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { prob });
            nodes.len() - 1
        };

        if depth >= self.config.max_depth
            || w_total < self.config.min_split_weight
            || prob == 0.0
            || prob == 1.0
        {
            return make_leaf(&mut self.nodes);
        }

        let Some(split) = best_split(data, weights, &idx, self.config.min_gain) else {
            return make_leaf(&mut self.nodes);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.into_iter().partition(|&i| data.row(i)[split.feature] < split.threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return make_leaf(&mut self.nodes);
        }

        // Reserve our slot before the children claim theirs.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { prob });
        let left = self.build(data, weights, left_idx, depth + 1);
        let right = self.build(data, weights, right_idx, depth + 1);
        self.nodes[me] =
            Node::Split { feature: split.feature, threshold: split.threshold, left, right };
        me
    }

    /// Whether the tree has been fit.
    pub fn is_fit(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// The selected split of [`best_split`].
struct SplitChoice {
    feature: usize,
    threshold: f64,
}

/// Weighted totals (total, positive) over `idx`.
fn class_weights(data: &Dataset, weights: &[f64], idx: &[usize]) -> (f64, f64) {
    let mut t = 0.0;
    let mut p = 0.0;
    for &i in idx {
        t += weights[i];
        if data.label(i) == 1 {
            p += weights[i];
        }
    }
    (t, p)
}

/// Gini impurity of a (total, positive) weighted node.
fn gini(total: f64, pos: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

/// Exhaustive best split by weighted Gini decrease; `None` if no split
/// clears `min_gain`.
fn best_split(
    data: &Dataset,
    weights: &[f64],
    idx: &[usize],
    min_gain: f64,
) -> Option<SplitChoice> {
    let (w_total, w_pos) = class_weights(data, weights, idx);
    let parent = gini(w_total, w_pos);
    let mut best: Option<(f64, SplitChoice)> = None;

    let mut order: Vec<usize> = idx.to_vec();
    for feature in 0..data.n_features() {
        order.sort_by(|&a, &b| {
            data.row(a)[feature]
                .partial_cmp(&data.row(b)[feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut wl = 0.0;
        let mut pl = 0.0;
        for k in 0..order.len() - 1 {
            let i = order[k];
            wl += weights[i];
            if data.label(i) == 1 {
                pl += weights[i];
            }
            let v = data.row(i)[feature];
            let v_next = data.row(order[k + 1])[feature];
            if v == v_next {
                continue; // not a boundary between distinct values
            }
            let wr = w_total - wl;
            let pr = w_pos - pl;
            if wl <= 0.0 || wr <= 0.0 {
                continue;
            }
            let child = (wl * gini(wl, pl) + wr * gini(wr, pr)) / w_total;
            let gain = parent - child;
            if gain >= min_gain && gain.is_finite() && best.as_ref().is_none_or(|(g, _)| gain > *g)
            {
                best = Some((gain, SplitChoice { feature, threshold: (v + v_next) / 2.0 }));
            }
        }
    }
    best.map(|(_, s)| s)
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        self.fit_unweighted(data);
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        assert!(self.is_fit(), "predict before fit");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { prob } => return *prob,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "Decision Tree"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::predict_all;

    /// Linearly separable on feature 1.
    fn separable() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            d.push(&[i as f64, 1.0 + (i % 5) as f64], 1);
            d.push(&[i as f64, -1.0 - (i % 5) as f64], 0);
        }
        d
    }

    #[test]
    fn learns_separable_data_perfectly() {
        let d = separable();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&d);
        let preds = predict_all(&t, &d);
        assert_eq!(preds, d.labels().iter().map(|&l| l == 1).collect::<Vec<_>>());
    }

    #[test]
    fn depth_zero_is_single_prior_leaf() {
        let d = separable();
        let mut t = DecisionTree::new(TreeConfig { max_depth: 0, ..TreeConfig::default() });
        t.fit(&d);
        assert_eq!(t.n_nodes(), 1);
        assert!((t.predict_proba(&[0.0, 5.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stump_splits_on_informative_feature() {
        let d = separable();
        let mut t = DecisionTree::new(TreeConfig { max_depth: 1, ..TreeConfig::default() });
        t.fit(&d);
        assert!(t.n_nodes() <= 3);
        assert!(t.predict(&[25.0, 3.0]));
        assert!(!t.predict(&[25.0, -3.0]));
    }

    #[test]
    fn pure_node_stops_early() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            d.push(&[i as f64], 1);
        }
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&d);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict_proba(&[3.0]), 1.0);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 1.0], 1);
        d.push(&[1.0, 1.0], 0);
        d.push(&[1.0, 1.0], 1);
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&d);
        assert_eq!(t.n_nodes(), 1);
        assert!((t.predict_proba(&[1.0, 1.0]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weights_steer_the_split() {
        // Feature 0 separates {0,1} from {2,3}; labels disagree with it on
        // rows 1 and 2, which carry almost no weight. Heavy rows dominate.
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0);
        d.push(&[1.0], 1); // light
        d.push(&[2.0], 0); // light
        d.push(&[3.0], 1);
        let mut t = DecisionTree::new(TreeConfig { max_depth: 1, ..TreeConfig::default() });
        t.fit_weighted(&d, &[10.0, 0.01, 0.01, 10.0]);
        assert!(!t.predict(&[0.4]));
        assert!(t.predict(&[2.9]));
    }

    #[test]
    fn xor_needs_depth_two() {
        let rows = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let labels = vec![0, 1, 1, 0];
        let d = Dataset::from_rows(&rows, &labels);
        let mut shallow = DecisionTree::new(TreeConfig {
            max_depth: 1,
            min_split_weight: 1.0,
            ..TreeConfig::default()
        });
        shallow.fit(&d);
        let acc1 =
            predict_all(&shallow, &d).iter().zip(&labels).filter(|(p, &l)| **p == (l == 1)).count();
        let mut deep = DecisionTree::new(TreeConfig {
            max_depth: 3,
            min_split_weight: 1.0,
            ..TreeConfig::default()
        });
        deep.fit(&d);
        let acc3 =
            predict_all(&deep, &d).iter().zip(&labels).filter(|(p, &l)| **p == (l == 1)).count();
        assert!(acc1 < 4, "depth-1 cannot solve XOR");
        assert_eq!(acc3, 4, "depth-3 solves XOR");
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        DecisionTree::new(TreeConfig::default()).predict_proba(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        DecisionTree::new(TreeConfig::default()).fit(&Dataset::new(1));
    }

    #[test]
    fn refit_replaces_model() {
        let d = separable();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&d);
        let n1 = t.n_nodes();
        t.fit(&d);
        assert_eq!(t.n_nodes(), n1, "refit is idempotent");
    }
}
