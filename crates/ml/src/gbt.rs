//! Second-order gradient boosted trees — the XGBoost algorithm, from
//! scratch.
//!
//! CATS' detector ships with this model (the paper's Table III winner).
//! Implements the core of Chen & Guestrin's system (the paper's reference 12):
//!
//! * logistic loss with per-example gradient `g = p − y` and hessian
//!   `h = p(1 − p)`;
//! * regression trees grown by exact greedy search maximizing the
//!   structure gain `½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`;
//! * leaf weights `−G/(H+λ)`, scaled by the shrinkage `η`;
//! * optional per-tree example subsampling;
//! * feature importance as **split counts** — the metric Fig 7 plots
//!   ("the times this feature is split during the construction process").

use crate::classifier::Classifier;
use crate::data::Dataset;
use crate::flat::{ColMatrix, FlatForest};
use cats_par::Parallelism;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Split-finding strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitMode {
    /// Exact greedy: every boundary between distinct sorted feature
    /// values is a candidate (the reference's "exact greedy algorithm").
    Exact,
    /// Histogram/approximate: candidates are the boundaries of `bins`
    /// global quantile buckets per feature (the reference's approximate
    /// algorithm with a global proposal) — O(bins) instead of O(n)
    /// candidate evaluations per node and feature.
    Histogram {
        /// Number of quantile buckets per feature.
        bins: usize,
    },
}

/// GBT hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GbtConfig {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Shrinkage (learning rate) η.
    pub eta: f64,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum gain γ to keep a split.
    pub gamma: f64,
    /// Minimum hessian sum per child (≈ min child weight).
    pub min_child_weight: f64,
    /// Per-tree row subsample fraction in `(0, 1]`.
    pub subsample: f64,
    /// RNG seed for subsampling.
    pub seed: u64,
    /// Split-finding strategy.
    pub split_mode: SplitMode,
    /// Per-tree feature subsample fraction in `(0, 1]` (colsample_bytree).
    pub colsample: f64,
    /// Parallelism for split scans and per-round recomputation. Results
    /// are bit-identical at every thread count (parallelism is only over
    /// features and rows whose accumulation order is self-contained).
    /// Not serialized: a restored model refits with the caller's setting.
    #[serde(skip)]
    pub parallelism: Parallelism,
}

impl Default for GbtConfig {
    fn default() -> Self {
        Self {
            n_trees: 120,
            max_depth: 4,
            eta: 0.15,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 0.9,
            seed: 7,
            split_mode: SplitMode::Exact,
            colsample: 1.0,
            parallelism: Parallelism::default(),
        }
    }
}

/// Rows below which per-round gradient/margin recomputation stays serial.
const PAR_MIN_ROWS: usize = 2048;
/// Node size below which split scans stay serial (a per-feature scan over
/// few members no longer amortizes the thread hand-off).
const PAR_MIN_SPLIT_MEMBERS: usize = 1024;

/// `par` when the work is `large`, else strictly serial — a size gate so
/// tiny work items never pay scheduling overhead.
fn par_if(par: Parallelism, large: bool) -> Parallelism {
    if large {
        par
    } else {
        Parallelism::serial()
    }
}

/// A node of a regression tree, in a flat arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf { weight: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct RegTree {
    nodes: Vec<Node>,
}

impl RegTree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { weight } => return *weight,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// The boosted model.
///
/// Serde goes through [`GbtWire`] (the historical field set, so the JSON
/// encoding is byte-for-byte unchanged); deserializing rebuilds the
/// branch-lite [`FlatForest`] the scoring hot path descends.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "GbtWire", into = "GbtWire")]
pub struct GradientBoostedTrees {
    config: GbtConfig,
    trees: Vec<RegTree>,
    base_score: f64,
    /// Split counts per feature (Fig 7's importance metric).
    split_counts: Vec<u64>,
    /// Total structure gain accumulated per feature (the "gain"
    /// importance variant).
    gain_sums: Vec<f64>,
    /// The ensemble flattened into a contiguous struct-of-arrays node
    /// pool (DESIGN.md §12). Kept in lockstep with `trees` by every
    /// construction path (fit, serde, binary decode); mid-fit it is
    /// deliberately stale-empty and the enum walk serves predictions.
    flat: FlatForest,
}

/// Serde wire shape of [`GradientBoostedTrees`]: exactly the pre-flat
/// field set and order, keeping the JSON encoding byte-compatible in
/// both directions.
#[derive(Clone, Serialize, Deserialize)]
struct GbtWire {
    config: GbtConfig,
    trees: Vec<RegTree>,
    base_score: f64,
    split_counts: Vec<u64>,
    gain_sums: Vec<f64>,
}

impl From<GbtWire> for GradientBoostedTrees {
    fn from(w: GbtWire) -> Self {
        let flat = flatten_trees(&w.trees);
        Self {
            config: w.config,
            trees: w.trees,
            base_score: w.base_score,
            split_counts: w.split_counts,
            gain_sums: w.gain_sums,
            flat,
        }
    }
}

impl From<GradientBoostedTrees> for GbtWire {
    fn from(m: GradientBoostedTrees) -> Self {
        Self {
            config: m.config,
            trees: m.trees,
            base_score: m.base_score,
            split_counts: m.split_counts,
            gain_sums: m.gain_sums,
        }
    }
}

/// Flattens enum-arena trees into one breadth-first sibling-adjacent
/// node pool. Deterministic: the same trees always produce the same
/// pool (and therefore the same [`FlatForest::to_bytes`] bytes).
fn flatten_trees(trees: &[RegTree]) -> FlatForest {
    let mut flat = FlatForest::new();
    let mut queue = VecDeque::new();
    for tree in trees {
        if tree.nodes.is_empty() {
            // Defensive: no builder produces an empty tree, but a
            // hand-edited JSON model must not panic the flattener.
            let root = flat.push_root();
            flat.set_leaf(root, 0.0);
            continue;
        }
        let root = flat.push_root();
        queue.push_back((0usize, root));
        while let Some((src, dst)) = queue.pop_front() {
            match &tree.nodes[src] {
                Node::Leaf { weight } => flat.set_leaf(dst, *weight),
                Node::Split { feature, threshold, left, right } => {
                    let l = flat.alloc_children();
                    flat.set_split(dst, *feature as u32, *threshold, l);
                    queue.push_back((*left, l));
                    queue.push_back((*right, l + 1));
                }
            }
        }
    }
    flat
}

impl GradientBoostedTrees {
    /// Creates an untrained model.
    pub fn new(config: GbtConfig) -> Self {
        assert!(config.n_trees > 0, "n_trees must be positive");
        assert!((0.0..=1.0).contains(&config.subsample) && config.subsample > 0.0);
        assert!(
            (0.0..=1.0).contains(&config.colsample) && config.colsample > 0.0,
            "colsample in (0, 1]"
        );
        Self {
            config,
            trees: Vec::new(),
            base_score: 0.0,
            split_counts: Vec::new(),
            gain_sums: Vec::new(),
            flat: FlatForest::new(),
        }
    }

    /// Whether the model has been fit.
    pub fn is_fit(&self) -> bool {
        !self.trees.is_empty()
    }

    /// Number of trees in the fitted ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Split-count feature importance (length = `n_features` of the
    /// training data). This is the "weight" importance Fig 7 plots.
    pub fn feature_importance(&self) -> &[u64] {
        &self.split_counts
    }

    /// Gain feature importance: total structure-gain contributed by each
    /// feature's splits. More faithful to predictive value than split
    /// counts when features have very different split granularities.
    pub fn feature_gain(&self) -> &[f64] {
        &self.gain_sums
    }

    /// Whether the flat pool mirrors the enum trees. False only mid-fit
    /// (the pool rebuilds once at fit end) — every load path builds it.
    #[inline]
    fn flat_is_fresh(&self) -> bool {
        !self.trees.is_empty() && self.flat.n_trees() == self.trees.len()
    }

    /// Raw margin (log-odds) for a row. Descends the branch-lite flat
    /// pool when it is in sync with the trees (every fitted/loaded
    /// model); falls back to the enum walk mid-fit. Both paths are
    /// bit-identical — same comparisons, same f64 accumulation order.
    pub fn predict_margin(&self, row: &[f64]) -> f64 {
        if self.flat_is_fresh() {
            self.flat.margin(self.base_score, row)
        } else {
            self.predict_margin_recursive(row)
        }
    }

    /// The pre-flat enum-arena walk, kept as the comparison baseline
    /// (`exp_scaling` measures flat vs recursive) and the mid-fit path
    /// while the flat pool is stale.
    pub fn predict_margin_recursive(&self, row: &[f64]) -> f64 {
        let mut m = self.base_score;
        for t in &self.trees {
            m += t.predict(row);
        }
        m
    }

    /// Batch margins over a column-major feature matrix: rows in chunks
    /// of 8, trees tree-major per chunk (see
    /// [`FlatForest::margin_batch`]). Output row `i` is bit-identical to
    /// `predict_margin` of that row.
    pub fn predict_margin_batch(&self, cols: &ColMatrix) -> Vec<f64> {
        let mut out = Vec::new();
        if self.flat_is_fresh() {
            self.flat.margin_batch(cols, self.base_score, &mut out);
        } else {
            let mut row = vec![0.0; cols.n_cols()];
            for r in 0..cols.n_rows() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = cols.at(r, c);
                }
                out.push(self.predict_margin_recursive(&row));
            }
        }
        out
    }

    /// Binary (`CATS-IO2` section payload) encoding: a small JSON head
    /// (config, base score, importances) followed by the forest as flat
    /// little-endian arrays. Deterministic — the same model always
    /// yields the same bytes.
    pub fn to_io2_bytes(&self) -> Result<Vec<u8>, String> {
        let head = GbtHead {
            config: self.config,
            base_score: self.base_score,
            split_counts: self.split_counts.clone(),
            gain_sums: self.gain_sums.clone(),
        };
        let head_json = serde_json::to_string(&head).map_err(|e| e.to_string())?;
        let flat =
            if self.flat_is_fresh() { self.flat.clone() } else { flatten_trees(&self.trees) };
        let mut e = cats_io::io2::Enc::new();
        e.str(&head_json).u8s(&flat.to_bytes());
        Ok(e.into_bytes())
    }

    /// Decodes [`GradientBoostedTrees::to_io2_bytes`]. The flat pool is
    /// taken as stored (so re-encoding is byte-identical) and the enum
    /// arena is reconstructed from it; split feature indices are
    /// validated against the feature count.
    pub fn from_io2_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut d = cats_io::io2::Dec::new(bytes);
        let head: GbtHead =
            serde_json::from_str(&d.str()?).map_err(|e| format!("gbt head: {e}"))?;
        let flat = FlatForest::from_bytes(&d.u8s()?)?;
        let n_features = head.split_counts.len();
        if head.gain_sums.len() != n_features {
            return Err(format!(
                "gbt head: importance arrays disagree ({n_features} vs {})",
                head.gain_sums.len()
            ));
        }
        if let Some(f) = flat.max_feature() {
            if f as usize >= n_features {
                return Err(format!(
                    "forest references feature {f} but the model has {n_features} features"
                ));
            }
        }
        let trees = unflatten_trees(&flat)?;
        Ok(Self {
            config: head.config,
            trees,
            base_score: head.base_score,
            split_counts: head.split_counts,
            gain_sums: head.gain_sums,
            flat,
        })
    }
}

/// JSON head of the binary GBT encoding — everything except the forest.
#[derive(Serialize, Deserialize)]
struct GbtHead {
    config: GbtConfig,
    base_score: f64,
    split_counts: Vec<u64>,
    gain_sums: Vec<f64>,
}

/// Rebuilds enum-arena trees from a flat pool. Relies on the builder's
/// layout invariant that tree `t`'s nodes occupy the contiguous index
/// range `[roots[t], roots[t+1])`; links escaping their tree's range are
/// rejected (a crafted file must not panic downstream walks).
fn unflatten_trees(flat: &FlatForest) -> Result<Vec<RegTree>, String> {
    let mut trees = Vec::with_capacity(flat.n_trees());
    for t in 0..flat.n_trees() {
        let start = flat.root(t) as usize;
        let end = if t + 1 < flat.n_trees() { flat.root(t + 1) as usize } else { flat.n_nodes() };
        if end <= start {
            return Err(format!("tree {t}: roots are not strictly increasing"));
        }
        let mut nodes = Vec::with_capacity(end - start);
        for i in start..end {
            let f = flat.node_feature(i);
            if f == crate::flat::LEAF {
                nodes.push(Node::Leaf { weight: flat.node_leaf(i) });
            } else {
                let l = flat.node_left(i) as usize;
                if l + 1 >= end {
                    return Err(format!("tree {t}: node {i} links outside its tree"));
                }
                nodes.push(Node::Split {
                    feature: f as usize,
                    threshold: flat.node_threshold(i),
                    left: l - start,
                    right: l + 1 - start,
                });
            }
        }
        trees.push(RegTree { nodes });
    }
    Ok(trees)
}

impl GradientBoostedTrees {
    /// Fits with early stopping: after each boosting round the model is
    /// scored on `valid` (log-loss); training stops once the loss has not
    /// improved for `patience` consecutive rounds, and the tree list is
    /// truncated back to the best round. Returns the number of trees
    /// kept.
    pub fn fit_early_stopping(
        &mut self,
        train: &Dataset,
        valid: &Dataset,
        patience: usize,
    ) -> usize {
        assert!(patience > 0, "patience must be positive");
        assert!(!valid.is_empty(), "validation set must be non-empty");
        self.fit_impl(train, Some((valid, patience)), None);
        self.trees.len()
    }

    /// Fits with crash recovery: every `every` completed boosting rounds
    /// the ensemble state is checkpointed into `store` under `stage`, and
    /// a rerun after a crash resumes from the last checkpoint instead of
    /// round zero. Boosting is deterministic given (data, config) — the
    /// per-round RNG draws depend only on the dataset shape, so a resume
    /// replays the completed rounds' draws and continues with the RNG
    /// exactly where an uninterrupted run would have it. The resumed
    /// model is therefore bit-identical to an uninterrupted fit. The
    /// checkpoint is cleared on successful completion; one whose config
    /// or data fingerprint does not match is ignored.
    pub fn fit_checkpointed(
        &mut self,
        data: &Dataset,
        store: &cats_io::CheckpointStore,
        stage: &str,
        every: usize,
    ) {
        assert!(every > 0, "checkpoint cadence must be positive");
        self.fit_impl(data, None, Some((store, stage, every)));
    }

    /// Mean log-loss of the current model on `data`.
    pub fn log_loss(&self, data: &Dataset) -> f64 {
        assert!(!data.is_empty(), "log-loss of empty dataset");
        let mut sum = 0.0;
        for i in 0..data.len() {
            let p = sigmoid(self.predict_margin(data.row(i))).clamp(1e-12, 1.0 - 1e-12);
            sum -= if data.label(i) == 1 { p.ln() } else { (1.0 - p).ln() };
        }
        sum / data.len() as f64
    }

    fn fit_impl(
        &mut self,
        data: &Dataset,
        early: Option<(&Dataset, usize)>,
        ckpt: Option<(&cats_io::CheckpointStore, &str, usize)>,
    ) {
        assert!(!data.is_empty(), "cannot fit GBT on an empty dataset");
        let _span = cats_obs::span!("cats.ml.gbt.fit", { data.len() });
        let cfg = self.config;
        let n = data.len();
        self.trees.clear();
        // The flat pool is rebuilt once at fit end; while trees are
        // growing it stays empty so predict_margin (early-stopping
        // log-loss) walks the enum arena.
        self.flat = FlatForest::new();
        self.split_counts = vec![0; data.n_features()];
        self.gain_sums = vec![0.0; data.n_features()];

        // One transpose up front: split scans walk whole feature columns
        // (and re-walk them once per node), so contiguous columns beat
        // the row-major matrix's n_features-strided reads.
        let cols = data.to_cols();

        // Base score: log-odds of the positive prior (clamped away from
        // degenerate single-class priors).
        let pos = data.n_positive() as f64;
        let prior = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        self.base_score = (prior / (1.0 - prior)).ln();

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut margins = vec![self.base_score; n];
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];

        // Parallelism for row-linear passes (feature pre-sorts, gradient
        // and margin recomputation). Gated on the dataset size.
        let row_par = par_if(cfg.parallelism, n >= PAR_MIN_ROWS);

        // Quantile candidate thresholds per feature (histogram mode).
        let candidates: Option<Vec<Vec<f64>>> = match cfg.split_mode {
            SplitMode::Exact => None,
            SplitMode::Histogram { bins } => {
                assert!(bins >= 2, "histogram mode needs at least 2 bins");
                Some(cats_par::map_indexed(row_par, data.n_features(), |f| {
                    quantile_thresholds(cols.col(f), bins)
                }))
            }
        };

        // Pre-sorted feature orders, reused by every tree.
        let sorted: Vec<Vec<u32>> = cats_par::map_indexed(row_par, data.n_features(), |f| {
            let col = cols.col(f);
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.sort_by(|&a, &b| {
                col[a as usize].partial_cmp(&col[b as usize]).unwrap_or(std::cmp::Ordering::Equal)
            });
            idx
        });

        let mut best_valid_loss = f64::INFINITY;
        let mut best_round = 0usize;
        let mut rounds_since_best = 0usize;

        // Crash recovery: restore the last valid checkpoint, rebuild the
        // margins tree by tree (same f64 addition order as the original
        // rounds), and replay the completed rounds' RNG draws so the
        // stream continues exactly where an uninterrupted run would be.
        // `rounds_done` counts loop iterations, not trees: a round whose
        // subsample comes up empty contributes draws but no tree.
        let fingerprint = ckpt.map(|_| ckpt_fingerprint(&cfg, data));
        let mut start_round = 0usize;
        if let (Some((store, stage, _)), Some(fp)) = (ckpt, fingerprint) {
            if let Some(bytes) = store.load(stage) {
                match serde_json::from_slice::<GbtCheckpoint>(&bytes) {
                    Ok(c)
                        if c.fingerprint == fp
                            && c.rounds_done <= cfg.n_trees
                            && c.trees.len() <= c.rounds_done
                            && c.split_counts.len() == data.n_features()
                            && c.gain_sums.len() == data.n_features() =>
                    {
                        self.trees = c.trees;
                        self.base_score = c.base_score;
                        self.split_counts = c.split_counts;
                        self.gain_sums = c.gain_sums;
                        for tree in &self.trees {
                            let deltas =
                                cats_par::map_indexed(row_par, n, |i| tree.predict(data.row(i)));
                            for (m, d) in margins.iter_mut().zip(&deltas) {
                                *m += d;
                            }
                        }
                        for _ in 0..c.rounds_done {
                            if cfg.subsample < 1.0 {
                                for _ in 0..n {
                                    let _ = rng.random::<f64>();
                                }
                            }
                            if cfg.colsample < 1.0 {
                                for i in (1..data.n_features()).rev() {
                                    let _ = rng.random_range(0..=i);
                                }
                            }
                        }
                        start_round = c.rounds_done;
                        cats_obs::counter("cats.ml.gbt.resumed_rounds").add(start_round as u64);
                    }
                    _ => {
                        cats_obs::counter("cats.ml.gbt.ckpt_rejected").inc();
                        eprintln!("cats-ml: ignoring mismatched gbt checkpoint ({stage})");
                    }
                }
            }
        }

        // Per-round training-progress gauge: mean |p − y| is already on
        // hand in the gradient pass, so publishing it costs one add per
        // row and no extra log/exp work.
        let round_err = cats_obs::gauge("cats.ml.gbt.round_mean_abs_grad");
        for round in start_round..cfg.n_trees {
            let _round_span = cats_obs::span!("cats.ml.gbt.round");
            let gh = cats_par::map_indexed(row_par, n, |i| {
                let p = sigmoid(margins[i]);
                (p - f64::from(data.label(i)), (p * (1.0 - p)).max(1e-16))
            });
            let mut abs_grad = 0.0f64;
            for (i, &(g, h)) in gh.iter().enumerate() {
                grad[i] = g;
                hess[i] = h;
                abs_grad += g.abs();
            }
            round_err.set(abs_grad / n as f64);
            let in_sample: Vec<bool> = if cfg.subsample < 1.0 {
                (0..n).map(|_| rng.random::<f64>() < cfg.subsample).collect()
            } else {
                vec![true; n]
            };
            // Per-tree feature mask: keep at least one feature.
            let feature_mask: Vec<bool> = if cfg.colsample < 1.0 {
                let nf = data.n_features();
                let keep = (((nf as f64) * cfg.colsample).round() as usize).clamp(1, nf);
                let mut idx: Vec<usize> = (0..nf).collect();
                for i in (1..nf).rev() {
                    let j = rng.random_range(0..=i);
                    idx.swap(i, j);
                }
                let mut mask = vec![false; nf];
                for &f in &idx[..keep] {
                    mask[f] = true;
                }
                mask
            } else {
                vec![true; data.n_features()]
            };

            let mut builder = TreeBuilder {
                data,
                cols: &cols,
                grad: &grad,
                hess: &hess,
                sorted: &sorted,
                candidates: candidates.as_deref(),
                feature_mask: &feature_mask,
                cfg: &cfg,
                nodes: Vec::new(),
                split_counts: &mut self.split_counts,
                gain_sums: &mut self.gain_sums,
            };
            let members: Vec<u32> = (0..n as u32).filter(|&i| in_sample[i as usize]).collect();
            if members.is_empty() {
                continue;
            }
            builder.build(members, 0);
            let tree = RegTree { nodes: builder.nodes };
            let tree_ref = &tree;
            let deltas = cats_par::map_indexed(row_par, n, |i| tree_ref.predict(data.row(i)));
            for (m, d) in margins.iter_mut().zip(&deltas) {
                *m += d;
            }
            self.trees.push(tree);

            if let Some((valid, patience)) = early {
                let loss = self.log_loss(valid);
                if loss + 1e-12 < best_valid_loss {
                    best_valid_loss = loss;
                    best_round = self.trees.len();
                    rounds_since_best = 0;
                } else {
                    rounds_since_best += 1;
                    if rounds_since_best >= patience {
                        break;
                    }
                }
            }

            if let (Some((store, stage, every)), Some(fp)) = (ckpt, fingerprint) {
                let done = round + 1;
                if done % every == 0 && done < cfg.n_trees {
                    let state = GbtCheckpoint {
                        fingerprint: fp,
                        rounds_done: done,
                        base_score: self.base_score,
                        trees: self.trees.clone(),
                        split_counts: self.split_counts.clone(),
                        gain_sums: self.gain_sums.clone(),
                    };
                    match serde_json::to_vec(&state) {
                        // A failed save costs the resume point, never the
                        // fit; the next cadence point retries.
                        Ok(bytes) => {
                            if let Err(e) = store.save(stage, &bytes) {
                                eprintln!("cats-ml: gbt checkpoint save failed ({stage}): {e}");
                            }
                        }
                        Err(e) => {
                            eprintln!("cats-ml: gbt checkpoint encode failed ({stage}): {e}")
                        }
                    }
                }
            }
        }
        if early.is_some() {
            self.trees.truncate(best_round.max(1));
        }
        self.flat = flatten_trees(&self.trees);
        if let Some((store, stage, _)) = ckpt {
            store.clear(stage);
        }
    }
}

/// Persisted mid-fit state of a checkpointed boosting run.
#[derive(Serialize, Deserialize)]
struct GbtCheckpoint {
    /// CRC over the config, dataset shape and labels; a mismatch means
    /// the checkpoint belongs to some other run and must be ignored.
    fingerprint: u32,
    /// Boosting rounds fully completed — loop iterations, which can
    /// exceed `trees.len()` when a subsampled round came up empty.
    rounds_done: usize,
    base_score: f64,
    trees: Vec<RegTree>,
    split_counts: Vec<u64>,
    gain_sums: Vec<f64>,
}

/// Fingerprint tying a checkpoint to one (config, dataset) pair. Covers
/// every hyperparameter that shapes the RNG stream or the trees, the
/// dataset shape, and a CRC of the labels (a cheap stand-in for the full
/// feature matrix). Parallelism is excluded: fits are bit-identical at
/// every thread count, so a resume may legally change it.
fn ckpt_fingerprint(cfg: &GbtConfig, data: &Dataset) -> u32 {
    let desc = format!(
        "gbt n_trees={} max_depth={} eta={} lambda={} gamma={} min_child_weight={} subsample={} \
         seed={} split_mode={:?} colsample={} rows={} features={} labels={:08x}",
        cfg.n_trees,
        cfg.max_depth,
        cfg.eta,
        cfg.lambda,
        cfg.gamma,
        cfg.min_child_weight,
        cfg.subsample,
        cfg.seed,
        cfg.split_mode,
        cfg.colsample,
        data.len(),
        data.n_features(),
        cats_io::crc32(data.labels()),
    );
    cats_io::crc32(desc.as_bytes())
}

impl Classifier for GradientBoostedTrees {
    fn fit(&mut self, data: &Dataset) {
        self.fit_impl(data, None, None);
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        assert!(self.is_fit(), "predict before fit");
        sigmoid(self.predict_margin(row))
    }

    fn predict_proba_batch(&self, cols: &ColMatrix) -> Vec<f64> {
        assert!(self.is_fit(), "predict before fit");
        // margin_batch is bit-identical to per-row predict_margin, and
        // sigmoid is a pure per-element map, so this override keeps the
        // trait's bit-identity contract while scoring tree-major.
        self.predict_margin_batch(cols).into_iter().map(sigmoid).collect()
    }

    fn name(&self) -> &'static str {
        "Xgboost"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Global quantile thresholds of one feature column: up to `bins − 1`
/// distinct cut points at evenly spaced sample quantiles.
fn quantile_thresholds(col: &[f64], bins: usize) -> Vec<f64> {
    let mut values: Vec<f64> = col.to_vec();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = Vec::with_capacity(bins.saturating_sub(1));
    for b in 1..bins {
        let idx = (b * values.len()) / bins;
        let v = values[idx.min(values.len() - 1)];
        if out.last().is_none_or(|&last| v > last) {
            out.push(v);
        }
    }
    out
}

/// Grows one regression tree over (grad, hess).
struct TreeBuilder<'a> {
    data: &'a Dataset,
    /// Column-major mirror of `data`'s features: scans touch one feature
    /// across many rows, which is contiguous here.
    cols: &'a ColMatrix,
    grad: &'a [f64],
    hess: &'a [f64],
    sorted: &'a [Vec<u32>],
    candidates: Option<&'a [Vec<f64>]>,
    feature_mask: &'a [bool],
    cfg: &'a GbtConfig,
    nodes: Vec<Node>,
    split_counts: &'a mut [u64],
    gain_sums: &'a mut [f64],
}

impl TreeBuilder<'_> {
    fn build(&mut self, members: Vec<u32>, depth: usize) -> usize {
        let g: f64 = members.iter().map(|&i| self.grad[i as usize]).sum();
        let h: f64 = members.iter().map(|&i| self.hess[i as usize]).sum();
        let leaf_weight = -g / (h + self.cfg.lambda) * self.cfg.eta;

        if depth >= self.cfg.max_depth || members.len() < 2 {
            self.nodes.push(Node::Leaf { weight: leaf_weight });
            return self.nodes.len() - 1;
        }

        let Some((feature, threshold, gain)) = self.best_split(&members, g, h) else {
            self.nodes.push(Node::Leaf { weight: leaf_weight });
            return self.nodes.len() - 1;
        };

        let col = self.cols.col(feature);
        let (left, right): (Vec<u32>, Vec<u32>) =
            members.into_iter().partition(|&i| col[i as usize] < threshold);
        if left.is_empty() || right.is_empty() {
            self.nodes.push(Node::Leaf { weight: leaf_weight });
            return self.nodes.len() - 1;
        }

        self.split_counts[feature] += 1;
        self.gain_sums[feature] += gain;
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: leaf_weight });
        let l = self.build(left, depth + 1);
        let r = self.build(right, depth + 1);
        self.nodes[me] = Node::Split { feature, threshold, left: l, right: r };
        me
    }

    fn best_split(&self, members: &[u32], g_total: f64, h_total: f64) -> Option<(usize, f64, f64)> {
        match self.candidates {
            None => self.best_split_exact(members, g_total, h_total),
            Some(c) => self.best_split_histogram(members, g_total, h_total, c),
        }
    }

    /// Histogram split: features scan independently — in parallel on
    /// large nodes — and the per-feature bests fold in feature order.
    /// Per-feature (G, H) accumulation order is untouched, so the result
    /// is bit-identical to the serial sweep.
    fn best_split_histogram(
        &self,
        members: &[u32],
        g_total: f64,
        h_total: f64,
        candidates: &[Vec<f64>],
    ) -> Option<(usize, f64, f64)> {
        let par = par_if(self.cfg.parallelism, members.len() >= PAR_MIN_SPLIT_MEMBERS);
        let per_feature = cats_par::map_indexed(par, candidates.len(), |feature| {
            self.scan_feature_histogram(feature, members, &candidates[feature], g_total, h_total)
        });
        fold_feature_bests(per_feature)
    }

    /// One feature's histogram scan: accumulate (G, H) per global quantile
    /// bucket, then scan the O(bins) boundaries. Returns
    /// `(gain, feature, threshold)` of the feature's best candidate.
    fn scan_feature_histogram(
        &self,
        feature: usize,
        members: &[u32],
        thresholds: &[f64],
        g_total: f64,
        h_total: f64,
    ) -> Option<(f64, usize, f64)> {
        let cfg = self.cfg;
        if thresholds.is_empty() || !self.feature_mask[feature] {
            return None;
        }
        let parent_score = g_total * g_total / (h_total + cfg.lambda);
        let mut best: Option<(f64, usize, f64)> = None;
        // Bucket b holds rows with value < thresholds[b]; the last
        // bucket is everything >= the final threshold.
        let mut g_bins = vec![0.0f64; thresholds.len() + 1];
        let mut h_bins = vec![0.0f64; thresholds.len() + 1];
        let col = self.cols.col(feature);
        for &i in members {
            let v = col[i as usize];
            let b = thresholds.partition_point(|&t| t <= v);
            g_bins[b] += self.grad[i as usize];
            h_bins[b] += self.hess[i as usize];
        }
        let mut gl = 0.0;
        let mut hl = 0.0;
        for (b, &t) in thresholds.iter().enumerate() {
            gl += g_bins[b];
            hl += h_bins[b];
            let gr = g_total - gl;
            let hr = h_total - hl;
            if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                continue;
            }
            let gain = 0.5
                * (gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score)
                - cfg.gamma;
            if gain > 1e-12 && best.as_ref().is_none_or(|(bg, _, _)| gain > *bg) {
                best = Some((gain, feature, t));
            }
        }
        best
    }

    /// Exact greedy split over the node's members. Features scan
    /// independently (in parallel on large nodes) and fold in feature
    /// order, bit-identical to the serial sweep.
    fn best_split_exact(
        &self,
        members: &[u32],
        g_total: f64,
        h_total: f64,
    ) -> Option<(usize, f64, f64)> {
        let mut in_node = vec![false; self.data.len()];
        for &i in members {
            in_node[i as usize] = true;
        }
        let in_node = &in_node;
        let par = par_if(self.cfg.parallelism, members.len() >= PAR_MIN_SPLIT_MEMBERS);
        let per_feature = cats_par::map_indexed(par, self.sorted.len(), |feature| {
            self.scan_feature_exact(feature, in_node, g_total, h_total)
        });
        fold_feature_bests(per_feature)
    }

    /// One feature's exact greedy scan, walking the node's members in
    /// globally pre-sorted order.
    fn scan_feature_exact(
        &self,
        feature: usize,
        in_node: &[bool],
        g_total: f64,
        h_total: f64,
    ) -> Option<(f64, usize, f64)> {
        if !self.feature_mask[feature] {
            return None;
        }
        let cfg = self.cfg;
        let parent_score = g_total * g_total / (h_total + cfg.lambda);
        let mut best: Option<(f64, usize, f64)> = None;
        let mut gl = 0.0;
        let mut hl = 0.0;
        let mut prev_val: Option<f64> = None;
        let col = self.cols.col(feature);
        for &i in &self.sorted[feature] {
            let i = i as usize;
            if !in_node[i] {
                continue;
            }
            let v = col[i];
            if let Some(pv) = prev_val {
                if v > pv && hl >= cfg.min_child_weight {
                    let gr = g_total - gl;
                    let hr = h_total - hl;
                    if hr >= cfg.min_child_weight {
                        let gain = 0.5
                            * (gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda)
                                - parent_score)
                            - cfg.gamma;
                        if gain > 1e-12 && best.as_ref().is_none_or(|(bg, _, _)| gain > *bg) {
                            best = Some((gain, feature, (pv + v) / 2.0));
                        }
                    }
                }
            }
            gl += self.grad[i];
            hl += self.hess[i];
            prev_val = Some(v);
        }
        best
    }
}

/// Folds per-feature `(gain, feature, threshold)` results in feature order
/// with the same strict `gain >` comparison the serial sweep used: the
/// first feature (and first candidate within it) reaching the maximum gain
/// wins, exactly as in a single serial pass.
fn fold_feature_bests(per_feature: Vec<Option<(f64, usize, f64)>>) -> Option<(usize, f64, f64)> {
    let mut best: Option<(f64, usize, f64)> = None;
    for cand in per_feature.into_iter().flatten() {
        if best.as_ref().is_none_or(|(bg, _, _)| cand.0 > *bg) {
            best = Some(cand);
        }
    }
    best.map(|(g, f, t)| (f, t, g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::predict_all;
    use crate::data::Dataset;

    fn cfg_small() -> GbtConfig {
        GbtConfig { n_trees: 30, max_depth: 3, eta: 0.3, subsample: 1.0, ..GbtConfig::default() }
    }

    /// Noisy linearly separable data on feature 0.
    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..n {
            let x = i as f64 / n as f64;
            d.push(&[1.0 + x, x, (i % 7) as f64], 1);
            d.push(&[-1.0 - x, x, (i % 5) as f64], 0);
        }
        d
    }

    #[test]
    fn fits_separable_data() {
        let d = separable(100);
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        let preds = predict_all(&m, &d);
        let correct = preds.iter().zip(d.labels()).filter(|(p, &l)| **p == (l == 1)).count();
        assert_eq!(correct, d.len());
    }

    #[test]
    fn solves_xor_unlike_a_stump() {
        let mut d = Dataset::new(2);
        for _ in 0..20 {
            d.push(&[0.0, 0.0], 0);
            d.push(&[0.0, 1.0], 1);
            d.push(&[1.0, 0.0], 1);
            d.push(&[1.0, 1.0], 0);
        }
        // Full-batch exact greedy finds zero gain at the XOR root (both
        // children inherit G = 0); row subsampling breaks the symmetry.
        let mut m = GradientBoostedTrees::new(GbtConfig { subsample: 0.7, ..cfg_small() });
        m.fit(&d);
        assert!(!m.predict(&[0.0, 0.0]));
        assert!(m.predict(&[0.0, 1.0]));
        assert!(m.predict(&[1.0, 0.0]));
        assert!(!m.predict(&[1.0, 1.0]));
    }

    #[test]
    fn probabilities_in_unit_interval_and_finite() {
        let d = separable(50);
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        for i in 0..d.len() {
            let p = m.predict_proba(d.row(i));
            assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn importance_concentrates_on_informative_feature() {
        let d = separable(200);
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        let imp = m.feature_importance();
        assert_eq!(imp.len(), 3);
        assert!(imp[0] > imp[1] && imp[0] > imp[2], "feature 0 should dominate: {imp:?}");
    }

    #[test]
    fn gain_importance_tracks_split_importance() {
        let d = separable(200);
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        let gains = m.feature_gain();
        assert_eq!(gains.len(), 3);
        assert!(gains.iter().all(|g| g.is_finite() && *g >= 0.0));
        // The informative feature dominates by gain too.
        assert!(gains[0] > gains[1] && gains[0] > gains[2], "{gains:?}");
        // Features never split have zero accumulated gain.
        for (f, (&c, &g)) in m.feature_importance().iter().zip(gains).enumerate() {
            if c == 0 {
                assert_eq!(g, 0.0, "feature {f} has gain without splits");
            } else {
                assert!(g > 0.0, "feature {f} split {c} times with zero gain");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = separable(60);
        let mut a = GradientBoostedTrees::new(cfg_small());
        let mut b = GradientBoostedTrees::new(cfg_small());
        a.fit(&d);
        b.fit(&d);
        for i in 0..d.len() {
            assert_eq!(a.predict_proba(d.row(i)), b.predict_proba(d.row(i)));
        }
    }

    #[test]
    fn subsampling_still_learns() {
        let d = separable(150);
        let mut m =
            GradientBoostedTrees::new(GbtConfig { subsample: 0.6, n_trees: 60, ..cfg_small() });
        m.fit(&d);
        let preds = predict_all(&m, &d);
        let correct = preds.iter().zip(d.labels()).filter(|(p, &l)| **p == (l == 1)).count();
        assert!(correct as f64 / d.len() as f64 > 0.95);
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push(&[i as f64], 1);
        }
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        assert!(m.predict_proba(&[5.0]) > 0.9);
    }

    #[test]
    fn gamma_prunes_trees() {
        let d = separable(100);
        let mut free = GradientBoostedTrees::new(GbtConfig { gamma: 0.0, ..cfg_small() });
        let mut strict = GradientBoostedTrees::new(GbtConfig { gamma: 1e6, ..cfg_small() });
        free.fit(&d);
        strict.fit(&d);
        let splits_free: u64 = free.feature_importance().iter().sum();
        let splits_strict: u64 = strict.feature_importance().iter().sum();
        assert!(splits_strict < splits_free, "{splits_strict} vs {splits_free}");
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        GradientBoostedTrees::new(cfg_small()).predict_proba(&[0.0, 0.0, 0.0]);
    }

    #[test]
    fn margin_matches_proba() {
        let d = separable(40);
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        let row = d.row(0);
        assert!((sigmoid(m.predict_margin(row)) - m.predict_proba(row)).abs() < 1e-15);
    }

    #[test]
    fn colsample_restricts_but_still_learns() {
        // With 3 features of which feature 0 carries the signal,
        // colsample 0.67 keeps 2 of 3 per tree; across many trees the
        // informative feature participates often enough to learn.
        let d = separable(150);
        let mut m =
            GradientBoostedTrees::new(GbtConfig { colsample: 0.67, n_trees: 60, ..cfg_small() });
        m.fit(&d);
        let acc =
            predict_all(&m, &d).iter().zip(d.labels()).filter(|(p, &l)| **p == (l == 1)).count()
                as f64
                / d.len() as f64;
        assert!(acc > 0.95, "colsample accuracy {acc}");
        // and the other features get split chances they wouldn't otherwise
        let imp = m.feature_importance();
        assert!(imp.iter().filter(|&&c| c > 0).count() >= 2, "{imp:?}");
    }

    #[test]
    #[should_panic(expected = "colsample in (0, 1]")]
    fn zero_colsample_rejected() {
        GradientBoostedTrees::new(GbtConfig { colsample: 0.0, ..cfg_small() });
    }

    #[test]
    fn histogram_mode_learns_separable_data() {
        let d = separable(150);
        let mut m = GradientBoostedTrees::new(GbtConfig {
            split_mode: SplitMode::Histogram { bins: 16 },
            ..cfg_small()
        });
        m.fit(&d);
        let preds = predict_all(&m, &d);
        let acc = preds.iter().zip(d.labels()).filter(|(p, &l)| **p == (l == 1)).count() as f64
            / d.len() as f64;
        assert!(acc > 0.97, "histogram-mode accuracy {acc}");
    }

    #[test]
    fn histogram_and_exact_agree_closely() {
        let d = separable(200);
        let mut exact = GradientBoostedTrees::new(cfg_small());
        let mut hist = GradientBoostedTrees::new(GbtConfig {
            split_mode: SplitMode::Histogram { bins: 32 },
            ..cfg_small()
        });
        exact.fit(&d);
        hist.fit(&d);
        let disagreements =
            (0..d.len()).filter(|&i| exact.predict(d.row(i)) != hist.predict(d.row(i))).count();
        assert!(
            disagreements * 20 <= d.len(),
            "modes disagree on {disagreements}/{} rows",
            d.len()
        );
    }

    #[test]
    fn quantile_thresholds_sorted_distinct_bounded() {
        let mut d = Dataset::new(1);
        for i in 0..97 {
            d.push(&[(i % 13) as f64], u8::from(i % 2 == 0));
        }
        let col: Vec<f64> = (0..d.len()).map(|i| d.row(i)[0]).collect();
        let t = quantile_thresholds(&col, 8);
        assert!(t.len() <= 7);
        assert!(t.windows(2).all(|w| w[0] < w[1]), "{t:?}");
    }

    #[test]
    fn constant_feature_has_no_thresholds_but_trains() {
        let mut d = Dataset::new(2);
        for i in 0..40 {
            d.push(&[5.0, i as f64], u8::from(i >= 20));
        }
        let col: Vec<f64> = (0..d.len()).map(|i| d.row(i)[0]).collect();
        assert!(quantile_thresholds(&col, 8).len() <= 1);
        let mut m = GradientBoostedTrees::new(GbtConfig {
            split_mode: SplitMode::Histogram { bins: 8 },
            ..cfg_small()
        });
        m.fit(&d);
        assert!(m.predict(&[5.0, 35.0]));
        assert!(!m.predict(&[5.0, 5.0]));
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn single_bin_rejected() {
        let d = separable(10);
        GradientBoostedTrees::new(GbtConfig {
            split_mode: SplitMode::Histogram { bins: 1 },
            ..cfg_small()
        })
        .fit(&d);
    }

    #[test]
    fn early_stopping_truncates_and_matches_best_round() {
        // Train/valid split of separable data: validation loss improves
        // quickly then flattens; early stopping must keep fewer trees than
        // the full budget without hurting accuracy.
        let train = separable(120);
        let valid = separable(40);
        let cfg = GbtConfig { n_trees: 200, ..cfg_small() };
        let mut es = GradientBoostedTrees::new(cfg);
        let kept = es.fit_early_stopping(&train, &valid, 5);
        assert!(kept >= 1);
        assert!(kept < 200, "early stopping should fire before the budget: {kept}");
        assert_eq!(es.n_trees(), kept);
        let preds = predict_all(&es, &valid);
        let acc = preds.iter().zip(valid.labels()).filter(|(p, &l)| **p == (l == 1)).count() as f64
            / valid.len() as f64;
        assert!(acc > 0.95, "early-stopped model accuracy {acc}");
    }

    #[test]
    fn log_loss_decreases_with_training() {
        let d = separable(80);
        let mut short = GradientBoostedTrees::new(GbtConfig { n_trees: 1, ..cfg_small() });
        let mut long = GradientBoostedTrees::new(GbtConfig { n_trees: 30, ..cfg_small() });
        short.fit(&d);
        long.fit(&d);
        assert!(long.log_loss(&d) < short.log_loss(&d));
        assert!(long.log_loss(&d) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "patience must be positive")]
    fn zero_patience_rejected() {
        let d = separable(10);
        GradientBoostedTrees::new(cfg_small()).fit_early_stopping(&d, &d, 0);
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_serial() {
        // Large enough to cross both parallel gates (row count and node
        // member count), in both split modes.
        let d = separable(1500);
        for mode in [SplitMode::Exact, SplitMode::Histogram { bins: 16 }] {
            let base = GbtConfig { n_trees: 8, split_mode: mode, ..cfg_small() };
            let mut serial =
                GradientBoostedTrees::new(GbtConfig { parallelism: Parallelism::serial(), ..base });
            let mut parallel = GradientBoostedTrees::new(GbtConfig {
                parallelism: Parallelism::with_threads(8),
                ..base
            });
            serial.fit(&d);
            parallel.fit(&d);
            assert_eq!(serial.feature_importance(), parallel.feature_importance());
            for i in 0..d.len() {
                assert_eq!(
                    serial.predict_proba(d.row(i)).to_bits(),
                    parallel.predict_proba(d.row(i)).to_bits(),
                    "row {i} diverged in {mode:?}"
                );
            }
        }
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let d = separable(40);
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        let json = serde_json::to_string(&m).unwrap();
        let m2: GradientBoostedTrees = serde_json::from_str(&json).unwrap();
        for i in 0..d.len() {
            assert_eq!(m.predict_proba(d.row(i)), m2.predict_proba(d.row(i)));
        }
    }

    #[test]
    fn flat_walk_is_bit_identical_to_recursive_walk() {
        let d = separable(120);
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        assert!(m.flat_is_fresh(), "fit must rebuild the flat pool");
        for i in 0..d.len() {
            assert_eq!(
                m.predict_margin(d.row(i)).to_bits(),
                m.predict_margin_recursive(d.row(i)).to_bits(),
                "row {i}: flat and recursive walks diverged"
            );
        }
    }

    #[test]
    fn batch_margin_matches_scalar_bitwise() {
        // 59 rows: seven full chunks of 8 plus a ragged tail of 3.
        let d = separable(59);
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        let batch = m.predict_margin_batch(&d.to_cols());
        assert_eq!(batch.len(), d.len());
        for i in 0..d.len() {
            assert_eq!(batch[i].to_bits(), m.predict_margin(d.row(i)).to_bits(), "row {i}");
        }
    }

    #[test]
    fn io2_roundtrip_preserves_predictions_bitwise() {
        let d = separable(80);
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        let bytes = m.to_io2_bytes().unwrap();
        let m2 = GradientBoostedTrees::from_io2_bytes(&bytes).unwrap();
        for i in 0..d.len() {
            assert_eq!(
                m.predict_margin(d.row(i)).to_bits(),
                m2.predict_margin(d.row(i)).to_bits(),
                "row {i}: io2-decoded model diverged"
            );
            // The reconstructed enum arena (BFS node order) must score
            // identically to the original DFS arena as well.
            assert_eq!(
                m.predict_margin_recursive(d.row(i)).to_bits(),
                m2.predict_margin_recursive(d.row(i)).to_bits(),
                "row {i}: unflattened arena diverged"
            );
        }
        // The binary encoding is canonical: decode → encode is
        // byte-identical (the property `cats-cli convert` verifies).
        assert_eq!(m2.to_io2_bytes().unwrap(), bytes);
    }

    #[test]
    fn io2_decode_rejects_damaged_payloads() {
        let d = separable(40);
        let mut m = GradientBoostedTrees::new(cfg_small());
        m.fit(&d);
        let bytes = m.to_io2_bytes().unwrap();
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 9);
        assert!(GradientBoostedTrees::from_io2_bytes(&truncated).is_err());
        assert!(GradientBoostedTrees::from_io2_bytes(&[]).is_err());
    }

    fn ckpt_store(name: &str) -> cats_io::CheckpointStore {
        let dir = std::env::temp_dir().join(format!("cats_gbt_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        cats_io::CheckpointStore::open(&dir).expect("open checkpoint store")
    }

    /// Subsampled + column-sampled config: exercises both RNG replay
    /// paths on resume.
    fn cfg_ckpt() -> GbtConfig {
        GbtConfig { n_trees: 30, subsample: 0.7, colsample: 0.67, ..cfg_small() }
    }

    #[test]
    fn killed_fit_resumes_bit_identical() {
        let d = separable(100);
        let store = ckpt_store("kill");

        let mut uninterrupted = GradientBoostedTrees::new(cfg_ckpt());
        uninterrupted.fit_checkpointed(&d, &store, "gbt", 5);
        assert!(store.load("gbt").is_none(), "checkpoint cleared on completion");

        // Kill the run right after the second checkpoint (round 10) lands.
        store.kill_after_saves(2);
        let mut doomed = GradientBoostedTrees::new(cfg_ckpt());
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            doomed.fit_checkpointed(&d, &store, "gbt", 5)
        }));
        assert!(killed.is_err(), "simulated kill fires");
        assert!(store.load("gbt").is_some(), "a valid checkpoint survives the kill");

        let before = cats_obs::counter("cats.ml.gbt.resumed_rounds").get();
        let mut resumed = GradientBoostedTrees::new(cfg_ckpt());
        resumed.fit_checkpointed(&d, &store, "gbt", 5);
        assert!(
            cats_obs::counter("cats.ml.gbt.resumed_rounds").get() > before,
            "resume actually skipped completed rounds"
        );
        assert_eq!(uninterrupted.n_trees(), resumed.n_trees());
        assert_eq!(uninterrupted.feature_importance(), resumed.feature_importance());
        for i in 0..d.len() {
            assert_eq!(
                uninterrupted.predict_proba(d.row(i)).to_bits(),
                resumed.predict_proba(d.row(i)).to_bits(),
                "row {i} diverged after resume"
            );
        }
        assert!(store.load("gbt").is_none(), "checkpoint cleared after resume completes");
    }

    #[test]
    fn mismatched_checkpoint_is_ignored() {
        let d = separable(100);
        let store = ckpt_store("mismatch");

        // Leave a checkpoint from a fit with a different seed behind.
        store.kill_after_saves(1);
        let mut doomed = GradientBoostedTrees::new(GbtConfig { seed: 999, ..cfg_ckpt() });
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            doomed.fit_checkpointed(&d, &store, "gbt", 5)
        }));
        assert!(store.load("gbt").is_some());

        let mut from_dirty = GradientBoostedTrees::new(cfg_ckpt());
        from_dirty.fit_checkpointed(&d, &store, "gbt", 5);
        let mut clean = GradientBoostedTrees::new(cfg_ckpt());
        clean.fit(&d);
        for i in 0..d.len() {
            assert_eq!(
                from_dirty.predict_proba(d.row(i)).to_bits(),
                clean.predict_proba(d.row(i)).to_bits(),
                "a foreign checkpoint must not leak into the fit"
            );
        }
    }
}
