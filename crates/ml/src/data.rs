//! Dense datasets, splits, and standardization.

use crate::flat::ColMatrix;
use cats_io::io2::{Dec, Enc, Io2Builder, Io2File};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Byte-format version of the dataset `meta` section.
const DATASET_CODEC_VERSION: u32 = 1;

/// A dense binary-classification dataset: row-major feature matrix plus
/// 0/1 labels (1 = fraud in the CATS pipeline).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    n_features: usize,
    x: Vec<f64>,
    y: Vec<u8>,
}

impl Dataset {
    /// Creates an empty dataset for rows of width `n_features`.
    pub fn new(n_features: usize) -> Self {
        Self { n_features, x: Vec::new(), y: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if `row.len() != n_features` or `label > 1`.
    pub fn push(&mut self, row: &[f64], label: u8) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        assert!(label <= 1, "labels must be 0 or 1");
        self.x.extend_from_slice(row);
        self.y.push(label);
    }

    /// Builds a dataset from rows and labels.
    pub fn from_rows(rows: &[Vec<f64>], labels: &[u8]) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let n_features = rows.first().map_or(0, Vec::len);
        let mut d = Self::new(n_features);
        for (r, &l) in rows.iter().zip(labels) {
            d.push(r, l);
        }
        d
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Row width.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> u8 {
        self.y[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[u8] {
        &self.y
    }

    /// Count of positive (label 1) rows.
    pub fn n_positive(&self) -> usize {
        self.y.iter().filter(|&&l| l == 1).count()
    }

    /// The feature matrix transposed into column-major storage, so
    /// per-feature walks (split scans, batch tree descent) read
    /// contiguous memory instead of striding by `n_features`.
    pub fn to_cols(&self) -> ColMatrix {
        if self.n_features == 0 {
            return ColMatrix::default();
        }
        ColMatrix::from_row_major(&self.x, self.n_features)
    }

    /// Saves the dataset as a `CATS-IO2` container — sections `meta`
    /// (codec version and shape), `x` (feature matrix, raw little-endian
    /// f64), and `y` (labels). Loading is a bounds check plus a byte
    /// sweep; no JSON is parsed.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let mut meta = Enc::new();
        meta.u32(DATASET_CODEC_VERSION).u64(self.n_features as u64).u64(self.y.len() as u64);
        let mut x = Enc::new();
        x.f64s(&self.x);
        let mut y = Enc::new();
        y.u8s(&self.y);
        let mut container = Io2Builder::new();
        container
            .section("meta", meta.into_bytes())
            .section("x", x.into_bytes())
            .section("y", y.into_bytes());
        container.write(path).map_err(|e| e.to_string())
    }

    /// Loads a dataset saved by [`Dataset::save`], sniffing the format
    /// by magic: `CATS-IO2` containers decode binary; anything else
    /// falls back to the legacy serde-JSON encoding (optionally behind
    /// `CATS-IO1` framing).
    pub fn load(path: &Path) -> Result<Self, String> {
        let name = path.display().to_string();
        let bytes = cats_io::read_checksummed(path).map_err(|e| e.to_string())?;
        if !cats_io::io2::is_io2(&bytes) {
            return serde_json::from_slice(&bytes).map_err(|e| format!("{name}: {e}"));
        }
        let file = Io2File::parse(&bytes, &name).map_err(|e| e.to_string())?;
        let mut meta = Dec::new(file.require("meta", &name).map_err(|e| e.to_string())?);
        let version = meta.u32()?;
        if version != DATASET_CODEC_VERSION {
            return Err(format!(
                "{name}: dataset codec version {version} is newer than supported \
                 {DATASET_CODEC_VERSION}"
            ));
        }
        let n_features = meta.u64()? as usize;
        let n_rows = meta.u64()? as usize;
        let x = Dec::new(file.require("x", &name).map_err(|e| e.to_string())?).f64s()?;
        let y = Dec::new(file.require("y", &name).map_err(|e| e.to_string())?).u8s()?;
        if y.len() != n_rows || x.len() != n_rows.saturating_mul(n_features) {
            return Err(format!(
                "{name}: dataset shape mismatch: meta says {n_rows}×{n_features}, found \
                 x={} y={}",
                x.len(),
                y.len()
            ));
        }
        if y.iter().any(|&l| l > 1) {
            return Err(format!("{name}: labels must be 0 or 1"));
        }
        Ok(Self { n_features, x, y })
    }

    /// A new dataset containing the rows at `indices` (in that order).
    pub fn subset(&self, indices: &[usize]) -> Self {
        let mut d = Self::new(self.n_features);
        for &i in indices {
            d.push(self.row(i), self.y[i]);
        }
        d
    }

    /// Splits into (train, test) with the positive/negative ratio preserved
    /// in both halves. `test_fraction` of each class goes to the test set.
    pub fn stratified_split(&self, test_fraction: f64, seed: u64) -> (Self, Self) {
        assert!((0.0..1.0).contains(&test_fraction), "test_fraction in [0,1)");
        let folds = stratified_assignment(
            &self.y,
            ((1.0 / test_fraction.max(1e-9)).round() as usize).max(2),
            seed,
        );
        // Fold 0 is the test fold; its expected share is 1/k ≈ test_fraction.
        let (mut train_idx, mut test_idx) = (Vec::new(), Vec::new());
        for (i, &f) in folds.iter().enumerate() {
            if f == 0 {
                test_idx.push(i);
            } else {
                train_idx.push(i);
            }
        }
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Stratified k-fold assignment: returns `k` (train, test) pairs.
    pub fn stratified_kfold(&self, k: usize, seed: u64) -> Vec<(Self, Self)> {
        let folds = stratified_assignment(&self.y, k, seed);
        (0..k)
            .map(|f| {
                let (mut tr, mut te) = (Vec::new(), Vec::new());
                for (i, &fi) in folds.iter().enumerate() {
                    if fi == f {
                        te.push(i);
                    } else {
                        tr.push(i);
                    }
                }
                (self.subset(&tr), self.subset(&te))
            })
            .collect()
    }
}

/// Assigns each row a fold in `0..k`, shuffling within each class so every
/// fold receives an equal share of both classes (±1).
fn stratified_assignment(labels: &[u8], k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least 2 folds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut folds = vec![0usize; labels.len()];
    for class in [0u8, 1u8] {
        let mut idx: Vec<usize> =
            labels.iter().enumerate().filter(|(_, &l)| l == class).map(|(i, _)| i).collect();
        // Fisher–Yates shuffle.
        for i in (1..idx.len()).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        for (pos, &i) in idx.iter().enumerate() {
            folds[i] = pos % k;
        }
    }
    folds
}

/// Per-feature standardization (zero mean, unit variance), fit on training
/// data and applied to any dataset — required by the SVM and MLP, harmless
/// for trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations on `data`.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on an empty dataset");
        let nf = data.n_features();
        let n = data.len() as f64;
        let mut means = vec![0.0; nf];
        for i in 0..data.len() {
            for (m, &v) in means.iter_mut().zip(data.row(i)) {
                *m += v;
            }
        }
        means.iter_mut().for_each(|m| *m /= n);
        let mut vars = vec![0.0; nf];
        for i in 0..data.len() {
            for ((v, &x), &m) in vars.iter_mut().zip(data.row(i)).zip(&means) {
                *v += (x - m) * (x - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0 // constant feature: leave it centered, unscaled
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Transforms a single row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Returns a standardized copy of `data`.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new(data.n_features());
        let mut buf = vec![0.0; data.n_features()];
        for i in 0..data.len() {
            buf.copy_from_slice(data.row(i));
            self.transform_row(&mut buf);
            out.push(&buf, data.label(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_pos: usize, n_neg: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n_pos {
            d.push(&[i as f64, 1.0], 1);
        }
        for i in 0..n_neg {
            d.push(&[i as f64, -1.0], 0);
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy(3, 2);
        assert_eq!(d.len(), 5);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(0), &[0.0, 1.0]);
        assert_eq!(d.label(0), 1);
        assert_eq!(d.n_positive(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut d = Dataset::new(2);
        d.push(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "labels must be 0 or 1")]
    fn bad_label_rejected() {
        let mut d = Dataset::new(1);
        d.push(&[1.0], 2);
    }

    #[test]
    fn subset_preserves_rows() {
        let d = toy(2, 2);
        let s = d.subset(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), d.row(3));
        assert_eq!(s.label(1), 1);
    }

    #[test]
    fn stratified_split_preserves_ratio() {
        let d = toy(100, 300);
        let (tr, te) = d.stratified_split(0.25, 1);
        assert_eq!(tr.len() + te.len(), 400);
        let ratio_tr = tr.n_positive() as f64 / tr.len() as f64;
        let ratio_te = te.n_positive() as f64 / te.len() as f64;
        assert!((ratio_tr - 0.25).abs() < 0.02, "{ratio_tr}");
        assert!((ratio_te - 0.25).abs() < 0.02, "{ratio_te}");
    }

    #[test]
    fn kfold_partitions_all_rows_exactly_once() {
        let d = toy(30, 50);
        let folds = d.stratified_kfold(5, 2);
        assert_eq!(folds.len(), 5);
        let total_test: usize = folds.iter().map(|(_, te)| te.len()).sum();
        assert_eq!(total_test, 80);
        for (tr, te) in &folds {
            assert_eq!(tr.len() + te.len(), 80);
            // each fold keeps both classes
            assert!(te.n_positive() >= 5);
            assert!(te.len() - te.n_positive() >= 9);
        }
    }

    #[test]
    fn kfold_is_deterministic_per_seed() {
        let d = toy(20, 20);
        let a = d.stratified_kfold(4, 9);
        let b = d.stratified_kfold(4, 9);
        assert_eq!(a[0].1.labels(), b[0].1.labels());
        let c = d.stratified_kfold(4, 10);
        // different seed very likely shuffles differently
        let same = a
            .iter()
            .zip(&c)
            .all(|((_, x), (_, y))| x.labels() == y.labels() && x.row(0) == y.row(0));
        assert!(!same);
    }

    #[test]
    fn scaler_standardizes_train_data() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 10.0], 0);
        d.push(&[3.0, 30.0], 1);
        d.push(&[5.0, 50.0], 0);
        let sc = StandardScaler::fit(&d);
        let t = sc.transform(&d);
        for j in 0..2 {
            let mean: f64 = (0..3).map(|i| t.row(i)[j]).sum::<f64>() / 3.0;
            let var: f64 = (0..3).map(|i| (t.row(i)[j] - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
        // labels ride through unchanged
        assert_eq!(t.labels(), d.labels());
    }

    #[test]
    fn scaler_handles_constant_feature() {
        let mut d = Dataset::new(1);
        d.push(&[7.0], 0);
        d.push(&[7.0], 1);
        let sc = StandardScaler::fit(&d);
        let t = sc.transform(&d);
        assert_eq!(t.row(0)[0], 0.0);
        assert!(t.row(1)[0].is_finite());
    }

    #[test]
    fn from_rows_builder() {
        let d = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[0, 1]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(1), &[2.0]);
    }
}
