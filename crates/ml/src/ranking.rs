//! Threshold-free ranking metrics: ROC-AUC, precision–recall curves, and
//! average precision.
//!
//! The paper reports single operating points (Tables III & VI), but
//! choosing those points — the balanced threshold of the D1 evaluation,
//! the high-precision deployment threshold of the E-platform run —
//! requires the full score ranking. These utilities back the calibration
//! code in `cats-core` and the `exp_prcurve` experiment.

use serde::{Deserialize, Serialize};

/// One point of a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Sorts `(score, label)` pairs by descending score, NaN scores last.
fn ranked(scores: &[f64], labels: &[u8]) -> Vec<(f64, u8)> {
    assert_eq!(scores.len(), labels.len(), "scores/labels mismatch");
    let mut pairs: Vec<(f64, u8)> = scores.iter().copied().zip(labels.iter().copied()).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Less));
    pairs
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation,
/// with the standard ½ tie correction. Returns 0.5 when either class is
/// absent (no ranking information).
pub fn roc_auc(scores: &[f64], labels: &[u8]) -> f64 {
    let pairs = ranked(scores, labels);
    let n_pos = pairs.iter().filter(|(_, l)| *l == 1).count() as f64;
    let n_neg = pairs.len() as f64 - n_pos;
    if n_pos == 0.0 || n_neg == 0.0 {
        return 0.5;
    }
    // Walk descending scores; count (pos ranked above neg) pairs, ties ½.
    let mut auc = 0.0;
    let mut neg_seen = 0.0;
    let mut i = 0;
    while i < pairs.len() {
        // group of tied scores
        let mut j = i;
        let mut pos_in_group = 0.0;
        let mut neg_in_group = 0.0;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            if pairs[j].1 == 1 {
                pos_in_group += 1.0;
            } else {
                neg_in_group += 1.0;
            }
            j += 1;
        }
        // each positive in the group beats all negatives seen *after* the
        // group, ties with negatives inside it
        let neg_after = n_neg - neg_seen - neg_in_group;
        auc += pos_in_group * (neg_after + neg_in_group / 2.0);
        neg_seen += neg_in_group;
        i = j;
    }
    auc / (n_pos * n_neg)
}

/// The precision–recall curve: one point per distinct score threshold,
/// highest threshold first. Returns an empty curve when there are no
/// positive labels.
pub fn pr_curve(scores: &[f64], labels: &[u8]) -> Vec<PrPoint> {
    let pairs = ranked(scores, labels);
    let n_pos = pairs.iter().filter(|(_, l)| *l == 1).count() as f64;
    if n_pos == 0.0 {
        return Vec::new();
    }
    let mut curve = Vec::new();
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut i = 0;
    while i < pairs.len() {
        let t = pairs[i].0;
        while i < pairs.len() && pairs[i].0 == t {
            if pairs[i].1 == 1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        curve.push(PrPoint { threshold: t, precision: tp / (tp + fp), recall: tp / n_pos });
    }
    curve
}

/// Average precision: the PR curve integrated by recall increments
/// (the usual step-wise AP definition). 0 when there are no positives.
pub fn average_precision(scores: &[f64], labels: &[u8]) -> f64 {
    let curve = pr_curve(scores, labels);
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for p in &curve {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    ap
}

/// Recall achievable at a required precision: the maximum recall among
/// curve points with `precision >= min_precision` (0 if none).
pub fn recall_at_precision(scores: &[f64], labels: &[u8], min_precision: f64) -> f64 {
    pr_curve(scores, labels)
        .into_iter()
        .filter(|p| p.precision >= min_precision)
        .map(|p| p.recall)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1, 1, 0, 0];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [1, 1, 0, 0];
        assert!(roc_auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn random_constant_scores_have_auc_half() {
        let scores = [0.5; 6];
        let labels = [1, 0, 1, 0, 1, 0];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_auc_is_half() {
        assert_eq!(roc_auc(&[0.3, 0.7], &[1, 1]), 0.5);
        assert_eq!(roc_auc(&[0.3, 0.7], &[0, 0]), 0.5);
    }

    #[test]
    fn auc_known_value_with_one_inversion() {
        // ranking: pos(0.9), neg(0.8), pos(0.7), neg(0.1)
        // pairs: (p1,n1)✓ (p1,n2)✓ (p2,n1)✗ (p2,n2)✓ → 3/4
        let scores = [0.9, 0.8, 0.7, 0.1];
        let labels = [1, 0, 1, 0];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_monotone_recall_and_endpoints() {
        let scores = [0.9, 0.8, 0.7, 0.6, 0.5];
        let labels = [1, 0, 1, 1, 0];
        let curve = pr_curve(&scores, &labels);
        assert!(curve.windows(2).all(|w| w[0].recall <= w[1].recall));
        assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-12);
        assert!((curve[0].precision - 1.0).abs() < 1e-12, "top point is a TP");
    }

    #[test]
    fn pr_curve_empty_without_positives() {
        assert!(pr_curve(&[0.4, 0.6], &[0, 0]).is_empty());
        assert_eq!(average_precision(&[0.4, 0.6], &[0, 0]), 0.0);
    }

    #[test]
    fn average_precision_perfect_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1, 1, 0, 0];
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_known_value() {
        // ranking: pos, neg, pos → AP = ½·(1) + ½·(2/3) = 0.8333…
        let scores = [0.9, 0.8, 0.7];
        let labels = [1, 0, 1];
        assert!((average_precision(&scores, &labels) - (0.5 + 0.5 * (2.0 / 3.0))).abs() < 1e-12);
    }

    #[test]
    fn recall_at_precision_tradeoff() {
        let scores = [0.9, 0.8, 0.7, 0.6];
        let labels = [1, 0, 1, 1];
        // precision ≥ 1.0 only at the top point → recall 1/3
        assert!((recall_at_precision(&scores, &labels, 1.0) - 1.0 / 3.0).abs() < 1e-12);
        // precision ≥ 0.75 reachable at full recall (3/4 = .75)
        assert!((recall_at_precision(&scores, &labels, 0.75) - 1.0).abs() < 1e-12);
        // unreachable precision
        assert_eq!(recall_at_precision(&[0.9], &[0], 0.5), 0.0);
    }

    #[test]
    fn ties_handled_in_pr_curve() {
        let scores = [0.5, 0.5, 0.5];
        let labels = [1, 0, 1];
        let curve = pr_curve(&scores, &labels);
        assert_eq!(curve.len(), 1, "one distinct threshold");
        assert!((curve[0].precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((curve[0].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn length_mismatch_rejected() {
        roc_auc(&[0.5], &[1, 0]);
    }
}
