//! Cross-validation and the Table III comparison harness.
//!
//! The paper selects its classifier by "the standard five-cross
//! validation" on a 5,000 + 5,000 ground-truth set: 4/5 trains, 1/5
//! tests, averaged over folds. [`cross_validate`] runs that protocol for
//! one model; [`compare_models`] runs it for a panel and returns rows
//! shaped like Table III.

use crate::classifier::{fit_evaluate, Classifier};
use crate::data::Dataset;
use crate::metrics::BinaryMetrics;
use cats_par::Parallelism;
use serde::{Deserialize, Serialize};

/// Averaged cross-validation result for one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvResult {
    /// Model display name.
    pub name: String,
    /// Mean precision over folds.
    pub precision: f64,
    /// Mean recall over folds.
    pub recall: f64,
    /// Mean F1 over folds.
    pub f1: f64,
    /// Mean accuracy over folds.
    pub accuracy: f64,
    /// Per-fold metrics.
    pub folds: Vec<BinaryMetrics>,
}

/// Runs stratified k-fold cross-validation of `model` on `data` with
/// default (auto) parallelism. See [`cross_validate_with`].
pub fn cross_validate(model: &mut dyn Classifier, data: &Dataset, k: usize, seed: u64) -> CvResult {
    cross_validate_with(model, data, k, seed, Parallelism::default())
}

/// Runs stratified k-fold cross-validation of `model` on `data`, refitting
/// the folds in parallel.
///
/// Each fold refits a [`Classifier::clone_box`] copy of `model` from
/// scratch on its training split, so fold results — and their average —
/// are identical to the serial protocol at any thread count.
pub fn cross_validate_with(
    model: &mut dyn Classifier,
    data: &Dataset,
    k: usize,
    seed: u64,
    par: Parallelism,
) -> CvResult {
    let folds = data.stratified_kfold(k, seed);
    let model_ref: &dyn Classifier = model;
    let per_fold: Vec<BinaryMetrics> = cats_par::map_chunked(par, &folds, |(train, test)| {
        let mut fold_model = model_ref.clone_box();
        fit_evaluate(fold_model.as_mut(), train, test)
    });
    let n = per_fold.len() as f64;
    CvResult {
        name: model.name().to_string(),
        precision: per_fold.iter().map(|m| m.precision).sum::<f64>() / n,
        recall: per_fold.iter().map(|m| m.recall).sum::<f64>() / n,
        f1: per_fold.iter().map(|m| m.f1).sum::<f64>() / n,
        accuracy: per_fold.iter().map(|m| m.accuracy).sum::<f64>() / n,
        folds: per_fold,
    }
}

/// Cross-validates every model in `models` on the same folds and returns
/// one row per model, in input order (Table III).
pub fn compare_models(
    models: &mut [Box<dyn Classifier>],
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Vec<CvResult> {
    models.iter_mut().map(|m| cross_validate(m.as_mut(), data, k, seed)).collect()
}

/// The paper's candidate panel with CATS' default hyperparameters, in
/// Table III row order.
pub fn paper_panel() -> Vec<Box<dyn Classifier>> {
    use crate::adaboost::{AdaBoost, AdaBoostConfig};
    use crate::gbt::{GbtConfig, GradientBoostedTrees};
    use crate::mlp::{Mlp, MlpConfig};
    use crate::naive_bayes::GaussianNaiveBayes;
    use crate::svm::{LinearSvm, SvmConfig};
    use crate::tree::{DecisionTree, TreeConfig};

    vec![
        Box::new(GradientBoostedTrees::new(GbtConfig::default())),
        Box::new(LinearSvm::new(SvmConfig::default())),
        Box::new(AdaBoost::new(AdaBoostConfig::default())),
        Box::new(Mlp::new(MlpConfig::default())),
        Box::new(DecisionTree::new(TreeConfig::default())),
        Box::new(GaussianNaiveBayes::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_bayes::GaussianNaiveBayes;
    use crate::tree::{DecisionTree, TreeConfig};

    fn blobs(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n {
            let j = ((i * 31) % 100) as f64 / 100.0;
            d.push(&[2.0 + j, j], 1);
            d.push(&[-2.0 - j, -j], 0);
        }
        d
    }

    #[test]
    fn cross_validate_averages_folds() {
        let d = blobs(100);
        let mut m = GaussianNaiveBayes::new();
        let r = cross_validate(&mut m, &d, 5, 3);
        assert_eq!(r.folds.len(), 5);
        assert_eq!(r.name, "Naive Bayes");
        let manual: f64 = r.folds.iter().map(|f| f.precision).sum::<f64>() / 5.0;
        assert!((r.precision - manual).abs() < 1e-12);
        assert!(r.accuracy > 0.95, "easy data should score high: {}", r.accuracy);
    }

    #[test]
    fn compare_models_preserves_order_and_names() {
        let d = blobs(60);
        let mut panel: Vec<Box<dyn Classifier>> = vec![
            Box::new(GaussianNaiveBayes::new()),
            Box::new(DecisionTree::new(TreeConfig::default())),
        ];
        let rows = compare_models(&mut panel, &d, 3, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "Naive Bayes");
        assert_eq!(rows[1].name, "Decision Tree");
    }

    #[test]
    fn paper_panel_has_six_models_in_table3_order() {
        let p = paper_panel();
        let names: Vec<&str> = p.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["Xgboost", "SVM", "AdaBoost", "Neural Network", "Decision Tree", "Naive Bayes"]
        );
    }

    #[test]
    fn same_seed_same_folds() {
        let d = blobs(50);
        let mut m1 = GaussianNaiveBayes::new();
        let mut m2 = GaussianNaiveBayes::new();
        let a = cross_validate(&mut m1, &d, 4, 7);
        let b = cross_validate(&mut m2, &d, 4, 7);
        assert_eq!(a.precision, b.precision);
        assert_eq!(a.recall, b.recall);
    }
}
