//! Linear SVM trained with the Pegasos primal subgradient method.
//!
//! One of the Table III baselines. In the paper SVM shows a distinctive
//! operating point — very high precision (0.99) at low recall (0.62) — the
//! signature of a conservative maximum-margin separator on features whose
//! fraud class has a long tail the margin refuses to cover.
//!
//! Inputs are standardized internally (the scaler is fit during
//! [`Classifier::fit`]), since hinge-loss SGD assumes comparable feature
//! scales. The probability output maps the signed margin through a
//! logistic link.

use crate::classifier::Classifier;
use crate::data::{Dataset, StandardScaler};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// SVM hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Regularization strength λ of the Pegasos objective; larger values
    /// shrink the weight vector harder and make the margin more
    /// conservative.
    pub lambda: f64,
    /// Number of SGD epochs over the data.
    pub epochs: usize,
    /// RNG seed for example ordering.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { lambda: 1e-2, epochs: 40, seed: 13 }
    }
}

/// Linear SVM with internal standardization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    config: SvmConfig,
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<StandardScaler>,
}

impl LinearSvm {
    /// Creates an untrained SVM.
    pub fn new(config: SvmConfig) -> Self {
        assert!(config.lambda > 0.0, "lambda must be positive");
        assert!(config.epochs > 0, "epochs must be positive");
        Self { config, weights: Vec::new(), bias: 0.0, scaler: None }
    }

    /// Whether the model has been fit.
    pub fn is_fit(&self) -> bool {
        self.scaler.is_some()
    }

    /// Signed margin `w·x + b` of an (unstandardized) row.
    pub fn margin(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        let mut x = row.to_vec();
        scaler.transform_row(&mut x);
        self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>() + self.bias
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit SVM on an empty dataset");
        let cfg = self.config;
        let scaler = StandardScaler::fit(data);
        let scaled = scaler.transform(data);
        let n = scaled.len();
        let nf = scaled.n_features();
        let mut w = vec![0.0f64; nf];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut t: u64 = 0;
        for _epoch in 0..cfg.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.random_range(0..n);
                let x = scaled.row(i);
                let y = if scaled.label(i) == 1 { 1.0 } else { -1.0 };
                let eta = 1.0 / (cfg.lambda * t as f64);
                let margin = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                // Regularization shrink (bias is unregularized).
                let shrink = 1.0 - eta * cfg.lambda;
                w.iter_mut().for_each(|wi| *wi *= shrink);
                if y * margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(x) {
                        *wi += eta * y * xi;
                    }
                    b += eta * y;
                }
            }
        }
        self.weights = w;
        self.bias = b;
        self.scaler = Some(scaler);
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.margin(row)).exp())
    }

    fn name(&self) -> &'static str {
        "SVM"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::predict_all;

    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n {
            let jitter = (i % 10) as f64 / 10.0;
            d.push(&[2.0 + jitter, 100.0 * (1.0 + jitter)], 1);
            d.push(&[-2.0 - jitter, -100.0 * (1.0 + jitter)], 0);
        }
        d
    }

    #[test]
    fn separates_linear_data() {
        let d = separable(100);
        let mut m = LinearSvm::new(SvmConfig::default());
        m.fit(&d);
        let preds = predict_all(&m, &d);
        let acc = preds.iter().zip(d.labels()).filter(|(p, &l)| **p == (l == 1)).count() as f64
            / d.len() as f64;
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn margin_sign_matches_prediction() {
        let d = separable(50);
        let mut m = LinearSvm::new(SvmConfig::default());
        m.fit(&d);
        for i in 0..d.len() {
            let row = d.row(i);
            assert_eq!(m.margin(row) >= 0.0, m.predict(row));
        }
    }

    #[test]
    fn handles_unscaled_features() {
        // feature 1 is 100x the scale of feature 0; internal scaler must cope
        let d = separable(80);
        let mut m = LinearSvm::new(SvmConfig::default());
        m.fit(&d);
        assert!(m.predict(&[3.0, 250.0]));
        assert!(!m.predict(&[-3.0, -250.0]));
    }

    #[test]
    fn proba_in_unit_interval() {
        let d = separable(30);
        let mut m = LinearSvm::new(SvmConfig::default());
        m.fit(&d);
        for i in 0..d.len() {
            let p = m.predict_proba(d.row(i));
            assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = separable(40);
        let mut a = LinearSvm::new(SvmConfig::default());
        let mut b = LinearSvm::new(SvmConfig::default());
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.margin(d.row(0)), b.margin(d.row(0)));
    }

    #[test]
    fn heavy_regularization_shrinks_weights() {
        let d = separable(40);
        let mut loose = LinearSvm::new(SvmConfig { lambda: 1e-3, ..SvmConfig::default() });
        let mut tight = LinearSvm::new(SvmConfig { lambda: 10.0, ..SvmConfig::default() });
        loose.fit(&d);
        tight.fit(&d);
        let norm = |m: &LinearSvm| m.weights.iter().map(|w| w * w).sum::<f64>().sqrt();
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        LinearSvm::new(SvmConfig::default()).predict_proba(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn invalid_lambda_rejected() {
        LinearSvm::new(SvmConfig { lambda: 0.0, ..SvmConfig::default() });
    }
}
