//! # cats-ml — machine-learning substrate
//!
//! CATS' detector is "a binary classifier with a model for weighting the
//! features" (§II-B). The paper compares six model families under
//! five-fold cross-validation (Table III) — Xgboost, SVM, AdaBoost,
//! Neural Network, Decision Tree, Naive Bayes — and picks the
//! gradient-boosted-tree model. This crate implements all six from
//! scratch, plus the evaluation harness around them:
//!
//! * [`data`] — dense datasets, stratified splits/k-folds, feature
//!   standardization, binary (`CATS-IO2`) dataset persistence;
//! * [`flat`] — branch-lite flattened forests and column-major feature
//!   matrices, the contiguous-memory scoring hot path;
//! * [`metrics`] — precision / recall / F-score / accuracy and confusion
//!   counts (the quantities of Tables III & VI);
//! * [`Classifier`] — object-safe train/predict interface all models
//!   implement;
//! * [`gbt`] — second-order gradient boosted trees (the XGBoost
//!   algorithm: logistic loss, exact greedy splits, λ/γ regularization,
//!   shrinkage, split-count feature importance for Fig 7);
//! * [`tree`] — weighted CART decision trees (used standalone and as
//!   AdaBoost's stump learner);
//! * [`svm`] — linear SVM trained with the Pegasos subgradient method;
//! * [`adaboost`] — discrete AdaBoost over depth-1 stumps;
//! * [`mlp`] — one-hidden-layer neural network with SGD;
//! * [`naive_bayes`] — Gaussian Naive Bayes;
//! * [`model_selection`] — k-fold cross-validation and the Table III
//!   comparison harness;
//! * [`ranking`] — threshold-free metrics (ROC-AUC, precision–recall
//!   curves, average precision) behind the operating-point calibration.

pub mod adaboost;
pub mod classifier;
pub mod data;
pub mod flat;
pub mod gbt;
pub mod metrics;
pub mod mlp;
pub mod model_selection;
pub mod naive_bayes;
pub mod ranking;
pub mod svm;
pub mod tree;

pub use classifier::Classifier;
pub use data::{Dataset, StandardScaler};
pub use flat::{ColMatrix, FlatForest};
pub use metrics::{confusion, BinaryMetrics};
