//! # Branch-lite flattened forests and column-major matrices
//!
//! The scoring hot loop of [`crate::gbt`] historically walked a
//! `Vec<Node>` enum arena per tree: every step pattern-matched a
//! two-variant enum and chased an index into a heap allocation per tree.
//! This module replaces that with a *branch-lite contiguous node pool*
//! shared by the whole ensemble (DESIGN.md §12), struct-of-arrays:
//!
//! ```text
//! feature[i]    u32   split feature, or LEAF (u32::MAX) for leaves
//! threshold[i]  f64   split threshold (unused for leaves)
//! left[i]       u32   left-child index; right child is left[i] + 1
//! leaf[i]       f64   leaf output (unused for splits)
//! ```
//!
//! Trees are laid out breadth-first with sibling pairs adjacent, so
//! descent needs no `right` array and no branch on the comparison:
//!
//! ```text
//! i = left[i] + (row[feature[i]] < threshold[i] ? 0 : 1)
//! ```
//!
//! The comparison result feeds the index arithmetic directly instead of
//! selecting a code path, and all node metadata for the hot ensemble
//! sits in four dense arrays that stay cache-resident. Predictions are
//! **bit-identical** to the enum walk: the same `<` comparisons route a
//! row to the same leaf (NaN features route right in both, since
//! `NaN < t` is false), and margins accumulate in the same tree order.
//!
//! [`ColMatrix`] is the column-major companion for batch work: split
//! scans and batch scoring read one feature across many rows, which in
//! row-major storage strides by `n_features` — column-major makes those
//! walks contiguous. Values are identical `f64`s, so every comparison
//! and accumulation is unchanged bit-for-bit.
//!
//! This module is deliberately serde-free and `crate`-path-free so it
//! can be compiled and tested standalone against `cats-io` alone.

use cats_io::io2::{Dec, Enc};

/// Sentinel in `feature[]` marking a leaf node.
pub const LEAF: u32 = u32::MAX;

/// Byte-format version of [`FlatForest::to_bytes`].
const FOREST_CODEC_VERSION: u32 = 1;

/// A whole ensemble flattened into one struct-of-arrays node pool.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatForest {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    leaf: Vec<f64>,
    /// Root node index of each tree, in ensemble order.
    roots: Vec<u32>,
}

impl FlatForest {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Number of nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    fn alloc(&mut self) -> u32 {
        let i = self.feature.len() as u32;
        self.feature.push(LEAF);
        self.threshold.push(0.0);
        self.left.push(0);
        self.leaf.push(0.0);
        i
    }

    /// Starts a new tree: allocates its root slot and returns the index.
    pub fn push_root(&mut self) -> u32 {
        let i = self.alloc();
        self.roots.push(i);
        i
    }

    /// Allocates an adjacent (left, right) child pair, returning the
    /// left index; the right child is that plus one.
    pub fn alloc_children(&mut self) -> u32 {
        let l = self.alloc();
        self.alloc();
        l
    }

    /// Fills node `i` as a leaf.
    pub fn set_leaf(&mut self, i: u32, value: f64) {
        let i = i as usize;
        self.feature[i] = LEAF;
        self.leaf[i] = value;
    }

    /// Fills node `i` as a split whose children start at `left`.
    pub fn set_split(&mut self, i: u32, feature: u32, threshold: f64, left: u32) {
        assert_ne!(feature, LEAF, "feature index collides with the leaf sentinel");
        let i = i as usize;
        self.feature[i] = feature;
        self.threshold[i] = threshold;
        self.left[i] = left;
    }

    /// Output of tree `t` for one row — the branch-lite iterative
    /// descent replacing the recursive enum walk.
    #[inline]
    pub fn predict_tree(&self, t: usize, row: &[f64]) -> f64 {
        let mut i = self.roots[t] as usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.leaf[i];
            }
            // `!(v < t)` sends NaN right, matching the enum walk's
            // `if v < t { left } else { right }`.
            let go_right = usize::from(!(row[f as usize] < self.threshold[i]));
            i = self.left[i] as usize + go_right;
        }
    }

    /// Margin for one row: `base` plus every tree's output, accumulated
    /// in tree order. Seeding the accumulator with `base` (rather than
    /// adding it afterwards) reproduces the enum walk's exact f64
    /// association `((base + t0) + t1) + …`, so margins are
    /// bit-identical.
    #[inline]
    pub fn margin(&self, base: f64, row: &[f64]) -> f64 {
        let mut m = base;
        for t in 0..self.roots.len() {
            m += self.predict_tree(t, row);
        }
        m
    }

    /// Batch margins over a column-major matrix: rows are processed in
    /// chunks of 8 and trees tree-major within a chunk, keeping the
    /// pool's arrays and one chunk of rows hot in cache. Each row's
    /// accumulation order is still `base + tree0 + tree1 + …`, so the
    /// output is bit-identical to calling [`FlatForest::margin`] per row.
    pub fn margin_batch(&self, cols: &ColMatrix, base: f64, out: &mut Vec<f64>) {
        let n = cols.n_rows();
        out.clear();
        out.resize(n, base);
        let mut r0 = 0;
        while r0 < n {
            let r1 = (r0 + 8).min(n);
            for t in 0..self.roots.len() {
                let root = self.roots[t] as usize;
                for (r, acc) in out[r0..r1].iter_mut().enumerate() {
                    let r = r0 + r;
                    let mut i = root;
                    loop {
                        let f = self.feature[i];
                        if f == LEAF {
                            *acc += self.leaf[i];
                            break;
                        }
                        let go_right = usize::from(!(cols.at(r, f as usize) < self.threshold[i]));
                        i = self.left[i] as usize + go_right;
                    }
                }
            }
            r0 = r1;
        }
    }

    /// Largest feature index referenced by any split, if any split
    /// exists. Callers validate this against their feature count before
    /// trusting a decoded pool.
    pub fn max_feature(&self) -> Option<u32> {
        self.feature.iter().copied().filter(|&f| f != LEAF).max()
    }

    /// Root node index of tree `t`.
    pub fn root(&self, t: usize) -> u32 {
        self.roots[t]
    }

    /// Split feature of node `i` ([`LEAF`] for leaves).
    pub fn node_feature(&self, i: usize) -> u32 {
        self.feature[i]
    }

    /// Split threshold of node `i` (meaningless for leaves).
    pub fn node_threshold(&self, i: usize) -> f64 {
        self.threshold[i]
    }

    /// Left-child index of node `i` (right child is this plus one).
    pub fn node_left(&self, i: usize) -> u32 {
        self.left[i]
    }

    /// Leaf output of node `i` (meaningless for splits).
    pub fn node_leaf(&self, i: usize) -> f64 {
        self.leaf[i]
    }

    /// Serializes the pool as flat little-endian arrays.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(FOREST_CODEC_VERSION)
            .u32s(&self.roots)
            .u32s(&self.feature)
            .f64s(&self.threshold)
            .u32s(&self.left)
            .f64s(&self.leaf);
        e.into_bytes()
    }

    /// Decodes and structurally validates a pool. Beyond the container's
    /// CRC (integrity), this enforces the invariants descent relies on
    /// for memory safety and termination: equal array lengths, in-range
    /// roots, and strictly forward child links (`left[i] > i`, right
    /// child in range) — forward links make cycles impossible, so every
    /// descent terminates.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut d = Dec::new(bytes);
        let version = d.u32()?;
        if version != FOREST_CODEC_VERSION {
            return Err(format!(
                "forest codec version {version} is newer than supported {FOREST_CODEC_VERSION}"
            ));
        }
        let roots = d.u32s()?;
        let feature = d.u32s()?;
        let threshold = d.f64s()?;
        let left = d.u32s()?;
        let leaf = d.f64s()?;
        let n = feature.len();
        if threshold.len() != n || left.len() != n || leaf.len() != n {
            return Err(format!(
                "forest arrays disagree on node count: feature={n} threshold={} left={} leaf={}",
                threshold.len(),
                left.len(),
                leaf.len()
            ));
        }
        for &r in &roots {
            if r as usize >= n {
                return Err(format!("tree root {r} out of range ({n} nodes)"));
            }
        }
        for i in 0..n {
            if feature[i] != LEAF {
                let l = left[i] as usize;
                if l <= i || l + 1 >= n {
                    return Err(format!(
                        "node {i}: children at {l} are not strictly forward in-range links"
                    ));
                }
            }
        }
        Ok(Self { feature, threshold, left, leaf, roots })
    }
}

/// A dense column-major `f64` matrix: column `c` occupies
/// `data[c*n_rows .. (c+1)*n_rows]`, so per-feature walks (split scans,
/// batch descent) are contiguous loads instead of `n_cols`-strided ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl ColMatrix {
    /// Transposes a row-major buffer (`n_rows × n_cols`, rows
    /// contiguous) into column-major storage.
    pub fn from_row_major(x: &[f64], n_cols: usize) -> Self {
        assert!(n_cols > 0, "ColMatrix needs at least one column");
        assert_eq!(x.len() % n_cols, 0, "buffer is not a whole number of rows");
        let n_rows = x.len() / n_cols;
        let mut data = vec![0.0; x.len()];
        for (r, row) in x.chunks_exact(n_cols).enumerate() {
            for (c, &v) in row.iter().enumerate() {
                data[c * n_rows + r] = v;
            }
        }
        Self { n_rows, n_cols, data }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// One column as a contiguous slice.
    pub fn col(&self, c: usize) -> &[f64] {
        &self.data[c * self.n_rows..(c + 1) * self.n_rows]
    }

    /// Element at (row, column).
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        self.data[c * self.n_rows + r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the enum arena walk `FlatForest`
    /// replaces, kept here so the flat descent is tested against the
    /// exact semantics it must preserve.
    enum RefNode {
        Leaf(f64),
        Split { feature: usize, threshold: f64, left: usize, right: usize },
    }

    struct RefTree {
        nodes: Vec<RefNode>,
    }

    impl RefTree {
        fn predict(&self, row: &[f64]) -> f64 {
            let mut i = 0;
            loop {
                match &self.nodes[i] {
                    RefNode::Leaf(w) => return *w,
                    RefNode::Split { feature, threshold, left, right } => {
                        i = if row[*feature] < *threshold { *left } else { *right };
                    }
                }
            }
        }
    }

    /// Deterministic splittable RNG (SplitMix64) — no `rand` dependency.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Builds a random reference tree (DFS arena, left = me+1 like the
    /// production TreeBuilder) and its flat equivalent.
    fn random_tree(
        rng: &mut Rng,
        n_features: usize,
        depth: usize,
        nodes: &mut Vec<RefNode>,
    ) -> usize {
        let me = nodes.len();
        if depth == 0 || rng.f64() < 0.3 {
            nodes.push(RefNode::Leaf(rng.f64() * 2.0 - 1.0));
            return me;
        }
        nodes.push(RefNode::Leaf(0.0));
        let feature = rng.below(n_features);
        let threshold = rng.f64();
        let left = random_tree(rng, n_features, depth - 1, nodes);
        let right = random_tree(rng, n_features, depth - 1, nodes);
        nodes[me] = RefNode::Split { feature, threshold, left, right };
        me
    }

    fn flatten(trees: &[RefTree]) -> FlatForest {
        let mut flat = FlatForest::new();
        for tree in trees {
            let root = flat.push_root();
            let mut queue = std::collections::VecDeque::from([(0usize, root)]);
            while let Some((src, dst)) = queue.pop_front() {
                match &tree.nodes[src] {
                    RefNode::Leaf(w) => flat.set_leaf(dst, *w),
                    RefNode::Split { feature, threshold, left, right } => {
                        let l = flat.alloc_children();
                        flat.set_split(dst, *feature as u32, *threshold, l);
                        queue.push_back((*left, l));
                        queue.push_back((*right, l + 1));
                    }
                }
            }
        }
        flat
    }

    fn random_forest(seed: u64, n_trees: usize, n_features: usize) -> (Vec<RefTree>, FlatForest) {
        let mut rng = Rng(seed);
        let trees: Vec<RefTree> = (0..n_trees)
            .map(|_| {
                let mut nodes = Vec::new();
                random_tree(&mut rng, n_features, 6, &mut nodes);
                RefTree { nodes }
            })
            .collect();
        let flat = flatten(&trees);
        (trees, flat)
    }

    #[test]
    fn flat_descent_is_bit_identical_to_reference_walk() {
        let (trees, flat) = random_forest(42, 25, 7);
        let mut rng = Rng(7);
        for _ in 0..200 {
            let row: Vec<f64> = (0..7).map(|_| rng.f64()).collect();
            let reference: f64 = trees.iter().map(|t| t.predict(&row)).sum();
            // Per-tree outputs and the summed margin must match exactly.
            for (t, tree) in trees.iter().enumerate() {
                assert_eq!(
                    flat.predict_tree(t, &row).to_bits(),
                    tree.predict(&row).to_bits(),
                    "tree {t} diverged"
                );
            }
            assert_eq!(flat.margin(0.0, &row).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn nan_features_route_right_in_both_walks() {
        let (trees, flat) = random_forest(11, 10, 4);
        let row = [f64::NAN, 0.5, f64::NAN, 0.25];
        let reference: f64 = trees.iter().map(|t| t.predict(&row)).sum();
        assert_eq!(flat.margin(0.0, &row).to_bits(), reference.to_bits());
    }

    #[test]
    fn batch_margin_matches_scalar_margin_bitwise() {
        let (_, flat) = random_forest(3, 30, 5);
        let mut rng = Rng(99);
        // 37 rows: exercises full chunks of 8 plus a ragged tail of 5.
        let rows: Vec<Vec<f64>> = (0..37).map(|_| (0..5).map(|_| rng.f64()).collect()).collect();
        let flat_rows: Vec<f64> = rows.iter().flatten().copied().collect();
        let cols = ColMatrix::from_row_major(&flat_rows, 5);
        let base = -0.731;
        let mut batch = Vec::new();
        flat.margin_batch(&cols, base, &mut batch);
        assert_eq!(batch.len(), 37);
        for (r, row) in rows.iter().enumerate() {
            let scalar = flat.margin(base, row);
            assert_eq!(batch[r].to_bits(), scalar.to_bits(), "row {r} diverged");
        }
    }

    #[test]
    fn codec_roundtrip_is_byte_identical() {
        let (_, flat) = random_forest(8, 12, 6);
        let bytes = flat.to_bytes();
        let decoded = FlatForest::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, flat);
        // Canonical encoding: decode→encode reproduces the same bytes.
        assert_eq!(decoded.to_bytes(), bytes);
        assert_eq!(decoded.max_feature(), flat.max_feature());
    }

    #[test]
    fn from_bytes_rejects_malformed_pools() {
        // Backward child link (potential cycle) must be rejected.
        let mut evil = FlatForest::new();
        let root = evil.push_root();
        let l = evil.alloc_children();
        evil.set_split(root, 0, 0.5, l);
        evil.set_leaf(l, 1.0);
        evil.set_leaf(l + 1, 2.0);
        evil.left[root as usize] = 0; // self-referential
        assert!(FlatForest::from_bytes(&evil.to_bytes()).is_err());

        // Out-of-range child link.
        evil.left[root as usize] = 40;
        assert!(FlatForest::from_bytes(&evil.to_bytes()).is_err());

        // Out-of-range root.
        let mut evil = FlatForest::new();
        evil.push_root();
        evil.set_leaf(0, 1.0);
        evil.roots[0] = 9;
        assert!(FlatForest::from_bytes(&evil.to_bytes()).is_err());

        // Array length disagreement.
        let (_, good) = random_forest(5, 3, 4);
        let mut lopsided = good.clone();
        lopsided.leaf.pop();
        assert!(FlatForest::from_bytes(&lopsided.to_bytes()).is_err());

        // Future codec version.
        let mut bytes = good.to_bytes();
        bytes[0..4].copy_from_slice(&99u32.to_le_bytes());
        let err = FlatForest::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("newer than supported"), "{err}");

        // Truncation.
        let bytes = good.to_bytes();
        assert!(FlatForest::from_bytes(&bytes[..bytes.len() - 7]).is_err());
    }

    #[test]
    fn col_matrix_transposes_correctly() {
        // 3 rows × 4 cols, row-major.
        let x = [0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0, 20.0, 21.0, 22.0, 23.0];
        let m = ColMatrix::from_row_major(&x, 4);
        assert_eq!((m.n_rows(), m.n_cols()), (3, 4));
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(m.at(r, c), (r * 10 + c) as f64);
            }
        }
        assert_eq!(m.col(2), &[2.0, 12.0, 22.0]);
    }
}
