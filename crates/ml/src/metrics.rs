//! Binary-classification metrics (Tables III & VI report precision,
//! recall, and F-score of the fraud class).

use serde::{Deserialize, Serialize};

/// Confusion counts with fraud (label 1) as the positive class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Fraud predicted fraud.
    pub tp: usize,
    /// Normal predicted fraud.
    pub fp: usize,
    /// Normal predicted normal.
    pub tn: usize,
    /// Fraud predicted normal.
    pub fn_: usize,
}

impl Confusion {
    /// Total examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }
}

/// Builds confusion counts from parallel label/prediction slices.
///
/// # Panics
/// Panics on length mismatch.
pub fn confusion(labels: &[u8], predictions: &[bool]) -> Confusion {
    assert_eq!(labels.len(), predictions.len(), "labels/predictions mismatch");
    let mut c = Confusion::default();
    for (&y, &p) in labels.iter().zip(predictions) {
        match (y == 1, p) {
            (true, true) => c.tp += 1,
            (false, true) => c.fp += 1,
            (false, false) => c.tn += 1,
            (true, false) => c.fn_ += 1,
        }
    }
    c
}

/// Precision / recall / F1 / accuracy derived from confusion counts.
///
/// Degenerate denominators follow the usual convention: a metric whose
/// denominator is zero is reported as 0 (there is nothing to be right
/// about), keeping every metric in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// (TP + TN) / total.
    pub accuracy: f64,
    /// The underlying counts.
    pub confusion: Confusion,
}

impl BinaryMetrics {
    /// Derives metrics from confusion counts.
    pub fn from_confusion(c: Confusion) -> Self {
        let ratio = |num: usize, den: usize| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        let precision = ratio(c.tp, c.tp + c.fp);
        let recall = ratio(c.tp, c.tp + c.fn_);
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        let accuracy = ratio(c.tp + c.tn, c.total());
        Self { precision, recall, f1, accuracy, confusion: c }
    }

    /// Convenience: metrics straight from labels and predictions.
    pub fn compute(labels: &[u8], predictions: &[bool]) -> Self {
        Self::from_confusion(confusion(labels, predictions))
    }
}

impl std::fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} Acc={:.3}",
            self.precision, self.recall, self.f1, self.accuracy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let labels = [1, 1, 0, 0, 1];
        let preds = [true, false, true, false, true];
        let c = confusion(&labels, &preds);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn perfect_prediction() {
        let m = BinaryMetrics::compute(&[1, 0, 1], &[true, false, true]);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn all_wrong_prediction() {
        let m = BinaryMetrics::compute(&[1, 0], &[false, true]);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.accuracy, 0.0);
    }

    #[test]
    fn known_values() {
        // tp=8, fp=2, fn=4, tn=6
        let c = Confusion { tp: 8, fp: 2, tn: 6, fn_: 4 };
        let m = BinaryMetrics::from_confusion(c);
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.recall - 8.0 / 12.0).abs() < 1e-12);
        let expect_f1 = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
        assert!((m.f1 - expect_f1).abs() < 1e-12);
        assert!((m.accuracy - 0.7).abs() < 1e-12);
    }

    #[test]
    fn degenerate_no_predictions_positive() {
        // nothing predicted positive: precision denominator is 0
        let m = BinaryMetrics::compute(&[1, 0], &[false, false]);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.accuracy, 0.5);
    }

    #[test]
    fn degenerate_no_positive_labels() {
        let m = BinaryMetrics::compute(&[0, 0], &[false, false]);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn length_mismatch_rejected() {
        confusion(&[1], &[true, false]);
    }

    #[test]
    fn metrics_always_in_unit_interval() {
        for tp in 0..3 {
            for fp in 0..3 {
                for tn in 0..3 {
                    for fn_ in 0..3 {
                        let m = BinaryMetrics::from_confusion(Confusion { tp, fp, tn, fn_ });
                        for v in [m.precision, m.recall, m.f1, m.accuracy] {
                            assert!((0.0..=1.0).contains(&v), "{v}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn display_format() {
        let m = BinaryMetrics::compute(&[1, 0], &[true, false]);
        let s = format!("{m}");
        assert!(s.contains("P=1.000"));
    }
}
