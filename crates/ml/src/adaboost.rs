//! Discrete AdaBoost over depth-1 decision stumps.
//!
//! One of the Table III baselines (the paper reports it close behind
//! Xgboost at P 0.90 / R 0.90). Classical Freund–Schapire reweighting:
//! each round fits a weighted stump, computes the weighted error ε, the
//! stage weight `α = ½ ln((1−ε)/ε)`, and multiplies example weights by
//! `exp(±α)`.

use crate::classifier::Classifier;
use crate::data::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use serde::{Deserialize, Serialize};

/// AdaBoost hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaBoostConfig {
    /// Number of boosting rounds (stumps).
    pub n_rounds: usize,
    /// Depth of each weak learner (1 = classic stump).
    pub stump_depth: usize,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        Self { n_rounds: 80, stump_depth: 1 }
    }
}

/// The boosted ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaBoost {
    config: AdaBoostConfig,
    stages: Vec<(f64, DecisionTree)>,
}

impl AdaBoost {
    /// Creates an untrained ensemble.
    pub fn new(config: AdaBoostConfig) -> Self {
        assert!(config.n_rounds > 0, "n_rounds must be positive");
        Self { config, stages: Vec::new() }
    }

    /// Whether the model has been fit.
    pub fn is_fit(&self) -> bool {
        !self.stages.is_empty()
    }

    /// Number of fitted stages (may stop early on a perfect weak learner).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Weighted vote in `[-1, 1]`-ish space (sum of ±α, normalized by Σα).
    fn vote(&self, row: &[f64]) -> f64 {
        let mut score = 0.0;
        let mut total = 0.0;
        for (alpha, stump) in &self.stages {
            let h = if stump.predict_proba(row) >= 0.5 { 1.0 } else { -1.0 };
            score += alpha * h;
            total += alpha;
        }
        if total > 0.0 {
            score / total
        } else {
            0.0
        }
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit AdaBoost on an empty dataset");
        self.stages.clear();
        let n = data.len();
        let mut weights = vec![1.0 / n as f64; n];

        for _round in 0..self.config.n_rounds {
            let mut stump = DecisionTree::new(TreeConfig {
                max_depth: self.config.stump_depth,
                min_split_weight: 0.0,
                min_gain: 1e-12,
            });
            stump.fit_weighted(data, &weights);

            // Weighted error of the stump.
            let mut eps = 0.0;
            let preds: Vec<bool> =
                (0..n).map(|i| stump.predict_proba(data.row(i)) >= 0.5).collect();
            for i in 0..n {
                if preds[i] != (data.label(i) == 1) {
                    eps += weights[i];
                }
            }
            let eps = eps.clamp(1e-12, 1.0);
            if eps >= 0.5 {
                // Weak learner no better than chance: stop boosting. Keep at
                // least one stage so the model is usable.
                if self.stages.is_empty() {
                    self.stages.push((1.0, stump));
                }
                break;
            }
            let alpha = 0.5 * ((1.0 - eps) / eps).ln();
            for i in 0..n {
                let correct = preds[i] == (data.label(i) == 1);
                weights[i] *= if correct { (-alpha).exp() } else { alpha.exp() };
            }
            let z: f64 = weights.iter().sum();
            weights.iter_mut().for_each(|w| *w /= z);
            self.stages.push((alpha, stump));
            if eps <= 1e-10 {
                break; // perfect learner; further rounds are redundant
            }
        }
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        assert!(self.is_fit(), "predict before fit");
        // Map the normalized vote in [-1, 1] to [0, 1].
        (self.vote(row) + 1.0) / 2.0
    }

    fn name(&self) -> &'static str {
        "AdaBoost"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::predict_all;

    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n {
            let x = (i % 13) as f64 / 13.0;
            d.push(&[1.0 + x, x], 1);
            d.push(&[-1.0 - x, x], 0);
        }
        d
    }

    #[test]
    fn fits_separable_data() {
        let d = separable(60);
        let mut m = AdaBoost::new(AdaBoostConfig::default());
        m.fit(&d);
        let preds = predict_all(&m, &d);
        assert!(preds.iter().zip(d.labels()).all(|(p, &l)| *p == (l == 1)));
    }

    #[test]
    fn stops_early_on_perfect_stump() {
        let d = separable(60);
        let mut m = AdaBoost::new(AdaBoostConfig { n_rounds: 50, stump_depth: 1 });
        m.fit(&d);
        assert!(m.n_stages() < 50, "perfect stump should short-circuit");
    }

    #[test]
    fn boosting_beats_single_stump_on_interval_data() {
        // Positive iff x in [-1, 1]: needs two thresholds, so one stump
        // cannot represent it but boosted stumps can.
        let mut d = Dataset::new(1);
        for i in 0..200 {
            let x = -3.0 + 6.0 * (i as f64 / 199.0);
            d.push(&[x], u8::from(x.abs() <= 1.0));
        }
        let mut stump = AdaBoost::new(AdaBoostConfig { n_rounds: 1, stump_depth: 1 });
        stump.fit(&d);
        let acc_1 = predict_all(&stump, &d)
            .iter()
            .zip(d.labels())
            .filter(|(p, &l)| **p == (l == 1))
            .count() as f64
            / d.len() as f64;

        let mut boosted = AdaBoost::new(AdaBoostConfig { n_rounds: 60, stump_depth: 1 });
        boosted.fit(&d);
        let acc_many = predict_all(&boosted, &d)
            .iter()
            .zip(d.labels())
            .filter(|(p, &l)| **p == (l == 1))
            .count() as f64
            / d.len() as f64;
        assert!(acc_many > acc_1, "{acc_many} vs {acc_1}");
        assert!(acc_many > 0.9, "{acc_many}");
    }

    #[test]
    fn proba_in_unit_interval() {
        let d = separable(40);
        let mut m = AdaBoost::new(AdaBoostConfig::default());
        m.fit(&d);
        for i in 0..d.len() {
            let p = m.predict_proba(d.row(i));
            assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn deterministic() {
        let d = separable(40);
        let mut a = AdaBoost::new(AdaBoostConfig::default());
        let mut b = AdaBoost::new(AdaBoostConfig::default());
        a.fit(&d);
        b.fit(&d);
        for i in 0..d.len() {
            assert_eq!(a.predict_proba(d.row(i)), b.predict_proba(d.row(i)));
        }
    }

    #[test]
    fn single_class_data_is_handled() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            d.push(&[i as f64], 1);
        }
        let mut m = AdaBoost::new(AdaBoostConfig::default());
        m.fit(&d);
        assert!(m.is_fit());
        assert!(m.predict(&[5.0]));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        AdaBoost::new(AdaBoostConfig::default()).predict_proba(&[1.0, 2.0]);
    }
}
