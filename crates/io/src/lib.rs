//! # cats-io — crash-safe persistence primitives
//!
//! Everything downstream of the crawler writes model state to disk at
//! some point: `cats-cli train` emits pipeline snapshots, the serving
//! watcher copies last-good models aside, and resumable training drops
//! epoch/round checkpoints. A host crash in the middle of any of those
//! writes must never leave a file that *parses but lies* — a torn JSON
//! snapshot that deserializes into half a model is strictly worse than a
//! missing file. This crate is the single choke point those writes go
//! through (DESIGN.md §10):
//!
//! 1. [`atomic_write`] — write to a same-directory temp file, `fsync`,
//!    then `rename` over the destination. Readers observe either the old
//!    bytes or the new bytes, never a prefix.
//! 2. [`write_checksummed`] / [`read_checksummed`] — a one-line header
//!    (`CATS-IO1 <crc32> <len>`) in front of the payload so truncation,
//!    bit flips and zero-length files are *detected* at load with a typed
//!    [`IoError`], not discovered later as a half-loaded model. Files
//!    without the magic are returned verbatim (legacy raw-JSON snapshots
//!    keep loading).
//! 3. [`CheckpointStore`] — named checkpoint slots for resumable
//!    training ("latest valid checkpoint" semantics: a corrupt slot
//!    reads as absent, because rename atomicity guarantees the previous
//!    good generation was replaced wholesale or not at all).
//!
//! Zero third-party dependencies; the CRC32 (IEEE/zlib polynomial) is
//! hand-rolled with a compile-time table.
//!
//! The [`io2`] module adds the second-generation sectioned binary
//! container (`CATS-IO2`): little-endian flat arrays behind a
//! per-section-checksummed table, built for hot-path loads that skip
//! JSON entirely. `CATS-IO1` and raw legacy files remain readable —
//! callers sniff by magic ([`io2::is_io2`] / [`is_checksummed`]).

pub mod io2;

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};

/// File-format magic of checksummed payloads, ending the header fields.
const MAGIC: &[u8] = b"CATS-IO1 ";

/// What went wrong reading or writing a persisted file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Underlying filesystem error (open/write/fsync/rename).
    Io(String),
    /// The file exists but holds zero bytes — a classic torn
    /// `create`-then-crash artifact.
    Empty {
        /// Offending file.
        path: String,
    },
    /// The checksummed header is present but malformed.
    BadHeader {
        /// Offending file.
        path: String,
        /// Why the header did not parse.
        reason: String,
    },
    /// The payload is shorter or longer than the header declared —
    /// truncation (or concatenation) in flight.
    LengthMismatch {
        /// Offending file.
        path: String,
        /// Length the header declared.
        expected: u64,
        /// Length actually present.
        actual: u64,
    },
    /// The payload length matches but its CRC32 does not — bit rot or a
    /// corrupting writer.
    ChecksumMismatch {
        /// Offending file.
        path: String,
        /// Checksum the header declared.
        expected: u32,
        /// Checksum of the bytes actually present.
        actual: u32,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io: {e}"),
            Self::Empty { path } => write!(f, "{path}: empty file"),
            Self::BadHeader { path, reason } => write!(f, "{path}: bad header: {reason}"),
            Self::LengthMismatch { path, expected, actual } => {
                write!(f, "{path}: truncated payload: expected {expected} bytes, found {actual}")
            }
            Self::ChecksumMismatch { path, expected, actual } => {
                write!(f, "{path}: checksum mismatch: expected {expected:08x}, found {actual:08x}")
            }
        }
    }
}

impl std::error::Error for IoError {}

/// CRC32 lookup table for the reflected IEEE polynomial 0xEDB88320
/// (the zlib/PNG/gzip CRC), built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`. Matches zlib's `crc32(0, ...)`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Atomically replaces `path` with `bytes`: writes a same-directory temp
/// file, fsyncs it, then renames it over the destination (and fsyncs the
/// directory on Unix so the rename itself is durable). A crash at any
/// point leaves either the previous contents or the new contents — never
/// a prefix, never a mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), IoError> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .ok_or_else(|| IoError::Io(format!("{}: not a file path", path.display())))?;
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = dir.join(tmp_name);
    let write = |tmp: &Path| -> std::io::Result<()> {
        let mut f = File::create(tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    };
    if let Err(e) = write(&tmp) {
        let _ = fs::remove_file(&tmp);
        return Err(IoError::Io(format!("{}: {e}", tmp.display())));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(IoError::Io(format!("rename {} -> {}: {e}", tmp.display(), path.display())));
    }
    // Durability of the rename itself: fsync the containing directory.
    #[cfg(unix)]
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    cats_obs::counter("cats.io.atomic_writes").inc();
    Ok(())
}

/// Frames `payload` with a `CATS-IO1 <crc32-hex> <len>\n` header and
/// writes the result atomically to `path`.
pub fn write_checksummed(path: &Path, payload: &[u8]) -> Result<(), IoError> {
    let mut framed = Vec::with_capacity(MAGIC.len() + 32 + payload.len());
    framed.extend_from_slice(
        format!("CATS-IO1 {:08x} {}\n", crc32(payload), payload.len()).as_bytes(),
    );
    framed.extend_from_slice(payload);
    atomic_write(path, &framed)
}

/// Whether `bytes` begin with the checksummed-file magic.
pub fn is_checksummed(bytes: &[u8]) -> bool {
    bytes.starts_with(MAGIC)
}

/// Reads `path` and returns its payload, verifying the checksummed
/// header when present. Files without the `CATS-IO1` magic are returned
/// verbatim (legacy format written before checksumming existed) — except
/// zero-length files, which are always an error: no legacy writer ever
/// produced one on purpose.
pub fn read_checksummed(path: &Path) -> Result<Vec<u8>, IoError> {
    let bytes = fs::read(path).map_err(|e| IoError::Io(format!("{}: {e}", path.display())))?;
    verify_checksummed(&bytes, &path.display().to_string())
}

/// [`read_checksummed`] over in-memory bytes (the file already read, e.g.
/// by a watcher that fingerprinted it first).
pub fn verify_checksummed(bytes: &[u8], path: &str) -> Result<Vec<u8>, IoError> {
    if bytes.is_empty() {
        return Err(IoError::Empty { path: path.to_owned() });
    }
    if !is_checksummed(bytes) {
        return Ok(bytes.to_vec());
    }
    let rest = &bytes[MAGIC.len()..];
    let nl = rest.iter().position(|&b| b == b'\n').ok_or_else(|| IoError::BadHeader {
        path: path.to_owned(),
        reason: "unterminated header line".into(),
    })?;
    let header = std::str::from_utf8(&rest[..nl]).map_err(|_| IoError::BadHeader {
        path: path.to_owned(),
        reason: "non-UTF-8 header".into(),
    })?;
    let mut fields = header.split_ascii_whitespace();
    let expected_crc =
        fields.next().and_then(|s| u32::from_str_radix(s, 16).ok()).ok_or_else(|| {
            IoError::BadHeader {
                path: path.to_owned(),
                reason: format!("bad crc field in {header:?}"),
            }
        })?;
    let expected_len: u64 =
        fields.next().and_then(|s| s.parse().ok()).ok_or_else(|| IoError::BadHeader {
            path: path.to_owned(),
            reason: format!("bad length field in {header:?}"),
        })?;
    let payload = &rest[nl + 1..];
    if payload.len() as u64 != expected_len {
        return Err(IoError::LengthMismatch {
            path: path.to_owned(),
            expected: expected_len,
            actual: payload.len() as u64,
        });
    }
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(IoError::ChecksumMismatch {
            path: path.to_owned(),
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    Ok(payload.to_vec())
}

/// Named checkpoint slots backed by checksummed atomic files — one file
/// per stage under one directory. Because every [`CheckpointStore::save`]
/// replaces the slot file atomically, the slot always holds the *latest
/// complete* checkpoint: a kill mid-save leaves the previous good
/// generation in place. A slot that fails verification (crashed host,
/// flipped bits) reads as absent, so resumable training falls back to
/// recomputing the stage rather than trusting damaged state.
pub struct CheckpointStore {
    dir: PathBuf,
    /// Chaos hook: when ≥ 0, each save decrements it and panics once it
    /// hits zero — simulating a process killed immediately after a
    /// checkpoint write completes. Used by `exp_soak` and the
    /// crash-safety tests to interrupt training deterministically.
    kill_after: AtomicI64,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, IoError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| IoError::Io(format!("{}: {e}", dir.display())))?;
        Ok(Self { dir, kill_after: AtomicI64::new(-1) })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a stage's slot file.
    pub fn path(&self, stage: &str) -> PathBuf {
        self.dir.join(format!("{stage}.ckpt"))
    }

    /// Arms the chaos kill switch: the `n`-th subsequent save panics
    /// right after its write completes, simulating a `kill -9` between a
    /// checkpoint and the next unit of training work.
    pub fn kill_after_saves(&self, n: u64) {
        self.kill_after.store(n as i64, Ordering::SeqCst);
    }

    /// Atomically writes a stage checkpoint (as a single-section
    /// `CATS-IO2` container — the binary framing costs a fixed 56 bytes
    /// where the IO1 text header cost ~25, and buys sectioned CRCs and a
    /// format shared with model snapshots).
    pub fn save(&self, stage: &str, payload: &[u8]) -> Result<(), IoError> {
        let mut container = io2::Io2Builder::new();
        container.section("payload", payload.to_vec());
        container.write(&self.path(stage))?;
        cats_obs::counter("cats.io.checkpoint.saves").inc();
        if self.kill_after.load(Ordering::SeqCst) >= 0
            && self.kill_after.fetch_sub(1, Ordering::SeqCst) == 1
        {
            panic!("cats-io chaos: simulated kill after checkpoint save ({stage})");
        }
        Ok(())
    }

    /// Loads the latest valid checkpoint of a stage. Returns `None` for
    /// a missing slot *and* for a corrupt one (counted under
    /// `cats.io.checkpoint.corrupt`): resume must recompute, not trust.
    pub fn load(&self, stage: &str) -> Option<Vec<u8>> {
        let path = self.path(stage);
        if !path.exists() {
            return None;
        }
        let read = || -> Result<Vec<u8>, IoError> {
            let bytes =
                fs::read(&path).map_err(|e| IoError::Io(format!("{}: {e}", path.display())))?;
            let name = path.display().to_string();
            if io2::is_io2(&bytes) {
                let file = io2::Io2File::parse(&bytes, &name)?;
                Ok(file.require("payload", &name)?.to_vec())
            } else {
                // Legacy CATS-IO1 slot from a pre-IO2 build: resumes fine.
                verify_checksummed(&bytes, &name)
            }
        };
        match read() {
            Ok(payload) => Some(payload),
            Err(e) => {
                cats_obs::counter("cats.io.checkpoint.corrupt").inc();
                eprintln!("cats-io: discarding corrupt checkpoint {stage}: {e}");
                None
            }
        }
    }

    /// Removes a stage's slot (training finished; the checkpoint must
    /// not resurrect into a later, different run).
    pub fn clear(&self, stage: &str) {
        let _ = fs::remove_file(self.path(stage));
    }

    /// Removes every slot in the store.
    pub fn clear_all(&self) {
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if entry.path().extension().is_some_and(|e| e == "ckpt") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cats_io_{}_{name}", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values (zlib-compatible).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn checksummed_roundtrip_preserves_payload() {
        let path = tmp("roundtrip");
        let payload = b"{\"model\": [1.5, -2.25, 3e-9]}";
        write_checksummed(&path, payload).unwrap();
        assert_eq!(read_checksummed(&path).unwrap(), payload);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn legacy_files_pass_through_verbatim() {
        let path = tmp("legacy");
        fs::write(&path, b"{\"plain\": \"json\"}").unwrap();
        assert_eq!(read_checksummed(&path).unwrap(), b"{\"plain\": \"json\"}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_detected_with_typed_errors() {
        let path = tmp("corrupt");
        let payload = b"0123456789abcdef0123456789abcdef";
        write_checksummed(&path, payload).unwrap();
        let good = fs::read(&path).unwrap();

        // Zero-length file.
        fs::write(&path, b"").unwrap();
        assert!(matches!(read_checksummed(&path), Err(IoError::Empty { .. })));

        // Truncated payload.
        fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(matches!(
            read_checksummed(&path),
            Err(IoError::LengthMismatch { expected: 32, actual: 27, .. })
        ));

        // Single flipped bit in the payload.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(read_checksummed(&path), Err(IoError::ChecksumMismatch { .. })));

        // Mangled header.
        fs::write(&path, b"CATS-IO1 nothex 32\nxxxx").unwrap();
        assert!(matches!(read_checksummed(&path), Err(IoError::BadHeader { .. })));

        let _ = fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_replaces_existing_contents() {
        let path = tmp("replace");
        atomic_write(&path, b"first generation").unwrap();
        atomic_write(&path, b"second generation").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second generation");
        // No temp droppings left behind.
        let dir = path.parent().unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers = fs::read_dir(dir)
            .unwrap()
            .flatten()
            .filter(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.starts_with(&name) && n != name
            })
            .count();
        assert_eq!(leftovers, 0, "temp file leaked");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_store_saves_loads_and_clears() {
        let dir = tmp("store");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load("w2v").is_none(), "missing slot reads as absent");
        store.save("w2v", b"epoch 3 state").unwrap();
        assert_eq!(store.load("w2v").unwrap(), b"epoch 3 state");
        store.save("w2v", b"epoch 4 state").unwrap();
        assert_eq!(store.load("w2v").unwrap(), b"epoch 4 state", "latest generation wins");

        // Corrupt slot reads as absent, not as an error or stale data.
        let slot = store.path("w2v");
        let mut bytes = fs::read(&slot).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&slot, &bytes).unwrap();
        assert!(store.load("w2v").is_none(), "corrupt checkpoint must be discarded");

        store.save("gbt", b"round 10").unwrap();
        store.clear("gbt");
        assert!(store.load("gbt").is_none());
        store.save("a", b"1").unwrap();
        store.save("b", b"2").unwrap();
        store.clear_all();
        assert!(store.load("a").is_none() && store.load("b").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_store_reads_legacy_io1_slots() {
        let dir = tmp("legacy_slot");
        let store = CheckpointStore::open(&dir).unwrap();
        // A slot written by a pre-IO2 build still resumes...
        write_checksummed(&store.path("w2v"), b"epoch 1").unwrap();
        assert_eq!(store.load("w2v").unwrap(), b"epoch 1");
        // ...and the next save upgrades it to the IO2 container.
        store.save("w2v", b"epoch 2").unwrap();
        assert!(io2::is_io2(&fs::read(store.path("w2v")).unwrap()));
        assert_eq!(store.load("w2v").unwrap(), b"epoch 2");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_switch_panics_after_nth_save() {
        let dir = tmp("kill");
        let store = CheckpointStore::open(&dir).unwrap();
        store.kill_after_saves(2);
        store.save("s", b"one").unwrap();
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.save("s", b"two").unwrap();
        }));
        assert!(killed.is_err(), "second save must simulate the kill");
        // The write itself completed before the simulated kill — exactly
        // like a real crash after fsync+rename.
        assert_eq!(store.load("s").unwrap(), b"two");
        store.save("s", b"three").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
