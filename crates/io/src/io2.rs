//! # CATS-IO2 — versioned little-endian binary container
//!
//! The second-generation on-disk framing (DESIGN.md §12). Where
//! `CATS-IO1` wraps one opaque payload behind one whole-file CRC, IO2 is
//! a *sectioned* container laid out for zero-copy reads: a fixed-size
//! header, a section table (name, offset, length, per-section CRC32),
//! and 8-byte-aligned flat payloads. Numeric arrays inside sections are
//! stored as raw little-endian words, so loading a model is a bounds
//! check plus a `from_le_bytes` sweep instead of a JSON parse.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "CATS-IO2"
//! 8       4     u32 container version (currently 1)
//! 12      4     u32 section count N
//! 16      32×N  section table: 12-byte NUL-padded name,
//!               u64 offset, u64 length, u32 crc32
//! 16+32N  ...   section payloads, each padded to 8-byte alignment
//! ```
//!
//! Forward-compatibility rules:
//!
//! * a reader MUST reject a container whose *version* is newer than it
//!   understands — the table layout itself may have changed;
//! * within a known version, a reader MUST skip section names it does
//!   not recognize — future writers add data as new sections, never by
//!   changing the meaning of existing ones;
//! * every section's CRC is verified up front, unknown sections
//!   included: bit rot in a section we would skip still means the file
//!   is damaged.

use crate::{atomic_write, crc32, IoError};
use std::path::Path;

/// File-format magic of IO2 containers.
pub const MAGIC2: &[u8; 8] = b"CATS-IO2";

/// Container layout version this build writes and the newest it reads.
pub const IO2_VERSION: u32 = 1;

/// Maximum section-name length (the table reserves 12 bytes).
pub const MAX_SECTION_NAME: usize = 12;

const HEADER_LEN: usize = 16;
const ENTRY_LEN: usize = 32;

/// Whether `bytes` begin with the IO2 magic.
pub fn is_io2(bytes: &[u8]) -> bool {
    bytes.starts_with(MAGIC2)
}

fn pad8(n: usize) -> usize {
    (8 - n % 8) % 8
}

/// Accumulates named sections and serializes them into one container.
#[derive(Default)]
pub struct Io2Builder {
    sections: Vec<(String, Vec<u8>)>,
}

impl Io2Builder {
    /// An empty container builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section. Section order is preserved, so a builder fed
    /// the same sections in the same order produces byte-identical
    /// output — the canonical-bytes property `cats-cli convert` verifies.
    ///
    /// # Panics
    /// Panics on a name longer than [`MAX_SECTION_NAME`] bytes, an empty
    /// name, or a duplicate name.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) -> &mut Self {
        assert!(
            !name.is_empty() && name.len() <= MAX_SECTION_NAME,
            "section name {name:?} must be 1..={MAX_SECTION_NAME} bytes"
        );
        assert!(!name.as_bytes().contains(&0), "section name {name:?} contains NUL");
        assert!(self.sections.iter().all(|(n, _)| n != name), "duplicate section {name:?}");
        self.sections.push((name.to_owned(), payload));
        self
    }

    /// Serializes the container.
    pub fn finish(&self) -> Vec<u8> {
        let table_end = HEADER_LEN + ENTRY_LEN * self.sections.len();
        let mut total = table_end;
        let mut offsets = Vec::with_capacity(self.sections.len());
        for (_, payload) in &self.sections {
            total += pad8(total);
            offsets.push(total as u64);
            total += payload.len();
        }
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(MAGIC2);
        out.extend_from_slice(&IO2_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for ((name, payload), &offset) in self.sections.iter().zip(&offsets) {
            let mut name_bytes = [0u8; MAX_SECTION_NAME];
            name_bytes[..name.len()].copy_from_slice(name.as_bytes());
            out.extend_from_slice(&name_bytes);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        for (_, payload) in &self.sections {
            out.resize(out.len() + pad8(out.len()), 0);
            out.extend_from_slice(payload);
        }
        out
    }

    /// [`Io2Builder::finish`] written atomically to `path`.
    pub fn write(&self, path: &Path) -> Result<(), IoError> {
        atomic_write(path, &self.finish())
    }
}

/// A parsed, CRC-verified view over an IO2 container's bytes.
///
/// Parsing validates the header, the section table, and every section's
/// checksum up front; [`Io2File::section`] afterwards is a pure slice
/// lookup. Unknown section names are carried but ignored — readers skip
/// what they do not recognize (the forward-compat rule above).
#[derive(Debug)]
pub struct Io2File<'a> {
    version: u32,
    sections: Vec<(String, &'a [u8])>,
}

impl<'a> Io2File<'a> {
    /// Parses and verifies a container. `path` is for error messages.
    pub fn parse(bytes: &'a [u8], path: &str) -> Result<Self, IoError> {
        if bytes.is_empty() {
            return Err(IoError::Empty { path: path.to_owned() });
        }
        if !is_io2(bytes) {
            return Err(IoError::BadHeader {
                path: path.to_owned(),
                reason: "missing CATS-IO2 magic".into(),
            });
        }
        if bytes.len() < HEADER_LEN {
            return Err(IoError::LengthMismatch {
                path: path.to_owned(),
                expected: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version > IO2_VERSION {
            return Err(IoError::BadHeader {
                path: path.to_owned(),
                reason: format!(
                    "container version {version} is newer than supported {IO2_VERSION}"
                ),
            });
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        let table_end = HEADER_LEN + ENTRY_LEN * count;
        if bytes.len() < table_end {
            // Truncated mid-table: the header promises more entries than
            // the file holds.
            return Err(IoError::LengthMismatch {
                path: path.to_owned(),
                expected: table_end as u64,
                actual: bytes.len() as u64,
            });
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let e = HEADER_LEN + ENTRY_LEN * i;
            let name_raw = &bytes[e..e + MAX_SECTION_NAME];
            let name_len = name_raw.iter().position(|&b| b == 0).unwrap_or(MAX_SECTION_NAME);
            let name = std::str::from_utf8(&name_raw[..name_len])
                .map_err(|_| IoError::BadHeader {
                    path: path.to_owned(),
                    reason: format!("section {i}: non-UTF-8 name"),
                })?
                .to_owned();
            let off =
                u64::from_le_bytes(bytes[e + 12..e + 20].try_into().expect("8 bytes")) as usize;
            let len =
                u64::from_le_bytes(bytes[e + 20..e + 28].try_into().expect("8 bytes")) as usize;
            let expected_crc =
                u32::from_le_bytes(bytes[e + 28..e + 32].try_into().expect("4 bytes"));
            let end = off.checked_add(len).filter(|&end| end <= bytes.len()).ok_or(
                // Payload runs past EOF: truncation after the table.
                IoError::LengthMismatch {
                    path: path.to_owned(),
                    expected: (off + len) as u64,
                    actual: bytes.len() as u64,
                },
            )?;
            let payload = &bytes[off..end];
            let actual_crc = crc32(payload);
            if actual_crc != expected_crc {
                return Err(IoError::ChecksumMismatch {
                    path: path.to_owned(),
                    expected: expected_crc,
                    actual: actual_crc,
                });
            }
            sections.push((name, payload));
        }
        Ok(Self { version, sections })
    }

    /// The container's layout version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// A section's payload, or `None` if absent.
    pub fn section(&self, name: &str) -> Option<&'a [u8]> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, p)| *p)
    }

    /// A section that must exist; a missing one is a [`IoError::BadHeader`].
    pub fn require(&self, name: &str, path: &str) -> Result<&'a [u8], IoError> {
        self.section(name).ok_or_else(|| IoError::BadHeader {
            path: path.to_owned(),
            reason: format!("missing required section {name:?}"),
        })
    }

    /// Section names in table order (unknown ones included).
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }
}

/// Little-endian payload encoder for IO2 section bodies.
///
/// Scalar and array writes append raw LE words; arrays are prefixed
/// with a `u64` element count. The matching reads live on [`Dec`].
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` (bit pattern, so NaNs round-trip exactly).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Appends a count-prefixed `u8` array.
    pub fn u8s(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a count-prefixed `u32` array.
    pub fn u32s(&mut self, v: &[u32]) -> &mut Self {
        self.u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self
    }

    /// Appends a count-prefixed `u64` array.
    pub fn u64s(&mut self, v: &[u64]) -> &mut Self {
        self.u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self
    }

    /// Appends a count-prefixed `f32` array (bit patterns).
    pub fn f32s(&mut self, v: &[f32]) -> &mut Self {
        self.u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self
    }

    /// Appends a count-prefixed `f64` array (bit patterns).
    pub fn f64s(&mut self, v: &[f64]) -> &mut Self {
        self.u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self
    }
}

/// Cursor-style decoder matching [`Enc`]. Every read is bounds-checked
/// and returns a descriptive error instead of panicking, so a damaged
/// (but CRC-valid — e.g. maliciously rewritten) section surfaces as a
/// format error, never as an out-of-bounds slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "section truncated: need {n} bytes for {what}, have {}",
                self.remaining()
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8, "f64")?.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len, "string")?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("non-UTF-8 string: {e}"))
    }

    fn array_len(&mut self, elem: usize, what: &str) -> Result<usize, String> {
        let n = self.u64()? as usize;
        if n.checked_mul(elem).is_none_or(|bytes| bytes > self.remaining()) {
            return Err(format!("section truncated: {what} count {n} exceeds remaining bytes"));
        }
        Ok(n)
    }

    /// Reads a count-prefixed `u8` array.
    pub fn u8s(&mut self) -> Result<Vec<u8>, String> {
        let n = self.array_len(1, "u8 array")?;
        Ok(self.take(n, "u8 array")?.to_vec())
    }

    /// Reads a count-prefixed `u32` array.
    pub fn u32s(&mut self) -> Result<Vec<u32>, String> {
        let n = self.array_len(4, "u32 array")?;
        let raw = self.take(n * 4, "u32 array")?;
        Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4"))).collect())
    }

    /// Reads a count-prefixed `u64` array.
    pub fn u64s(&mut self) -> Result<Vec<u64>, String> {
        let n = self.array_len(8, "u64 array")?;
        let raw = self.take(n * 8, "u64 array")?;
        Ok(raw.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8"))).collect())
    }

    /// Reads a count-prefixed `f32` array.
    pub fn f32s(&mut self) -> Result<Vec<f32>, String> {
        let n = self.array_len(4, "f32 array")?;
        let raw = self.take(n * 4, "f32 array")?;
        Ok(raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4"))).collect())
    }

    /// Reads a count-prefixed `f64` array.
    pub fn f64s(&mut self) -> Result<Vec<f64>, String> {
        let n = self.array_len(8, "f64 array")?;
        let raw = self.take(n * 8, "f64 array")?;
        Ok(raw.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8"))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn container() -> Vec<u8> {
        let mut b = Io2Builder::new();
        b.section("alpha", b"hello world".to_vec());
        b.section("beta", vec![1, 2, 3, 4, 5]);
        b.section("empty", Vec::new());
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_sections() {
        let bytes = container();
        assert!(is_io2(&bytes));
        let f = Io2File::parse(&bytes, "t").unwrap();
        assert_eq!(f.version(), IO2_VERSION);
        assert_eq!(f.section("alpha"), Some(&b"hello world"[..]));
        assert_eq!(f.section("beta"), Some(&[1u8, 2, 3, 4, 5][..]));
        assert_eq!(f.section("empty"), Some(&[][..]));
        assert_eq!(f.section("missing"), None);
        assert!(f.require("missing", "t").is_err());
        assert_eq!(f.section_names().collect::<Vec<_>>(), vec!["alpha", "beta", "empty"]);
    }

    #[test]
    fn payloads_are_8_byte_aligned() {
        let bytes = container();
        let f = Io2File::parse(&bytes, "t").unwrap();
        for name in ["alpha", "beta"] {
            let payload = f.section(name).unwrap();
            let off = payload.as_ptr() as usize - bytes.as_ptr() as usize;
            assert_eq!(off % 8, 0, "section {name} at unaligned offset {off}");
        }
    }

    #[test]
    fn builder_is_deterministic() {
        assert_eq!(container(), container(), "same sections, same bytes");
    }

    #[test]
    fn corruption_is_typed() {
        let bytes = container();

        // Zero-length.
        assert!(matches!(Io2File::parse(&[], "t"), Err(IoError::Empty { .. })));

        // Wrong magic.
        assert!(matches!(
            Io2File::parse(b"NOT-MAGIC bytes here", "t"),
            Err(IoError::BadHeader { .. })
        ));

        // Truncated mid-table.
        assert!(matches!(
            Io2File::parse(&bytes[..HEADER_LEN + ENTRY_LEN / 2], "t"),
            Err(IoError::LengthMismatch { .. })
        ));

        // Truncated mid-payload.
        assert!(matches!(
            Io2File::parse(&bytes[..bytes.len() - 3], "t"),
            Err(IoError::LengthMismatch { .. })
        ));

        // Flipped payload bit (inside "alpha"'s bytes — trailing
        // alignment padding is deliberately not CRC-covered).
        let mut flipped = bytes.clone();
        let at = flipped.windows(11).position(|w| w == b"hello world").unwrap();
        flipped[at] ^= 0x01;
        assert!(matches!(Io2File::parse(&flipped, "t"), Err(IoError::ChecksumMismatch { .. })));

        // Future container version.
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&(IO2_VERSION + 1).to_le_bytes());
        let err = Io2File::parse(&future, "t").unwrap_err();
        assert!(err.to_string().contains("newer than supported"), "{err}");
    }

    #[test]
    fn unknown_sections_are_skipped_not_fatal() {
        // A future writer adds a section this reader has never heard of:
        // known sections still load.
        let mut b = Io2Builder::new();
        b.section("known", b"payload".to_vec());
        b.section("from-future", vec![0xAB; 64]);
        let bytes = b.finish();
        let f = Io2File::parse(&bytes, "t").unwrap();
        assert_eq!(f.section("known"), Some(&b"payload"[..]));
    }

    #[test]
    fn enc_dec_roundtrip() {
        let mut e = Enc::new();
        e.u8(7)
            .u32(0xDEAD_BEEF)
            .u64(1 << 40)
            .f64(-0.125)
            .str("snapshot")
            .u8s(&[1, 2, 3])
            .u32s(&[10, 20])
            .u64s(&[1, u64::MAX])
            .f32s(&[1.5, -2.5])
            .f64s(&[3.25, f64::NAN]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.f64().unwrap(), -0.125);
        assert_eq!(d.str().unwrap(), "snapshot");
        assert_eq!(d.u8s().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.u32s().unwrap(), vec![10, 20]);
        assert_eq!(d.u64s().unwrap(), vec![1, u64::MAX]);
        assert_eq!(d.f32s().unwrap(), vec![1.5, -2.5]);
        let f = d.f64s().unwrap();
        assert_eq!(f[0], 3.25);
        assert!(f[1].is_nan(), "NaN bit pattern survives");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn dec_is_bounds_checked() {
        let mut e = Enc::new();
        e.u32(5);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.u64().is_err(), "read past end is a typed error");
        // A lying array count must not allocate or slice past the end.
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).f64s().is_err());
        let mut e = Enc::new();
        e.str("hello");
        let mut bytes = e.into_bytes();
        bytes.truncate(6);
        assert!(Dec::new(&bytes).str().is_err());
    }
}
