//! Property-based tests for the platform generator and its sampling
//! toolkit.

use cats_platform::dist::{clamp_round, geometric, log_normal, normal, weighted_index};
use cats_platform::{Platform, PlatformConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn weighted_index_stays_in_range(seed in any::<u64>(), weights in prop::collection::vec(0.0f64..10.0, 1..12)) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let i = weighted_index(&mut rng, &weights);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "zero-weight index {i} drawn");
        }
    }

    #[test]
    fn geometric_and_lognormal_are_nonnegative(seed in any::<u64>(), p in 0.01f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = geometric(&mut rng, p); // u64: nonnegative by type
        prop_assert!(log_normal(&mut rng, 0.0, 1.0) > 0.0);
        prop_assert!(normal(&mut rng, 0.0, 1.0).is_finite());
    }

    #[test]
    fn clamp_round_respects_bounds(x in -1e9f64..1e9, lo in 0usize..10, width in 0usize..100) {
        let hi = lo + width;
        let r = clamp_round(x, lo, hi);
        prop_assert!(r >= lo && r <= hi);
    }

    #[test]
    fn generated_platform_invariants(seed in any::<u64>(), n_fraud in 2usize..20, n_normal in 2usize..40) {
        let p = Platform::generate(PlatformConfig {
            seed,
            n_fraud_items: n_fraud,
            n_normal_items: n_normal,
            n_shops: 5,
            users: cats_platform::campaign::UserPopulationConfig {
                n_users: 500,
                hired_fraction: 0.05,
            },
            ..PlatformConfig::default()
        });
        prop_assert_eq!(p.items().len(), n_fraud + n_normal);
        let (s, e, n) = p.label_counts();
        prop_assert_eq!(s + e, n_fraud);
        prop_assert_eq!(n, n_normal);
        for item in p.items() {
            // Sales volume covers the comment count (every comment is an order).
            prop_assert!(item.sales_volume >= item.comments.len() as u64);
            for c in &item.comments {
                prop_assert!(p.user(c.user_id).is_some());
                prop_assert!(!c.content.is_empty());
            }
        }
        // Comment ids are globally unique.
        let mut ids: Vec<u64> = p
            .items()
            .iter()
            .flat_map(|i| i.comments.iter().map(|c| c.id))
            .collect();
        let count = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), count);
    }

    #[test]
    fn same_language_seed_means_same_vocabulary(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let mk = |seed| Platform::generate(PlatformConfig {
            seed,
            n_fraud_items: 2,
            n_normal_items: 2,
            n_shops: 2,
            users: cats_platform::campaign::UserPopulationConfig { n_users: 100, hired_fraction: 0.1 },
            ..PlatformConfig::default()
        });
        let a = mk(seed_a);
        let b = mk(seed_b);
        // Different platform seeds, same (default) language seed: the
        // vocabulary is shared — the cross-platform transfer precondition.
        prop_assert_eq!(a.lexicon().positive(), b.lexicon().positive());
        prop_assert_eq!(a.lexicon().neutral(), b.lexicon().neutral());
    }
}
