//! User population and fraud-campaign model.
//!
//! The measurement study of the paper's §V hinges on *who* buys fraud
//! items: hired promoters with low reliability scores, organized in pools
//! that repeatedly purchase the same targeted items. This module generates
//! the user population and assigns buyers to comments so that the paper's
//! user-aspect findings are reproducible:
//!
//! * userExpValue spans `[100, 27_158_720]`; overall ~20% of users fall
//!   below 2,000;
//! * among fraud-item buyers: ~45% below 2,000, ~39% below 1,000, ~15% at
//!   the floor value 100 (Fig 11);
//! * hired users buy fraud items repeatedly (some hundreds of times), and
//!   pairs of hired users co-purchase ≥2 common fraud items because they
//!   work from shared pools (the paper's 83,745 pairs / 1,056 users).

use crate::dist::{log_normal, weighted_index};
use crate::entities::{anonymized_nickname, Client, User, MAX_USER_EXP, MIN_USER_EXP};
use rand::{Rng, RngExt};

/// Parameters of the user population.
#[derive(Debug, Clone, Copy)]
pub struct UserPopulationConfig {
    /// Total registered users.
    pub n_users: usize,
    /// Fraction of users that are hired promoters.
    pub hired_fraction: f64,
}

impl Default for UserPopulationConfig {
    fn default() -> Self {
        Self { n_users: 50_000, hired_fraction: 0.02 }
    }
}

/// Generates the user population. Hired users are placed at the front of
/// the id space grouping them into contiguous pools.
pub fn generate_users(cfg: UserPopulationConfig, rng: &mut impl Rng) -> Vec<User> {
    let n_hired = ((cfg.n_users as f64) * cfg.hired_fraction).round() as usize;
    let mut users = Vec::with_capacity(cfg.n_users);
    for id in 0..cfg.n_users {
        let hired = id < n_hired;
        let exp_value = if hired { sample_hired_exp(rng) } else { sample_organic_exp(rng) };
        users.push(User {
            id: id as u32,
            nickname: anonymized_nickname(id as u32),
            exp_value,
            hired,
        });
    }
    users
}

/// Hired promoters: overwhelmingly low reliability. Mixture tuned so the
/// fraud-buyer marginals of Fig 11 come out right after pool sampling:
/// a thick atom at the floor (100), mass below 1,000 and 2,000, and a thin
/// tail of "aged" accounts.
fn sample_hired_exp(rng: &mut impl Rng) -> u64 {
    match weighted_index(rng, &[0.25, 0.35, 0.15, 0.20, 0.05]) {
        0 => MIN_USER_EXP,
        1 => rng.random_range(MIN_USER_EXP + 1..1_000),
        2 => rng.random_range(1_000..2_000),
        3 => rng.random_range(2_000..20_000),
        _ => (log_normal(rng, 10.0, 1.0) as u64).clamp(20_000, MAX_USER_EXP),
    }
}

/// Organic users: log-normal reliability, floor-clamped; ~20% below 2,000
/// (paper: "only ~20% of [overall users] have userExpValue smaller than
/// 2,000").
fn sample_organic_exp(rng: &mut impl Rng) -> u64 {
    let v = log_normal(rng, 8.6, 1.35) as u64;
    v.clamp(MIN_USER_EXP, MAX_USER_EXP)
}

/// A fraud campaign: a set of hired-user pools. Each fraud item is promoted
/// by one pool; every promo comment on it is written by a member of that
/// pool, which is what makes pool-mates co-purchase the same fraud items.
#[derive(Debug, Clone)]
pub struct Campaign {
    pools: Vec<Vec<u32>>,
}

impl Campaign {
    /// Partitions the hired users (by id) into `n_pools` round-robin pools.
    ///
    /// # Panics
    /// Panics if there are no hired users or `n_pools == 0`.
    pub fn from_users(users: &[User], n_pools: usize) -> Self {
        assert!(n_pools > 0, "campaign needs at least one pool");
        let hired: Vec<u32> = users.iter().filter(|u| u.hired).map(|u| u.id).collect();
        assert!(!hired.is_empty(), "campaign needs hired users");
        let n_pools = n_pools.min(hired.len());
        let mut pools = vec![Vec::new(); n_pools];
        for (i, id) in hired.into_iter().enumerate() {
            pools[i % n_pools].push(id);
        }
        Self { pools }
    }

    /// Number of pools.
    pub fn n_pools(&self) -> usize {
        self.pools.len()
    }

    /// Picks the pool promoting fraud item number `item_ordinal`.
    pub fn pool_for_item(&self, item_ordinal: usize) -> &[u32] {
        &self.pools[item_ordinal % self.pools.len()]
    }

    /// Samples a promoter for a fraud item from its pool.
    pub fn sample_promoter(&self, item_ordinal: usize, rng: &mut impl Rng) -> u32 {
        let pool = self.pool_for_item(item_ordinal);
        pool[rng.random_range(0..pool.len())]
    }
}

/// Client-source distributions (paper Fig 12): fraud orders come mostly
/// from the Web client, normal orders mostly from Android.
pub fn sample_client(fraud_order: bool, rng: &mut impl Rng) -> Client {
    let weights: [f64; 4] = if fraud_order {
        // [Web, Android, iPhone, Wechat]
        [0.52, 0.22, 0.16, 0.10]
    } else {
        [0.14, 0.47, 0.28, 0.11]
    };
    Client::ALL[weighted_index(rng, &weights)]
}

/// Samples an organic buyer id uniformly among non-hired users, given the
/// hired-user count (organic ids are `n_hired..n_users`).
pub fn sample_organic_buyer(n_hired: usize, n_users: usize, rng: &mut impl Rng) -> u32 {
    rng.random_range(n_hired..n_users) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn users(n: usize, frac: f64) -> Vec<User> {
        generate_users(UserPopulationConfig { n_users: n, hired_fraction: frac }, &mut rng())
    }

    #[test]
    fn population_size_and_hired_count() {
        let us = users(10_000, 0.02);
        assert_eq!(us.len(), 10_000);
        assert_eq!(us.iter().filter(|u| u.hired).count(), 200);
        // hired users occupy the front of the id space
        assert!(us[..200].iter().all(|u| u.hired));
        assert!(us[200..].iter().all(|u| !u.hired));
    }

    #[test]
    fn exp_values_in_bounds() {
        for u in users(5_000, 0.05) {
            assert!(u.exp_value >= MIN_USER_EXP, "{}", u.exp_value);
            assert!(u.exp_value <= MAX_USER_EXP, "{}", u.exp_value);
        }
    }

    #[test]
    fn overall_low_reliability_share_near_twenty_percent() {
        let us = users(40_000, 0.02);
        let below = us.iter().filter(|u| u.exp_value < 2_000).count() as f64;
        let frac = below / us.len() as f64;
        assert!((0.12..0.30).contains(&frac), "below-2000 fraction {frac}");
    }

    #[test]
    fn hired_users_skew_low() {
        let us = users(40_000, 0.05);
        let hired_low = us.iter().filter(|u| u.hired && u.exp_value < 2_000).count() as f64
            / us.iter().filter(|u| u.hired).count() as f64;
        assert!(hired_low > 0.5, "hired low fraction {hired_low}");
        let floor = us.iter().filter(|u| u.hired && u.exp_value == MIN_USER_EXP).count() as f64
            / us.iter().filter(|u| u.hired).count() as f64;
        assert!((0.18..0.35).contains(&floor), "floor fraction {floor}");
    }

    #[test]
    fn campaign_pools_partition_hired_users() {
        let us = users(1_000, 0.1);
        let c = Campaign::from_users(&us, 7);
        assert_eq!(c.n_pools(), 7);
        let total: usize = (0..7).map(|i| c.pool_for_item(i).len()).sum();
        assert_eq!(total, 100);
        // pools are disjoint
        let mut all: Vec<u32> = (0..7).flat_map(|i| c.pool_for_item(i).to_vec()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn pool_assignment_is_stable_per_item() {
        let us = users(1_000, 0.1);
        let c = Campaign::from_users(&us, 5);
        assert_eq!(c.pool_for_item(3), c.pool_for_item(3));
        assert_eq!(c.pool_for_item(2), c.pool_for_item(7), "wraps modulo pools");
    }

    #[test]
    fn promoter_comes_from_items_pool() {
        let us = users(1_000, 0.1);
        let c = Campaign::from_users(&us, 4);
        let mut r = rng();
        for _ in 0..100 {
            let p = c.sample_promoter(2, &mut r);
            assert!(c.pool_for_item(2).contains(&p));
        }
    }

    #[test]
    fn more_pools_than_hired_users_clamps() {
        let us = users(100, 0.02); // 2 hired
        let c = Campaign::from_users(&us, 10);
        assert_eq!(c.n_pools(), 2);
    }

    #[test]
    fn fraud_orders_prefer_web_normal_prefer_android() {
        let mut r = rng();
        let n = 10_000;
        let count = |fraud: bool, client: Client, r: &mut StdRng| {
            (0..n).filter(|_| sample_client(fraud, r) == client).count() as f64 / n as f64
        };
        let fraud_web = count(true, Client::Web, &mut r);
        let normal_web = count(false, Client::Web, &mut r);
        let normal_android = count(false, Client::Android, &mut r);
        assert!(fraud_web > 0.45, "{fraud_web}");
        assert!(normal_web < 0.2, "{normal_web}");
        assert!(normal_android > 0.4, "{normal_android}");
    }

    #[test]
    fn organic_buyer_never_hired() {
        let mut r = rng();
        for _ in 0..100 {
            let id = sample_organic_buyer(50, 1_000, &mut r);
            assert!((50..1_000).contains(&(id as usize)));
        }
    }
}
