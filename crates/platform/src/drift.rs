//! Epoch-indexed adversarial drift.
//!
//! Fraud campaigns are not stationary: once a detector ships, operators
//! probe it and adapt. This module models that arms race as a sequence of
//! *epochs*, each one a coordinated shift of the fraud-generation process
//! while organic behaviour stays fixed:
//!
//! * **vocabulary mutation** — every epoch mints fresh homograph variants
//!   of the canonical positive words ([`SyntheticLexicon::coin_variant`]),
//!   spellings a word2vec model trained in an earlier epoch has never
//!   embedded, and swaps them into promo comments;
//! * **template rotation** — the promotional bigram catchphrases (the
//!   `hen haoping` 2-grams of set *G*) are replaced with out-of-vocabulary
//!   intensifiers each epoch, eroding `averageNgramNumber`;
//! * **feature-aware evasion** — promo style parameters migrate toward the
//!   organic-positive distribution (length, punctuation, repetition,
//!   positive-word saturation), directly attacking the 11 Table II
//!   features the detector was trained on.
//!
//! Epoch 0 is defined to be a no-op: [`Platform::generate_drifted`] at
//! epoch 0 reproduces [`Platform::generate`] byte-for-byte, so drift
//! experiments share their baseline with the stationary pipeline.
//!
//! [`Platform::generate_drifted`]: crate::platform::Platform::generate_drifted
//! [`Platform::generate`]: crate::platform::Platform::generate

use crate::comment_model::{evasive_promo_params, generate_with_params, TEMPLATE_LEFT};
use crate::lexicon::{SyntheticLexicon, CANONICAL_POSITIVE};
use rand::{rngs::StdRng, Rng, RngExt, SeedableRng};

/// Knobs of the epoch drift process.
#[derive(Debug, Clone, Copy)]
pub struct PlatformDriftConfig {
    /// Seed of the drift process, independent of the platform seed so the
    /// same adversary can be replayed against differently-seeded traffic.
    pub seed: u64,
    /// Fresh homograph variants minted per epoch (capped at the canonical
    /// positive inventory).
    pub variants_per_epoch: usize,
    /// Probability that a canonical positive token inside a promo comment
    /// is swapped for this epoch's variant. Kept below 1 so variants still
    /// co-occur with their canonical forms — the shared contexts a
    /// *retrained* word2vec needs to re-discover them.
    pub variant_swap: f64,
    /// Evasion added per epoch; epoch `e` runs at `e * evasion_per_epoch`,
    /// clamped to `max_evasion`.
    pub evasion_per_epoch: f64,
    /// Evasion ceiling. Below 1.0 a residue of promo style always remains,
    /// mirroring the paper's observation that campaigns cannot fully mimic
    /// organic behaviour without losing their promotional function.
    pub max_evasion: f64,
    /// Whether promotional templates rotate each epoch.
    pub rotate_templates: bool,
}

impl Default for PlatformDriftConfig {
    fn default() -> Self {
        Self {
            seed: 0xD21F7,
            variants_per_epoch: 6,
            variant_swap: 0.35,
            evasion_per_epoch: 0.22,
            max_evasion: 0.85,
            rotate_templates: true,
        }
    }
}

/// The fraud-side mutations of one drift epoch, derived deterministically
/// from a [`PlatformDriftConfig`] and the epoch index.
#[derive(Debug, Clone)]
pub struct EpochDrift {
    epoch: u32,
    evasion: f64,
    variant_swap: f64,
    /// Canonical positive word → this epoch's fresh variant.
    variant_map: Vec<(String, String)>,
    /// Promotional template left-words in force this epoch.
    templates: Vec<String>,
}

impl EpochDrift {
    /// Derives epoch `epoch`'s mutations against `lex`. Epoch 0 carries no
    /// mutations at all (empty variant map, canonical templates, zero
    /// evasion) so drifted generation degenerates to the stationary model.
    pub fn generate(lex: &SyntheticLexicon, config: &PlatformDriftConfig, epoch: u32) -> Self {
        let mut rng =
            StdRng::seed_from_u64(config.seed ^ 0x9E3779B97F4A7C15u64.wrapping_mul(epoch as u64));
        let evasion = (epoch as f64 * config.evasion_per_epoch).min(config.max_evasion).max(0.0);
        let mut variant_map = Vec::new();
        let mut templates: Vec<String> = TEMPLATE_LEFT.iter().map(|s| s.to_string()).collect();
        if epoch > 0 {
            let n = config.variants_per_epoch.min(CANONICAL_POSITIVE.len());
            for canon in CANONICAL_POSITIVE.iter().take(n) {
                let variant = lex.coin_variant(canon, &mut rng);
                variant_map.push(((*canon).to_string(), variant));
            }
            if config.rotate_templates {
                templates = TEMPLATE_LEFT.iter().map(|t| lex.coin_variant(t, &mut rng)).collect();
            }
        }
        Self { epoch, evasion, variant_swap: config.variant_swap, variant_map, templates }
    }

    /// The epoch index.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Evasion level in force, in `[0, 1]`.
    pub fn evasion(&self) -> f64 {
        self.evasion
    }

    /// This epoch's canonical-positive → variant pairs.
    pub fn variants(&self) -> &[(String, String)] {
        &self.variant_map
    }

    /// This epoch's promotional template left-words.
    pub fn templates(&self) -> &[String] {
        &self.templates
    }

    /// Generates one evasive promo comment: style parameters lerped toward
    /// organic, this epoch's templates spliced, and canonical positive
    /// tokens swapped for fresh variants at [`PlatformDriftConfig::variant_swap`].
    pub fn promo_comment(
        &self,
        lex: &SyntheticLexicon,
        topic: usize,
        rng: &mut impl Rng,
    ) -> String {
        let refs: Vec<&str> = self.templates.iter().map(|s| s.as_str()).collect();
        let raw = generate_with_params(lex, evasive_promo_params(self.evasion), topic, &refs, rng);
        if self.variant_map.is_empty() {
            return raw;
        }
        let mut out = String::with_capacity(raw.len() + 8);
        for (i, tok) in raw.split(' ').enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let swapped = self
                .variant_map
                .iter()
                .find(|(canon, _)| canon == tok)
                .filter(|_| rng.random_bool(self.variant_swap))
                .map(|(_, v)| v.as_str())
                .unwrap_or(tok);
            out.push_str(swapped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::LexiconConfig;

    fn lex() -> SyntheticLexicon {
        SyntheticLexicon::generate(LexiconConfig::default(), 5)
    }

    #[test]
    fn epoch_zero_is_identity() {
        let l = lex();
        let d = EpochDrift::generate(&l, &PlatformDriftConfig::default(), 0);
        assert_eq!(d.evasion(), 0.0);
        assert!(d.variants().is_empty());
        assert_eq!(
            d.templates().iter().map(String::as_str).collect::<Vec<_>>(),
            TEMPLATE_LEFT.to_vec()
        );
    }

    #[test]
    fn variants_are_fresh_and_unknown_to_lexicon() {
        let l = lex();
        let d = EpochDrift::generate(&l, &PlatformDriftConfig::default(), 1);
        assert_eq!(d.variants().len(), 6);
        for (canon, variant) in d.variants() {
            assert_ne!(canon, variant);
            assert!(l.class_of(variant).is_none(), "variant {variant} leaked into lexicon");
        }
    }

    #[test]
    fn epochs_mint_different_variants_and_templates() {
        let l = lex();
        let cfg = PlatformDriftConfig::default();
        let d1 = EpochDrift::generate(&l, &cfg, 1);
        let d2 = EpochDrift::generate(&l, &cfg, 2);
        assert_ne!(d1.variants(), d2.variants());
        assert_ne!(d1.templates(), d2.templates());
        for t in d1.templates() {
            assert!(l.class_of(t).is_none(), "rotated template {t} is in-vocabulary");
        }
    }

    #[test]
    fn drift_is_deterministic() {
        let l = lex();
        let cfg = PlatformDriftConfig::default();
        let a = EpochDrift::generate(&l, &cfg, 3);
        let b = EpochDrift::generate(&l, &cfg, 3);
        assert_eq!(a.variants(), b.variants());
        assert_eq!(a.templates(), b.templates());
        use rand::SeedableRng;
        let mut ra = StdRng::seed_from_u64(77);
        let mut rb = StdRng::seed_from_u64(77);
        assert_eq!(a.promo_comment(&l, 4, &mut ra), b.promo_comment(&l, 4, &mut rb));
    }

    #[test]
    fn evasion_shortens_and_depunctuates_promo_comments() {
        let l = lex();
        let cfg = PlatformDriftConfig::default();
        let calm = EpochDrift::generate(&l, &cfg, 0);
        let hot = EpochDrift::generate(&l, &cfg, 4);
        assert!(hot.evasion() > 0.5);
        let mut rng = StdRng::seed_from_u64(9);
        let stat = |d: &EpochDrift, rng: &mut StdRng| {
            let mut len = 0.0;
            let mut punct = 0.0;
            for _ in 0..300 {
                let c = d.promo_comment(&l, 2, rng);
                let toks: Vec<&str> = c.split(' ').collect();
                len += toks.len() as f64;
                punct += toks.iter().filter(|t| t.chars().all(|ch| !ch.is_alphanumeric())).count()
                    as f64;
            }
            (len / 300.0, punct / 300.0)
        };
        let (len0, punct0) = stat(&calm, &mut rng);
        let (len4, punct4) = stat(&hot, &mut rng);
        assert!(len4 < 0.6 * len0, "evasion should shorten promos: {len4} vs {len0}");
        assert!(punct4 < punct0, "evasion should shed punctuation: {punct4} vs {punct0}");
    }

    #[test]
    fn variant_swap_injects_variants_into_promo_text() {
        let l = lex();
        let cfg = PlatformDriftConfig { variant_swap: 0.9, ..PlatformDriftConfig::default() };
        let d = EpochDrift::generate(&l, &cfg, 2);
        let mut rng = StdRng::seed_from_u64(31);
        let mut hits = 0usize;
        for _ in 0..200 {
            let c = d.promo_comment(&l, 1, &mut rng);
            if c.split(' ').any(|t| d.variants().iter().any(|(_, v)| v == t)) {
                hits += 1;
            }
        }
        assert!(hits > 40, "expected variant tokens in promo comments, saw {hits}/200");
    }
}
