//! Generative comment model.
//!
//! Emits synthetic comments whose per-class statistics reproduce the
//! paper's empirical observations (§II-A, Figs 1–5):
//!
//! * fraud-promotion comments are **long** (Fig 4), **chaotically
//!   organized** — i.e. high token entropy (Fig 3) — carry **more
//!   punctuation** (Fig 2), **repeat words** (lower unique ratio, Fig 5),
//!   are **saturated with positive words and essentially free of negative
//!   words** (the "deceptive characteristic"), and embed promotional
//!   bigram templates (the positive 2-grams of set *G*);
//! * organic comments are short, mildly positive on average (real review
//!   sentiment skews positive, which is why the paper's Fig 1 puts normal
//!   items near 0.7 rather than 0.5), and contain genuine negative words.

use crate::dist::{clamp_round, normal, weighted_index};
use crate::lexicon::SyntheticLexicon;
use rand::{Rng, RngExt};

/// Punctuation marks inserted by the comment model (a subset of
/// `cats_text::segment::PUNCTUATION`).
const MARKS: &[&str] = &["，", "。", "！", "？", ",", ".", "!"];

/// The style a single comment is generated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommentStyle {
    /// Written by a hired promoter: long, gushing, repetitive.
    FraudPromo,
    /// Genuine but effusive buyer: long positive review with some
    /// promotional hallmarks — the overlap population that makes the
    /// classification problem of Table III non-trivial.
    OrganicEnthusiast,
    /// Genuine satisfied buyer.
    OrganicPositive,
    /// Genuine neutral buyer ("book is fine").
    OrganicNeutral,
    /// Genuine dissatisfied buyer.
    OrganicNegative,
}

/// Token-class sampling weights and shape parameters per style.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StyleParams {
    /// Mean/SD of comment length in tokens (before punctuation insertion).
    pub(crate) len_mean: f64,
    pub(crate) len_sd: f64,
    pub(crate) len_min: usize,
    pub(crate) len_max: usize,
    /// Weights over [positive, negative, neutral, function] content words.
    pub(crate) class_weights: [f64; 4],
    /// Probability that a content token is immediately followed by a
    /// punctuation mark.
    pub(crate) punct_after: f64,
    /// Probability of duplicating a recently used content word instead of
    /// drawing a fresh one.
    pub(crate) dup_prob: f64,
    /// Probability of splicing in a promotional bigram template.
    pub(crate) template_prob: f64,
    /// Probability that a just-emitted positive word is immediately
    /// followed by another positive word (sentiment bursts — "great,
    /// lovely, perfect!"). Bursts are what give polarity words the shared
    /// contexts word2vec needs for the Table I expansion.
    pub(crate) pos_burst: f64,
    /// Same for negative words (complaint runs).
    pub(crate) neg_burst: f64,
}

pub(crate) fn params(style: CommentStyle) -> StyleParams {
    match style {
        CommentStyle::FraudPromo => StyleParams {
            len_mean: 55.0,
            len_sd: 20.0,
            len_min: 18,
            len_max: 170,
            class_weights: [0.30, 0.002, 0.38, 0.32],
            punct_after: 0.22,
            dup_prob: 0.22,
            template_prob: 0.14,
            pos_burst: 0.5,
            neg_burst: 0.0,
        },
        CommentStyle::OrganicEnthusiast => StyleParams {
            len_mean: 32.0,
            len_sd: 14.0,
            len_min: 8,
            len_max: 110,
            class_weights: [0.20, 0.01, 0.42, 0.37],
            punct_after: 0.16,
            dup_prob: 0.12,
            template_prob: 0.07,
            pos_burst: 0.42,
            neg_burst: 0.05,
        },
        CommentStyle::OrganicPositive => StyleParams {
            len_mean: 14.0,
            len_sd: 6.0,
            len_min: 3,
            len_max: 45,
            class_weights: [0.13, 0.02, 0.45, 0.40],
            punct_after: 0.10,
            dup_prob: 0.04,
            template_prob: 0.02,
            pos_burst: 0.35,
            neg_burst: 0.1,
        },
        CommentStyle::OrganicNeutral => StyleParams {
            len_mean: 9.0,
            len_sd: 4.0,
            len_min: 2,
            len_max: 30,
            class_weights: [0.05, 0.04, 0.50, 0.41],
            punct_after: 0.08,
            dup_prob: 0.03,
            template_prob: 0.0,
            pos_burst: 0.3,
            neg_burst: 0.25,
        },
        CommentStyle::OrganicNegative => StyleParams {
            len_mean: 16.0,
            len_sd: 7.0,
            len_min: 3,
            len_max: 50,
            class_weights: [0.03, 0.18, 0.44, 0.35],
            punct_after: 0.12,
            dup_prob: 0.05,
            template_prob: 0.0,
            pos_burst: 0.15,
            neg_burst: 0.45,
        },
    }
}

/// Promotional bigram templates: (left, positive-word index range into the
/// canonical positives). Spliced verbatim into promo comments, they create
/// the frequent positive 2-grams behind `averageNgramNumber` and give
/// word2vec the shared contexts it needs to cluster positive words.
pub(crate) const TEMPLATE_LEFT: &[&str] = &["hen", "zhen", "feichang", "jiushi", "queshi"];

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Promo-comment parameters under adversarial evasion.
///
/// A campaign operator who knows the detector keys on length, punctuation,
/// repetition, and positive-word saturation (Figs 1–5) reacts by making
/// shill comments *look organic*: every style knob is interpolated from
/// [`CommentStyle::FraudPromo`] toward [`CommentStyle::OrganicPositive`]
/// by `evasion ∈ [0, 1]`. At 0 this is exactly the stock promo style; at 1
/// the text statistics are indistinguishable from a genuine satisfied
/// buyer and only non-textual signals (campaign structure, vocabulary
/// variants) remain.
pub(crate) fn evasive_promo_params(evasion: f64) -> StyleParams {
    let t = evasion.clamp(0.0, 1.0);
    let a = params(CommentStyle::FraudPromo);
    let b = params(CommentStyle::OrganicPositive);
    let mut class_weights = [0.0; 4];
    for (i, w) in class_weights.iter_mut().enumerate() {
        *w = lerp(a.class_weights[i], b.class_weights[i], t);
    }
    StyleParams {
        len_mean: lerp(a.len_mean, b.len_mean, t),
        len_sd: lerp(a.len_sd, b.len_sd, t),
        len_min: lerp(a.len_min as f64, b.len_min as f64, t).round() as usize,
        len_max: lerp(a.len_max as f64, b.len_max as f64, t).round() as usize,
        class_weights,
        punct_after: lerp(a.punct_after, b.punct_after, t),
        dup_prob: lerp(a.dup_prob, b.dup_prob, t),
        template_prob: lerp(a.template_prob, b.template_prob, t),
        pos_burst: lerp(a.pos_burst, b.pos_burst, t),
        neg_burst: lerp(a.neg_burst, b.neg_burst, t),
    }
}

/// Draws a Zipf-skewed index into a polarity pool: real review language
/// concentrates most polarity mass on a handful of canonical words (the
/// paper's word clouds are dominated by 不错/很好/满意), and the canonical
/// words sit at the front of the generated pools.
fn zipfish_index(len: usize, rng: &mut impl Rng) -> usize {
    let u: f64 = rng.random();
    (((u * u) * len as f64) as usize).min(len - 1)
}

/// The contiguous slice of the neutral vocabulary belonging to `topic`.
fn topic_slice(neutral: &[String], topic: usize) -> &[String] {
    let n = neutral.len();
    if n <= N_TOPICS {
        return neutral;
    }
    let per = n / N_TOPICS;
    let t = topic % N_TOPICS;
    &neutral[t * per..((t + 1) * per).min(n)]
}

/// Number of topics the neutral vocabulary is partitioned into. Comments
/// about one item draw their neutral words from the item's topic slice,
/// giving neutral words *local* contexts while polarity words stay global
/// — the structure that lets word2vec separate polarity from topic.
pub const N_TOPICS: usize = 30;

/// Generates one comment in `style` with a random topic.
pub fn generate_comment(lex: &SyntheticLexicon, style: CommentStyle, rng: &mut impl Rng) -> String {
    let topic = rng.random_range(0..N_TOPICS);
    generate_comment_with_topic(lex, style, topic, rng)
}

/// Generates one comment in `style` about an item of `topic`, returning
/// the raw text (tokens joined by single spaces; punctuation attached as
/// separate space-delimited marks, which the whitespace segmenter
/// re-splits losslessly).
pub fn generate_comment_with_topic(
    lex: &SyntheticLexicon,
    style: CommentStyle,
    topic: usize,
    rng: &mut impl Rng,
) -> String {
    generate_with_params(lex, params(style), topic, TEMPLATE_LEFT, rng)
}

/// Core token sampler behind [`generate_comment_with_topic`], with the
/// style parameters and the promotional-template pool injected. The drift
/// layer uses this to emit evasive promo comments with rotated templates;
/// the canonical path passes `params(style)` and [`TEMPLATE_LEFT`], which
/// consumes the RNG identically to the pre-drift generator.
pub(crate) fn generate_with_params(
    lex: &SyntheticLexicon,
    p: StyleParams,
    topic: usize,
    templates: &[&str],
    rng: &mut impl Rng,
) -> String {
    let target_len = clamp_round(normal(rng, p.len_mean, p.len_sd), p.len_min, p.len_max);
    let mut tokens: Vec<&str> = Vec::with_capacity(target_len + target_len / 4);
    let mut recent: Vec<&str> = Vec::with_capacity(8);
    // Polarity of the most recently emitted content word: Some(true) for
    // positive, Some(false) for negative.
    let mut last_polarity: Option<bool> = None;

    while tokens.len() < target_len {
        // Sentiment burst: polarity words arrive in runs.
        if let Some(pol) = last_polarity {
            let burst = if pol { p.pos_burst } else { p.neg_burst };
            if rng.random_bool(burst) {
                let pool = if pol { lex.positive() } else { lex.negative() };
                let w = pool[zipfish_index(pool.len(), rng)].as_str();
                tokens.push(w);
                if recent.len() == 8 {
                    recent.remove(0);
                }
                recent.push(w);
                if rng.random_bool(p.punct_after) {
                    tokens.push(MARKS[rng.random_range(0..MARKS.len())]);
                }
                continue;
            }
            last_polarity = None;
        }
        // Promotional template splice.
        if rng.random_bool(p.template_prob) {
            let left = templates[rng.random_range(0..templates.len())];
            let pos = &lex.positive()[rng.random_range(0..lex.positive().len().min(24))];
            tokens.push(left);
            tokens.push(pos);
            recent.push(pos);
            last_polarity = Some(true);
            continue;
        }
        // Word duplication (fraud comments repeat their pitch).
        if !recent.is_empty() && rng.random_bool(p.dup_prob) {
            let w = recent[rng.random_range(0..recent.len())];
            tokens.push(w);
        } else {
            let class = weighted_index(rng, &p.class_weights);
            let pool: &[String] = match class {
                0 => lex.positive(),
                1 => lex.negative(),
                2 => topic_slice(lex.neutral(), topic),
                _ => lex.function(),
            };
            let w = if class <= 1 {
                pool[zipfish_index(pool.len(), rng)].as_str()
            } else {
                pool[rng.random_range(0..pool.len())].as_str()
            };
            tokens.push(w);
            if class != 3 {
                if recent.len() == 8 {
                    recent.remove(0);
                }
                recent.push(w);
            }
            last_polarity = match class {
                0 => Some(true),
                1 => Some(false),
                _ => None,
            };
        }
        if rng.random_bool(p.punct_after) {
            tokens.push(MARKS[rng.random_range(0..MARKS.len())]);
        }
    }
    // Terminal mark.
    tokens.push(if rng.random_bool(0.5) { "。" } else { "!" });
    tokens.join(" ")
}

/// Mixture of styles used for the comments of one item class.
#[derive(Debug, Clone, Copy)]
pub struct StyleMixture {
    /// Weights over [FraudPromo, OrganicEnthusiast, OrganicPositive,
    /// OrganicNeutral, OrganicNegative].
    pub weights: [f64; 5],
}

impl StyleMixture {
    /// Comment mixture of a fraud item with the given hired-promotion
    /// share. Real campaigns vary in aggressiveness (some flood an item
    /// with shills, others sprinkle them among genuine sales), which is
    /// what makes some fraud items hard to detect; `promo_share` controls
    /// that, with the remaining organic mass split 10/55/35 between
    /// positive/neutral/negative buyers.
    pub fn fraud_with_share(promo_share: f64) -> Self {
        let promo = promo_share.clamp(0.05, 0.98);
        let rest = 1.0 - promo;
        Self { weights: [promo, 0.0, rest * 0.10, rest * 0.55, rest * 0.35] }
    }

    /// The default aggressive fraud mixture.
    pub fn fraud() -> Self {
        Self::fraud_with_share(0.85)
    }

    /// Comment mixture of a typical normal item: organic, skewing
    /// positive, with a sliver of enthusiasts.
    pub fn normal() -> Self {
        Self { weights: [0.0, 0.04, 0.36, 0.48, 0.12] }
    }

    /// Comment mixture of a *popular* normal item: effusive fans dominate.
    /// These items carry promotional hallmarks without being promoted —
    /// the detector's main source of false positives.
    pub fn normal_enthusiast() -> Self {
        Self { weights: [0.0, 0.45, 0.35, 0.15, 0.05] }
    }

    /// Samples a style from the mixture.
    pub fn sample(&self, rng: &mut impl Rng) -> CommentStyle {
        match weighted_index(rng, &self.weights) {
            0 => CommentStyle::FraudPromo,
            1 => CommentStyle::OrganicEnthusiast,
            2 => CommentStyle::OrganicPositive,
            3 => CommentStyle::OrganicNeutral,
            _ => CommentStyle::OrganicNegative,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::LexiconConfig;
    use cats_text::{stats, Segmenter, WhitespaceSegmenter};
    use rand::{rngs::StdRng, SeedableRng};

    fn lex() -> SyntheticLexicon {
        SyntheticLexicon::generate(LexiconConfig::default(), 5)
    }

    fn batch(style: CommentStyle, n: usize) -> Vec<Vec<String>> {
        let l = lex();
        let mut rng = StdRng::seed_from_u64(11);
        let seg = WhitespaceSegmenter;
        (0..n).map(|_| seg.segment(&generate_comment(&l, style, &mut rng))).collect()
    }

    fn mean<F: Fn(&[String]) -> f64>(cs: &[Vec<String>], f: F) -> f64 {
        cs.iter().map(|c| f(c)).sum::<f64>() / cs.len() as f64
    }

    #[test]
    fn fraud_comments_are_longer() {
        let fraud = batch(CommentStyle::FraudPromo, 200);
        let neutral = batch(CommentStyle::OrganicNeutral, 200);
        let lf = mean(&fraud, |c| c.len() as f64);
        let ln = mean(&neutral, |c| c.len() as f64);
        assert!(lf > 2.0 * ln, "fraud {lf} vs neutral {ln}");
    }

    #[test]
    fn fraud_comments_have_higher_entropy() {
        let fraud = batch(CommentStyle::FraudPromo, 200);
        let neutral = batch(CommentStyle::OrganicNeutral, 200);
        let ef = mean(&fraud, stats::token_entropy);
        let en = mean(&neutral, stats::token_entropy);
        assert!(ef > en, "fraud {ef} vs neutral {en}");
    }

    #[test]
    fn fraud_comments_have_more_punctuation() {
        let fraud = batch(CommentStyle::FraudPromo, 200);
        let neutral = batch(CommentStyle::OrganicNeutral, 200);
        let pf = mean(&fraud, |c| stats::punctuation_count(c) as f64);
        let pn = mean(&neutral, |c| stats::punctuation_count(c) as f64);
        assert!(pf > 2.0 * pn, "fraud {pf} vs neutral {pn}");
    }

    #[test]
    fn fraud_comments_have_lower_unique_ratio() {
        let fraud = batch(CommentStyle::FraudPromo, 200);
        let neutral = batch(CommentStyle::OrganicNeutral, 200);
        let uf = mean(&fraud, stats::unique_word_ratio);
        let un = mean(&neutral, stats::unique_word_ratio);
        assert!(uf < un, "fraud {uf} vs neutral {un}");
    }

    #[test]
    fn fraud_comments_are_positive_heavy_and_negative_free() {
        let l = lex();
        let fraud = batch(CommentStyle::FraudPromo, 200);
        let negative = batch(CommentStyle::OrganicNegative, 200);
        let count = |cs: &[Vec<String>], f: &dyn Fn(&str) -> bool| -> f64 {
            mean(cs, |c| c.iter().filter(|t| f(t)).count() as f64)
        };
        let is_pos = |w: &str| l.positive().iter().any(|p| p == w);
        let is_neg = |w: &str| l.negative().iter().any(|p| p == w);
        assert!(count(&fraud, &is_pos) > 5.0 * count(&negative, &is_pos));
        assert!(count(&negative, &is_neg) > 5.0 * (count(&fraud, &is_neg) + 0.1));
    }

    #[test]
    fn lengths_respect_bounds() {
        for style in [
            CommentStyle::FraudPromo,
            CommentStyle::OrganicEnthusiast,
            CommentStyle::OrganicPositive,
            CommentStyle::OrganicNeutral,
            CommentStyle::OrganicNegative,
        ] {
            let p = params(style);
            for c in batch(style, 50) {
                // +1 terminal mark; punctuation inflation bounded by 2x+1.
                assert!(c.len() >= p.len_min);
                assert!(c.len() <= 2 * p.len_max + 2, "style {style:?} len {}", c.len());
            }
        }
    }

    #[test]
    fn mixture_sampling_matches_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = StyleMixture::normal();
        let mut promo = 0;
        for _ in 0..1000 {
            if m.sample(&mut rng) == CommentStyle::FraudPromo {
                promo += 1;
            }
        }
        assert_eq!(promo, 0, "normal items never get promo comments");
    }

    #[test]
    fn deterministic_generation() {
        let l = lex();
        let a = generate_comment(&l, CommentStyle::FraudPromo, &mut StdRng::seed_from_u64(42));
        let b = generate_comment(&l, CommentStyle::FraudPromo, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
