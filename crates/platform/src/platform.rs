//! The platform generator: wires the lexicon, comment model, user
//! population, and fraud campaign into a full synthetic e-commerce
//! platform.

use crate::campaign::{
    generate_users, sample_client, sample_organic_buyer, Campaign, UserPopulationConfig,
};
use crate::comment_model::{generate_comment_with_topic, CommentStyle, StyleMixture, N_TOPICS};
use crate::dist::{geometric, log_normal};
use crate::drift::{EpochDrift, PlatformDriftConfig};
use crate::entities::{format_date, Category, Comment, Item, ItemLabel, Shop, User};
use crate::lexicon::{LexiconConfig, SyntheticLexicon};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Full configuration of a synthetic platform instance.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Master RNG seed; every derived quantity is deterministic in it.
    pub seed: u64,
    /// Seed of the platform's *language*. Platforms sharing a language
    /// seed speak the same vocabulary — the paper's platforms both speak
    /// Chinese, and CATS' cross-platform transfer depends on it. Distinct
    /// from `seed` so differently-seeded platforms stay comparable.
    pub language_seed: u64,
    /// Language size knobs.
    pub lexicon: LexiconConfig,
    /// User population knobs.
    pub users: UserPopulationConfig,
    /// Number of third-party shops.
    pub n_shops: usize,
    /// Number of fraud items.
    pub n_fraud_items: usize,
    /// Number of normal items.
    pub n_normal_items: usize,
    /// Among fraud items, the fraction labeled with *sufficient evidence*
    /// (the rest are expert-labeled). D1 has 16,782 / 18,682 ≈ 0.898.
    pub sufficient_evidence_fraction: f64,
    /// Mean comments per fraud item (geometric-ish spread around it).
    pub fraud_comments_mean: f64,
    /// Mean comments per normal item.
    pub normal_comments_mean: f64,
    /// Number of hired-user pools in the fraud campaign.
    pub n_campaign_pools: usize,
    /// Per-fraud-item hired-promotion share is drawn uniformly from this
    /// range; wide ranges create subtle campaigns (low promo share) that
    /// are genuinely hard to detect.
    pub fraud_promo_share: (f64, f64),
    /// Fraction of normal items whose buyers are effusive enthusiasts —
    /// the false-positive-shaped population.
    pub enthusiast_normal_fraction: f64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            seed: 0xCA75,
            language_seed: 0x1A96,
            lexicon: LexiconConfig::default(),
            users: UserPopulationConfig::default(),
            n_shops: 200,
            n_fraud_items: 500,
            n_normal_items: 2_000,
            sufficient_evidence_fraction: 0.898,
            fraud_comments_mean: 14.0,
            normal_comments_mean: 10.0,
            n_campaign_pools: 12,
            fraud_promo_share: (0.35, 0.95),
            enthusiast_normal_fraction: 0.08,
        }
    }
}

/// A fully generated synthetic platform.
#[derive(Debug, Clone)]
pub struct Platform {
    config: PlatformConfig,
    lexicon: SyntheticLexicon,
    shops: Vec<Shop>,
    users: Vec<User>,
    items: Vec<Item>,
    drift: Option<EpochDrift>,
}

impl Platform {
    /// Generates a platform from `config`. Items are laid out fraud-first
    /// then shuffled by id assignment; iteration order is deterministic.
    pub fn generate(config: PlatformConfig) -> Self {
        Self::build(config, None)
    }

    /// Generates a platform whose fraud campaigns run under epoch `epoch`
    /// of the adversarial drift process (see [`crate::drift`]). Organic
    /// traffic is untouched; promo comments are generated evasively with
    /// rotated templates and fresh vocabulary variants. Epoch 0 reproduces
    /// [`Platform::generate`] exactly.
    pub fn generate_drifted(
        config: PlatformConfig,
        drift: &PlatformDriftConfig,
        epoch: u32,
    ) -> Self {
        Self::build(config, Some((drift, epoch)))
    }

    fn build(config: PlatformConfig, drift: Option<(&PlatformDriftConfig, u32)>) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let lexicon = SyntheticLexicon::generate(config.lexicon, config.language_seed);
        let epoch_drift = drift.map(|(d, epoch)| EpochDrift::generate(&lexicon, d, epoch));
        let users = generate_users(config.users, &mut rng);
        let n_hired = users.iter().filter(|u| u.hired).count();
        let campaign = Campaign::from_users(&users, config.n_campaign_pools.max(1));

        let shops: Vec<Shop> = (0..config.n_shops)
            .map(|i| Shop {
                id: i as u32,
                name: format!("shop-{i:05}"),
                url: format!("https://e-platform.example/shop/{i}"),
            })
            .collect();

        let mut items = Vec::with_capacity(config.n_fraud_items + config.n_normal_items);
        let mut comment_id: u64 = 0;

        let n_sufficient =
            ((config.n_fraud_items as f64) * config.sufficient_evidence_fraction).round() as usize;

        for ordinal in 0..config.n_fraud_items {
            let label = if ordinal < n_sufficient {
                ItemLabel::FraudSufficientEvidence
            } else {
                ItemLabel::FraudExpertLabeled
            };
            let item = Self::generate_item(
                items.len() as u64,
                label,
                ordinal,
                &lexicon,
                &config,
                &campaign,
                n_hired,
                epoch_drift.as_ref(),
                &mut comment_id,
                &mut rng,
            );
            items.push(item);
        }
        for ordinal in 0..config.n_normal_items {
            let item = Self::generate_item(
                items.len() as u64,
                ItemLabel::Normal,
                ordinal,
                &lexicon,
                &config,
                &campaign,
                n_hired,
                epoch_drift.as_ref(),
                &mut comment_id,
                &mut rng,
            );
            items.push(item);
        }

        Self { config, lexicon, shops, users, items, drift: epoch_drift }
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_item(
        id: u64,
        label: ItemLabel,
        ordinal: usize,
        lexicon: &SyntheticLexicon,
        config: &PlatformConfig,
        campaign: &Campaign,
        n_hired: usize,
        drift: Option<&EpochDrift>,
        comment_id: &mut u64,
        rng: &mut StdRng,
    ) -> Item {
        let is_fraud = label.is_fraud();
        let mixture = if is_fraud {
            let (lo, hi) = config.fraud_promo_share;
            let share = if hi > lo { lo + (hi - lo) * rng.random::<f64>() } else { lo };
            StyleMixture::fraud_with_share(share)
        } else if rng.random_bool(config.enthusiast_normal_fraction) {
            StyleMixture::normal_enthusiast()
        } else {
            StyleMixture::normal()
        };
        let mean = if is_fraud { config.fraud_comments_mean } else { config.normal_comments_mean };
        // Geometric spread with mean `mean`: p = 1 / (1 + mean); +1 so every
        // item has at least one comment when mean > 0.
        let n_comments = if mean <= 0.0 {
            0
        } else {
            (geometric(rng, 1.0 / (1.0 + mean)) as usize).clamp(1, 600)
        };

        // The item's topic (category): all its comments talk about the
        // same domain vocabulary.
        let topic = (id as usize).wrapping_mul(2654435761) % N_TOPICS;
        // Hired campaigns work through an item in a short burst window;
        // organic comments spread over the listing's whole lifetime.
        let campaign_start: u32 = rng.random_range(0..100);
        let campaign_days: u32 = 2 + rng.random_range(0..6);
        let mut comments = Vec::with_capacity(n_comments);
        for _ in 0..n_comments {
            let style = mixture.sample(rng);
            let promo = style == CommentStyle::FraudPromo;
            let user_id = if promo {
                campaign.sample_promoter(ordinal, rng)
            } else {
                sample_organic_buyer(n_hired, config.users.n_users, rng)
            };
            let content = match drift {
                Some(d) if promo => d.promo_comment(lexicon, topic, rng),
                _ => generate_comment_with_topic(lexicon, style, topic, rng),
            };
            let day = if promo {
                campaign_start + rng.random_range(0..campaign_days)
            } else {
                rng.random_range(0..110)
            };
            let date = format_date(day, rng.random_range(0..24 * 60));
            comments.push(Comment {
                id: *comment_id,
                user_id,
                client: sample_client(promo, rng),
                date,
                content,
            });
            *comment_id += 1;
        }

        // Sales volume: at least the number of comments (every comment is an
        // order); organic long-tail on top. A slice of normal items are
        // low-volume (< 5) to exercise the detector's stage-1 rule filter.
        let extra = log_normal(rng, 2.0, 1.2) as u64;
        let mut sales_volume = comments.len() as u64 + extra;
        if !is_fraud && rng.random_bool(0.06) {
            sales_volume = rng.random_range(0..5);
            comments.truncate(sales_volume as usize);
        }

        let noun = &lexicon.neutral()[ordinal % lexicon.neutral().len()];
        Item {
            id,
            shop_id: (id % config.n_shops.max(1) as u64) as u32,
            name: format!("{noun}-{id:06}"),
            price_cents: (log_normal(rng, 8.0, 1.0) as u64).clamp(100, 5_000_000),
            sales_volume,
            category: Category::from_topic(topic),
            label,
            comments,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The platform language.
    pub fn lexicon(&self) -> &SyntheticLexicon {
        &self.lexicon
    }

    /// The drift epoch this platform was generated under, if any.
    pub fn drift(&self) -> Option<&EpochDrift> {
        self.drift.as_ref()
    }

    /// All shops.
    pub fn shops(&self) -> &[Shop] {
        &self.shops
    }

    /// All users.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// User by id.
    pub fn user(&self, id: u32) -> Option<&User> {
        self.users.get(id as usize)
    }

    /// All items (fraud items first, then normal items).
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Item by id.
    pub fn item(&self, id: u64) -> Option<&Item> {
        self.items.get(id as usize)
    }

    /// Total number of comments across all items.
    pub fn comment_count(&self) -> usize {
        self.items.iter().map(|i| i.comments.len()).sum()
    }

    /// Counts of (sufficient-evidence fraud, expert-labeled fraud, normal).
    pub fn label_counts(&self) -> (usize, usize, usize) {
        let mut s = 0;
        let mut e = 0;
        let mut n = 0;
        for i in &self.items {
            match i.label {
                ItemLabel::FraudSufficientEvidence => s += 1,
                ItemLabel::FraudExpertLabeled => e += 1,
                ItemLabel::Normal => n += 1,
            }
        }
        (s, e, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Platform {
        Platform::generate(PlatformConfig {
            seed: 42,
            n_shops: 10,
            n_fraud_items: 40,
            n_normal_items: 120,
            users: UserPopulationConfig { n_users: 2_000, hired_fraction: 0.05 },
            ..PlatformConfig::default()
        })
    }

    #[test]
    fn generates_requested_counts() {
        let p = small();
        assert_eq!(p.items().len(), 160);
        assert_eq!(p.shops().len(), 10);
        assert_eq!(p.users().len(), 2_000);
        let (s, e, n) = p.label_counts();
        assert_eq!(s + e, 40);
        assert_eq!(n, 120);
        // 89.8% of 40 ≈ 36
        assert_eq!(s, 36);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.comment_count(), b.comment_count());
        assert_eq!(a.items()[7].comments.len(), b.items()[7].comments.len());
        if !a.items()[7].comments.is_empty() {
            assert_eq!(a.items()[7].comments[0].content, b.items()[7].comments[0].content);
        }
    }

    #[test]
    fn sales_volume_covers_comments() {
        let p = small();
        for item in p.items() {
            assert!(
                item.sales_volume >= item.comments.len() as u64,
                "item {} sales {} < comments {}",
                item.id,
                item.sales_volume,
                item.comments.len()
            );
        }
    }

    #[test]
    fn some_normal_items_fall_below_filter_threshold() {
        let p = Platform::generate(PlatformConfig {
            seed: 7,
            n_fraud_items: 50,
            n_normal_items: 800,
            ..PlatformConfig::default()
        });
        let low = p.items().iter().filter(|i| !i.label.is_fraud() && i.sales_volume < 5).count();
        assert!(low > 10, "expected low-volume normal items, got {low}");
        // fraud campaigns keep volumes up
        assert!(p.items().iter().filter(|i| i.label.is_fraud()).all(|i| i.sales_volume >= 1));
    }

    #[test]
    fn comment_user_ids_are_valid() {
        let p = small();
        for item in p.items() {
            for c in &item.comments {
                assert!(p.user(c.user_id).is_some());
            }
        }
    }

    #[test]
    fn fraud_comments_written_mostly_by_hired_users() {
        let p = small();
        let mut fraud_hired = 0usize;
        let mut fraud_total = 0usize;
        let mut normal_hired = 0usize;
        let mut normal_total = 0usize;
        for item in p.items() {
            for c in &item.comments {
                let hired = p.user(c.user_id).unwrap().hired;
                if item.label.is_fraud() {
                    fraud_total += 1;
                    fraud_hired += usize::from(hired);
                } else {
                    normal_total += 1;
                    normal_hired += usize::from(hired);
                }
            }
        }
        let ff = fraud_hired as f64 / fraud_total as f64;
        let nf = normal_hired as f64 / normal_total.max(1) as f64;
        assert!(ff > 0.45, "fraud hired fraction {ff}");
        assert!(nf < 0.05, "normal hired fraction {nf}");
    }

    #[test]
    fn drifted_epoch_zero_matches_stationary_generation() {
        let cfg = PlatformConfig {
            seed: 42,
            n_shops: 10,
            n_fraud_items: 30,
            n_normal_items: 60,
            users: UserPopulationConfig { n_users: 2_000, hired_fraction: 0.05 },
            ..PlatformConfig::default()
        };
        let a = Platform::generate(cfg.clone());
        let b = Platform::generate_drifted(cfg, &PlatformDriftConfig::default(), 0);
        assert_eq!(a.comment_count(), b.comment_count());
        for (ia, ib) in a.items().iter().zip(b.items()) {
            assert_eq!(ia.sales_volume, ib.sales_volume);
            for (ca, cb) in ia.comments.iter().zip(&ib.comments) {
                assert_eq!(ca.content, cb.content);
            }
        }
    }

    #[test]
    fn drifted_epochs_put_variants_only_in_fraud_comments() {
        let cfg = PlatformConfig {
            seed: 42,
            n_shops: 10,
            n_fraud_items: 40,
            n_normal_items: 80,
            users: UserPopulationConfig { n_users: 2_000, hired_fraction: 0.05 },
            ..PlatformConfig::default()
        };
        let p = Platform::generate_drifted(
            cfg,
            &PlatformDriftConfig { variant_swap: 0.8, ..PlatformDriftConfig::default() },
            2,
        );
        let drift = p.drift().expect("drifted platform records its epoch");
        assert_eq!(drift.epoch(), 2);
        let is_variant = |tok: &str| drift.variants().iter().any(|(_, v)| v == tok);
        let mut fraud_hits = 0usize;
        for item in p.items() {
            let hits = item
                .comments
                .iter()
                .flat_map(|c| c.content.split(' '))
                .filter(|t| is_variant(t))
                .count();
            if item.label.is_fraud() {
                fraud_hits += hits;
            } else {
                assert_eq!(hits, 0, "variant leaked into normal item {}", item.id);
            }
        }
        assert!(fraud_hits > 10, "expected variants in fraud comments, saw {fraud_hits}");
    }

    #[test]
    fn item_lookup_by_id() {
        let p = small();
        assert_eq!(p.item(0).unwrap().id, 0);
        assert_eq!(p.item(159).unwrap().id, 159);
        assert!(p.item(160).is_none());
    }

    #[test]
    fn comment_ids_unique_and_dense() {
        let p = small();
        let mut ids: Vec<u64> =
            p.items().iter().flat_map(|i| i.comments.iter().map(|c| c.id)).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
