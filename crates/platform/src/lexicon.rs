//! The synthetic e-commerce language.
//!
//! Real CATS consumes Chinese Taobao comments; we cannot obtain those, so
//! the platform speaks a synthetic language whose vocabulary is organized
//! the way the paper's analysis needs it to be:
//!
//! * **positive words** (the latent ground-truth *P*), including *homograph
//!   variants* of some canonical words — the paper's word2vec expansion
//!   discovers misspelled variants of 好评 ("good reputation"); our
//!   generator emits spelling variants that are used interchangeably in
//!   promotional contexts so the same discovery is possible;
//! * **negative words** (latent *N*);
//! * **neutral domain words** (product nouns, logistics vocabulary);
//! * **function words** (high-frequency glue);
//! * **punctuation**.
//!
//! Words are pronounceable pseudo-Pinyin strings composed from a syllable
//! inventory, generated deterministically from a seed. A handful of
//! canonical words have fixed spellings so that seed lists in examples and
//! tests are stable.

use rand::{rngs::StdRng, Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Syllable inventory for pseudo-word composition.
const SYLLABLES: &[&str] = &[
    "ba", "bei", "bi", "bu", "cai", "chang", "chi", "chu", "da", "de", "dian", "ding", "duo", "fa",
    "fan", "fei", "fen", "gao", "gei", "gong", "gu", "hai", "han", "hou", "hu", "hua", "ji", "jia",
    "jian", "jing", "ju", "kan", "ke", "kou", "kuai", "la", "lai", "lei", "li", "lian", "lin",
    "liu", "lu", "ma", "mai", "mao", "mei", "men", "mi", "mian", "min", "mu", "na", "nai", "nan",
    "nei", "ni", "nian", "niu", "nong", "nu", "pai", "pan", "pei", "pen", "pi", "pin", "po", "pu",
    "qi", "qian", "qin", "qu", "ran", "ren", "ri", "rong", "ru", "sai", "san", "sao", "sen",
    "shan", "shen", "shi", "shou", "shu", "si", "song", "su", "sun", "ta", "tan", "tao", "te",
    "ti", "tian", "tie", "tong", "tou", "tu", "wai", "wan", "wei", "wen", "wo", "wu", "xi", "xia",
    "xian", "xiao", "xin", "xiu", "xu", "yan", "yao", "ye", "yin", "ying", "you", "yu", "yuan",
    "yun", "za", "zai", "zao", "zen", "zhan", "zhao", "zhen", "zheng", "zhi", "zhong", "zhou",
    "zhu", "zi", "zong", "zou", "zu", "zui",
];

/// Canonical positive words with stable spellings (seed candidates).
/// Loose glosses mirror the paper's Table I entries.
pub const CANONICAL_POSITIVE: &[&str] = &[
    "haoping",   // good reputation (好评)
    "zhide",     // deserve/worth (值得)
    "huasuan",   // cost-effective (划算)
    "piaoliang", // beautiful (漂亮)
    "manyi",     // satisfied (满意)
    "bucuo",     // not bad / well (不错)
    "xihuan",    // like (喜欢)
    "henhao",    // very good (很好)
    "heshi",     // suitable (合适)
    "jingzhi",   // delicate (精致)
    "shihui",    // good value (实惠)
    "zan",       // like/praise (赞)
];

/// Homograph variants of `haoping`, standing in for the paper's
/// 好坪 / 好平 variants that word2vec uncovers.
pub const HAOPING_VARIANTS: &[&str] = &["haopping", "haopin", "haoqing"];

/// Canonical negative words with stable spellings.
pub const CANONICAL_NEGATIVE: &[&str] = &[
    "chaping", // negative reputation (差评)
    "zaogao",  // terrible (糟糕)
    "zuilan",  // the worst (最烂)
    "tuihuo",  // sales return (退货)
    "keheng",  // hateful (可恨)
    "eyi",     // malevolence (恶意)
    "weixie",  // threat (威胁)
    "yixing",  // one star (一星)
    "buhao",   // bad (不好)
    "meiyong", // useless (没用)
];

/// High-frequency function words (glue).
pub const FUNCTION_WORDS: &[&str] = &[
    "de", "le", "wo", "ni", "ta", "zhe", "na", "hen", "jiu", "dou", "ye", "hai", "zai", "shi",
    "you", "he", "gei", "bei", "ba", "ge",
];

/// Word classes of the synthetic language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WordClass {
    /// Latent ground-truth positive sentiment word.
    Positive,
    /// Latent ground-truth negative sentiment word.
    Negative,
    /// Domain/neutral content word.
    Neutral,
    /// Function word.
    Function,
}

/// The generated vocabulary of the synthetic platform language.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticLexicon {
    positive: Vec<String>,
    negative: Vec<String>,
    neutral: Vec<String>,
    function: Vec<String>,
}

/// Size knobs for [`SyntheticLexicon::generate`].
#[derive(Debug, Clone, Copy)]
pub struct LexiconConfig {
    /// Total positive words (canonical + variants + generated). The paper's
    /// expanded *P* holds ~200 words.
    pub n_positive: usize,
    /// Total negative words. The paper's *N* holds ~200 words.
    pub n_negative: usize,
    /// Neutral domain words.
    pub n_neutral: usize,
}

impl Default for LexiconConfig {
    fn default() -> Self {
        Self { n_positive: 200, n_negative: 200, n_neutral: 1500 }
    }
}

impl SyntheticLexicon {
    /// Generates a vocabulary deterministically from `seed`.
    pub fn generate(config: LexiconConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut used: HashSet<String> = HashSet::new();
        let reserve = |w: &str, used: &mut HashSet<String>| {
            used.insert(w.to_owned());
            w.to_owned()
        };

        let mut positive: Vec<String> = CANONICAL_POSITIVE
            .iter()
            .chain(HAOPING_VARIANTS)
            .map(|w| reserve(w, &mut used))
            .collect();
        let mut negative: Vec<String> =
            CANONICAL_NEGATIVE.iter().map(|w| reserve(w, &mut used)).collect();
        let function: Vec<String> = FUNCTION_WORDS.iter().map(|w| reserve(w, &mut used)).collect();

        while positive.len() < config.n_positive {
            let w = Self::fresh_word(&mut rng, &mut used);
            positive.push(w);
        }
        positive.truncate(config.n_positive.max(CANONICAL_POSITIVE.len()));
        while negative.len() < config.n_negative {
            let w = Self::fresh_word(&mut rng, &mut used);
            negative.push(w);
        }
        negative.truncate(config.n_negative.max(CANONICAL_NEGATIVE.len()));

        let mut neutral = Vec::with_capacity(config.n_neutral);
        while neutral.len() < config.n_neutral {
            neutral.push(Self::fresh_word(&mut rng, &mut used));
        }

        Self { positive, negative, neutral, function }
    }

    fn fresh_word(rng: &mut StdRng, used: &mut HashSet<String>) -> String {
        loop {
            let n_syll = if rng.random_bool(0.7) { 2 } else { 3 };
            let mut w = String::new();
            for _ in 0..n_syll {
                w.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
            }
            if used.insert(w.clone()) {
                return w;
            }
        }
    }

    /// The latent positive word list (ground truth for lexicon expansion).
    pub fn positive(&self) -> &[String] {
        &self.positive
    }

    /// The latent negative word list.
    pub fn negative(&self) -> &[String] {
        &self.negative
    }

    /// Neutral domain words.
    pub fn neutral(&self) -> &[String] {
        &self.neutral
    }

    /// Function words.
    pub fn function(&self) -> &[String] {
        &self.function
    }

    /// Class of `word`, if it belongs to this vocabulary.
    pub fn class_of(&self, word: &str) -> Option<WordClass> {
        if self.positive.iter().any(|w| w == word) {
            Some(WordClass::Positive)
        } else if self.negative.iter().any(|w| w == word) {
            Some(WordClass::Negative)
        } else if self.neutral.iter().any(|w| w == word) {
            Some(WordClass::Neutral)
        } else if self.function.iter().any(|w| w == word) {
            Some(WordClass::Function)
        } else {
            None
        }
    }

    /// Positive seed words for lexicon expansion (a small canonical subset,
    /// as the paper seeds with a few words like 好评).
    pub fn positive_seeds(&self) -> Vec<String> {
        CANONICAL_POSITIVE[..4].iter().map(|s| s.to_string()).collect()
    }

    /// Negative seed words for lexicon expansion.
    pub fn negative_seeds(&self) -> Vec<String> {
        CANONICAL_NEGATIVE[..4].iter().map(|s| s.to_string()).collect()
    }

    /// Total vocabulary size across all classes.
    pub fn total_words(&self) -> usize {
        self.positive.len() + self.negative.len() + self.neutral.len() + self.function.len()
    }

    /// Mints a fresh homograph variant of `word` — a small spelling
    /// mutation (letter doubling, vowel substitution, or an appended
    /// syllable) that belongs to **no** vocabulary class.
    ///
    /// This is the adversary's move in the drift model: campaign operators
    /// coin obfuscated spellings (the real-world 好评 → 好坪 / 好平 churn)
    /// faster than any fixed lexicon can track, so a detector trained on
    /// yesterday's vocabulary has never embedded today's variants. Retries
    /// until the candidate lands outside the lexicon and differs from
    /// `word` itself.
    pub fn coin_variant(&self, word: &str, rng: &mut impl Rng) -> String {
        const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];
        loop {
            let chars: Vec<char> = word.chars().collect();
            if chars.is_empty() {
                return String::from("x");
            }
            let mut w = String::with_capacity(word.len() + 4);
            match rng.random_range(0..3usize) {
                0 => {
                    // Double one letter: haoping → haopping.
                    let at = rng.random_range(0..chars.len());
                    for (i, c) in chars.iter().enumerate() {
                        w.push(*c);
                        if i == at {
                            w.push(*c);
                        }
                    }
                }
                1 => {
                    // Substitute one vowel: haoping → haopeng.
                    let positions: Vec<usize> = chars
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| VOWELS.contains(c))
                        .map(|(i, _)| i)
                        .collect();
                    if positions.is_empty() {
                        continue;
                    }
                    let at = positions[rng.random_range(0..positions.len())];
                    let mut v = VOWELS[rng.random_range(0..VOWELS.len())];
                    if v == chars[at] {
                        let next =
                            (VOWELS.iter().position(|&x| x == v).unwrap() + 1) % VOWELS.len();
                        v = VOWELS[next];
                    }
                    for (i, c) in chars.iter().enumerate() {
                        w.push(if i == at { v } else { *c });
                    }
                }
                _ => {
                    // Append a syllable: haoping → haopingzhen.
                    w.push_str(word);
                    w.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
                }
            }
            if w != word && self.class_of(&w).is_none() {
                return w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex() -> SyntheticLexicon {
        SyntheticLexicon::generate(LexiconConfig::default(), 1)
    }

    #[test]
    fn generates_requested_sizes() {
        let l = lex();
        assert_eq!(l.positive().len(), 200);
        assert_eq!(l.negative().len(), 200);
        assert_eq!(l.neutral().len(), 1500);
        assert_eq!(l.function().len(), FUNCTION_WORDS.len());
    }

    #[test]
    fn canonical_words_present() {
        let l = lex();
        for w in CANONICAL_POSITIVE {
            assert_eq!(l.class_of(w), Some(WordClass::Positive), "{w}");
        }
        for w in HAOPING_VARIANTS {
            assert_eq!(l.class_of(w), Some(WordClass::Positive), "{w}");
        }
        for w in CANONICAL_NEGATIVE {
            assert_eq!(l.class_of(w), Some(WordClass::Negative), "{w}");
        }
    }

    #[test]
    fn classes_are_disjoint() {
        let l = lex();
        let mut all: Vec<&String> = l
            .positive()
            .iter()
            .chain(l.negative())
            .chain(l.neutral())
            .chain(l.function())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate word across classes");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SyntheticLexicon::generate(LexiconConfig::default(), 9);
        let b = SyntheticLexicon::generate(LexiconConfig::default(), 9);
        assert_eq!(a.positive(), b.positive());
        assert_eq!(a.neutral(), b.neutral());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticLexicon::generate(LexiconConfig::default(), 1);
        let b = SyntheticLexicon::generate(LexiconConfig::default(), 2);
        assert_ne!(a.neutral(), b.neutral());
        // canonical words stay fixed regardless of seed
        assert_eq!(a.positive()[..12], b.positive()[..12]);
    }

    #[test]
    fn seeds_are_positive_and_negative_words() {
        let l = lex();
        for s in l.positive_seeds() {
            assert_eq!(l.class_of(&s), Some(WordClass::Positive));
        }
        for s in l.negative_seeds() {
            assert_eq!(l.class_of(&s), Some(WordClass::Negative));
        }
    }

    #[test]
    fn class_of_unknown_is_none() {
        assert_eq!(lex().class_of("notaword!!"), None);
    }

    #[test]
    fn small_config_still_keeps_canonicals() {
        let l = SyntheticLexicon::generate(
            LexiconConfig { n_positive: 5, n_negative: 5, n_neutral: 10 },
            3,
        );
        // canonical lists are never truncated below their own length
        assert!(l.positive().len() >= CANONICAL_POSITIVE.len());
        assert!(l.negative().len() >= CANONICAL_NEGATIVE.len());
    }
}
