//! Dataset presets mirroring the paper's evaluation data.
//!
//! * **D0** (Table IV): the labeled training set from Taobao — 14,000
//!   fraud items, 20,000 normal items, 474,000 comments.
//! * **D1** (Table V): the Taobao evaluation set — 18,682 fraud items
//!   (16,782 with sufficient evidence), 1,461,452 normal items, 72.3M
//!   comments.
//! * **E-platform** (§IV): ~4.5M items, 100M+ comments, crawled from the
//!   public site; no labels available to the detector.
//!
//! Full-size instantiation is impractical on a laptop, so every preset
//! takes a `scale ∈ (0, 1]` multiplier applied to item counts while class
//! ratios and comment densities keep the paper's shape. Experiments record
//! their scale in `EXPERIMENTS.md`.

use crate::campaign::UserPopulationConfig;
use crate::platform::{Platform, PlatformConfig};

/// Applies `scale` to `n`, keeping at least `min`.
fn scaled(n: usize, scale: f64, min: usize) -> usize {
    (((n as f64) * scale).round() as usize).max(min)
}

/// The D0-shaped configuration at `scale` (see [`d0`]).
pub fn d0_config(scale: f64, seed: u64) -> PlatformConfig {
    let n_fraud = scaled(14_000, scale, 50);
    let n_normal = scaled(20_000, scale, 80);
    PlatformConfig {
        seed,
        n_fraud_items: n_fraud,
        n_normal_items: n_normal,
        // 474k / 34k ≈ 13.9 comments per item on average.
        fraud_comments_mean: 14.0,
        normal_comments_mean: 13.9,
        n_shops: scaled(1_000, scale, 20),
        users: UserPopulationConfig {
            n_users: scaled(120_000, scale, 2_000),
            hired_fraction: 0.03,
        },
        n_campaign_pools: scaled(60, scale, 4),
        // D0 is the curated challenge set: campaigns span the whole
        // aggressiveness spectrum and enthusiast shops are over-sampled,
        // which is what gives Table III its ~0.9 (not ~1.0) numbers.
        fraud_promo_share: (0.18, 0.95),
        enthusiast_normal_fraction: 0.15,
        ..PlatformConfig::default()
    }
}

/// Builds the D0-shaped training platform at `scale` (1.0 = paper size:
/// 14k fraud / 20k normal / ~474k comments, i.e. ~14 comments per item).
pub fn d0(scale: f64, seed: u64) -> Platform {
    Platform::generate(d0_config(scale, seed))
}

/// Builds a D0-shaped platform whose fraud campaigns run under epoch
/// `epoch` of the adversarial drift process. Each epoch draws fresh items
/// and campaigns (the seed is folded with the epoch — a live marketplace
/// lists new items continuously) while the language stays fixed, so
/// detectors trained on one epoch can be scored on any other.
pub fn d0_drift_epoch(
    scale: f64,
    seed: u64,
    drift: &crate::drift::PlatformDriftConfig,
    epoch: u32,
) -> Platform {
    let mut config = d0_config(scale, seed);
    config.seed ^= (epoch as u64).wrapping_mul(0x9E3779B97F4A7C15);
    Platform::generate_drifted(config, drift, epoch)
}

/// Builds the D1-shaped evaluation platform at `scale` (1.0 = paper size:
/// 18,682 fraud / 1,461,452 normal / 72.3M comments). The fraud class is
/// scaled with a larger floor so that per-slice metrics (Table VI) remain
/// estimable at small scales.
pub fn d1(scale: f64, seed: u64) -> Platform {
    let n_fraud = scaled(18_682, scale, 120);
    let n_normal = scaled(1_461_452, scale, 1_200);
    Platform::generate(PlatformConfig {
        seed,
        n_fraud_items: n_fraud,
        n_normal_items: n_normal,
        sufficient_evidence_fraction: 16_782.0 / 18_682.0,
        // 72.3M / 1.48M ≈ 49 comments per item.
        fraud_comments_mean: 49.0,
        normal_comments_mean: 48.9,
        n_shops: scaled(15_992, scale, 40),
        users: UserPopulationConfig {
            n_users: scaled(800_000, scale, 5_000),
            hired_fraction: 0.02,
        },
        n_campaign_pools: scaled(200, scale, 6),
        // Production traffic: campaigns skew aggressive, enthusiasts are
        // rare in absolute terms — the regime where the paper reports
        // P 0.91 / R 0.90 despite a 1.3% fraud rate.
        fraud_promo_share: (0.45, 0.95),
        enthusiast_normal_fraction: 0.03,
        ..PlatformConfig::default()
    })
}

/// Builds the E-platform-shaped platform at `scale` (1.0 = ~4.5M items,
/// 100M+ comments). The latent fraud rate is chosen so that a detector in
/// the paper's operating regime reports ~10,720 frauds out of 4.5M items
/// (≈ 0.24%).
pub fn e_platform(scale: f64, seed: u64) -> Platform {
    let n_items = scaled(4_500_000, scale, 1_500);
    let n_fraud = ((n_items as f64) * 0.0024).round() as usize;
    let n_fraud = n_fraud.max(30);
    let n_normal = n_items.saturating_sub(n_fraud).max(100);
    Platform::generate(PlatformConfig {
        seed,
        n_fraud_items: n_fraud,
        n_normal_items: n_normal,
        sufficient_evidence_fraction: 1.0, // labels are latent ground truth only
        // 100M / 4.5M ≈ 22 comments per item.
        fraud_comments_mean: 24.0,
        normal_comments_mean: 22.0,
        n_shops: scaled(30_000, scale, 60),
        users: UserPopulationConfig {
            n_users: scaled(2_000_000, scale, 8_000),
            hired_fraction: 0.03,
        },
        n_campaign_pools: scaled(1_056, scale, 8),
        fraud_promo_share: (0.45, 0.95),
        // The audited 0.96 precision of the paper's E-platform run implies
        // a thinner effusive-organic population than Taobao's: E-platform
        // is a B2C retailer whose reviews come from verified purchases.
        enthusiast_normal_fraction: 0.008,
        ..PlatformConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d0_ratio_matches_paper() {
        let p = d0(0.01, 1);
        let (s, e, n) = p.label_counts();
        let fraud = s + e;
        assert_eq!(fraud, 140);
        assert_eq!(n, 200);
        // ~14 comments per item
        let per_item = p.comment_count() as f64 / p.items().len() as f64;
        assert!((10.0..18.0).contains(&per_item), "{per_item}");
    }

    #[test]
    fn d1_sufficient_evidence_split() {
        let p = d1(0.01, 2);
        let (s, e, n) = p.label_counts();
        assert_eq!(s + e, 187);
        // 16782/18682 ≈ 0.898 of fraud items have sufficient evidence
        let frac = s as f64 / (s + e) as f64;
        assert!((0.85..0.95).contains(&frac), "{frac}");
        assert_eq!(n, 14_615);
    }

    #[test]
    fn e_platform_fraud_rate() {
        let p = e_platform(0.001, 3);
        let (s, e, n) = p.label_counts();
        let rate = (s + e) as f64 / (s + e + n) as f64;
        assert!((0.001..0.01).contains(&rate), "{rate}");
    }

    #[test]
    fn floors_apply_at_tiny_scale() {
        let p = d0(1e-9, 4);
        let (s, e, n) = p.label_counts();
        assert_eq!(s + e, 50);
        assert_eq!(n, 80);
    }

    #[test]
    fn presets_differ_by_seed() {
        let a = d0(0.005, 10);
        let b = d0(0.005, 11);
        assert_ne!(
            a.items()[0].comments.first().map(|c| c.content.clone()),
            b.items()[0].comments.first().map(|c| c.content.clone())
        );
    }
}
