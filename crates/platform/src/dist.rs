//! Small sampling toolkit.
//!
//! The platform generator needs a handful of classical distributions
//! (normal, log-normal, geometric, weighted discrete). The approved `rand`
//! crate ships uniform sampling only, so the rest is implemented here; each
//! sampler takes `&mut impl Rng` and is deterministic under a seeded
//! `StdRng`.

use rand::{Rng, RngExt};

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, sd²)`.
pub fn normal(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Samples a log-normal with the given parameters of the underlying normal.
pub fn log_normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples a geometric count `k ≥ 0` with success probability `p` — the
/// number of failures before the first success. `p` is clamped into
/// `(1e-9, 1.0]`.
pub fn geometric(rng: &mut impl Rng, p: f64) -> u64 {
    let p = p.clamp(1e-9, 1.0);
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = 1.0 - rng.random::<f64>(); // in (0, 1]
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// Samples an index from a non-empty weight slice (weights need not sum
/// to 1; non-finite or negative weights count as 0).
///
/// # Panics
/// Panics if `weights` is empty or all weights are ≤ 0.
pub fn weighted_index(rng: &mut impl Rng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted_index: empty weights");
    let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
    let total: f64 = weights.iter().copied().map(clean).sum();
    assert!(total > 0.0, "weighted_index: all weights are zero");
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= clean(w);
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Rounds a float sample into `lo..=hi` as usize.
pub fn clamp_round(x: f64, lo: usize, hi: usize) -> usize {
    let r = x.round();
    if !r.is_finite() || r <= lo as f64 {
        lo
    } else if r >= hi as f64 {
        hi
    } else {
        r as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(log_normal(&mut r, 1.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn geometric_mean_close_to_theory() {
        let mut r = rng();
        let p = 0.25;
        let n = 20_000;
        let mean = (0..n).map(|_| geometric(&mut r, p) as f64).sum::<f64>() / n as f64;
        let expect = (1.0 - p) / p; // 3.0
        assert!((mean - expect).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn geometric_with_p_one_is_zero() {
        let mut r = rng();
        assert_eq!(geometric(&mut r, 1.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut r, &w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let frac1 = counts[1] as f64 / 10_000.0;
        assert!((frac1 - 0.9).abs() < 0.03, "frac1 {frac1}");
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn weighted_index_rejects_empty() {
        weighted_index(&mut rng(), &[]);
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn weighted_index_rejects_all_zero() {
        weighted_index(&mut rng(), &[0.0, -1.0, f64::NAN]);
    }

    #[test]
    fn clamp_round_clamps() {
        assert_eq!(clamp_round(4.6, 1, 10), 5);
        assert_eq!(clamp_round(-3.0, 1, 10), 1);
        assert_eq!(clamp_round(99.0, 1, 10), 10);
        assert_eq!(clamp_round(f64::NAN, 1, 10), 1);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..50).map(|_| geometric(&mut r, 0.3)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..50).map(|_| geometric(&mut r, 0.3)).collect()
        };
        assert_eq!(a, b);
    }
}
