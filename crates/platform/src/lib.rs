//! # cats-platform — synthetic e-commerce platform substrate
//!
//! The paper evaluates CATS against two proprietary data sources (Taobao's
//! labeled datasets and a crawl of "E-platform"). Neither is obtainable, so
//! this crate implements a *generative* e-commerce platform whose public
//! surface — shops, items, comments, buyer metadata — reproduces the
//! statistical structure the paper reports:
//!
//! * a synthetic comment language with latent positive/negative word
//!   classes and homograph variants ([`lexicon`]);
//! * a per-style comment model matching the paper's Figs 1–5 contrasts
//!   ([`comment_model`]);
//! * a user population with the reliability-score (userExpValue)
//!   distribution of §V, and a hired-promoter campaign model that makes
//!   pool-mates co-purchase fraud items ([`campaign`]);
//! * dataset presets shaped like D0, D1, and the E-platform crawl
//!   ([`datasets`]);
//! * a millisecond-clock temporal replay of the platform — organic
//!   Poisson arrivals plus bursty hired campaign waves — for the
//!   streaming detector ([`stream`]).
//!
//! Ground-truth labels ride along on [`entities::Item`] but are *latent*:
//! the collector crate only exposes the public view, exactly as a
//! third-party crawler would see it.

pub mod campaign;
pub mod comment_model;
pub mod datasets;
pub mod dist;
pub mod drift;
pub mod entities;
pub mod lexicon;
pub mod platform;
pub mod stream;

pub use drift::{EpochDrift, PlatformDriftConfig};
pub use entities::{Category, Client, Comment, Item, ItemLabel, Shop, User};
pub use lexicon::{LexiconConfig, SyntheticLexicon};
pub use platform::{Platform, PlatformConfig};
pub use stream::{BurstWave, TemporalTrace, TimedComment, TraceConfig};
