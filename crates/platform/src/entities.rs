//! Domain entities of the synthetic platform.
//!
//! These mirror the three record kinds the paper's collector scrapes
//! (shop data, item data, comment data — §IV-A) plus the user and order
//! metadata used by the measurement study of §V (userExpValue, client
//! information).

use serde::{Deserialize, Serialize};

/// Minimum userExpValue observed on E-platform (paper §V, user aspect).
pub const MIN_USER_EXP: u64 = 100;
/// Maximum userExpValue observed on E-platform.
pub const MAX_USER_EXP: u64 = 27_158_720;

/// Purchase client, the paper's "order source" (Fig 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Client {
    /// Web browser client — dominant among fraud orders.
    Web,
    /// Android app — dominant among normal orders.
    Android,
    /// iPhone app.
    IPhone,
    /// Wechat client.
    Wechat,
}

impl Client {
    /// All client variants, in a fixed display order.
    pub const ALL: [Client; 4] = [Client::Web, Client::Android, Client::IPhone, Client::Wechat];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Client::Web => "Web",
            Client::Android => "Android",
            Client::IPhone => "iPhone",
            Client::Wechat => "Wechat",
        }
    }
}

/// Item category. The paper's §VI deployment runs CATS per category on
/// Taobao: men's clothing, women's clothing, men's shoes, women's shoes,
/// computer & office, phone & accessories, food & grocery, and sports &
/// outdoors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Men's clothing.
    MensClothing,
    /// Women's clothing.
    WomensClothing,
    /// Men's shoes.
    MensShoes,
    /// Women's shoes.
    WomensShoes,
    /// Computer & office.
    ComputerOffice,
    /// Phone & accessories.
    PhoneAccessories,
    /// Food & grocery.
    FoodGrocery,
    /// Sports & outdoors.
    SportsOutdoors,
}

impl Category {
    /// All categories, in the paper's §VI listing order.
    pub const ALL: [Category; 8] = [
        Category::MensClothing,
        Category::WomensClothing,
        Category::MensShoes,
        Category::WomensShoes,
        Category::ComputerOffice,
        Category::PhoneAccessories,
        Category::FoodGrocery,
        Category::SportsOutdoors,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Category::MensClothing => "men's clothing",
            Category::WomensClothing => "women's clothing",
            Category::MensShoes => "men's shoes",
            Category::WomensShoes => "women's shoes",
            Category::ComputerOffice => "computer & office",
            Category::PhoneAccessories => "phone & accessories",
            Category::FoodGrocery => "food & grocery",
            Category::SportsOutdoors => "sports & outdoors",
        }
    }

    /// Deterministic category from an item's topic index: topics are
    /// fine-grained product domains; categories group them.
    pub fn from_topic(topic: usize) -> Self {
        Category::ALL[topic % Category::ALL.len()]
    }
}

/// Ground-truth label of an item.
///
/// D1 distinguishes frauds labeled from hard evidence (financial
/// transactions between merchants and hired users) from frauds labeled by
/// Alibaba's anti-fraud experts; Table VI reports both slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItemLabel {
    /// Fraud with sufficient (transaction-level) evidence.
    FraudSufficientEvidence,
    /// Fraud identified through expert manual analysis.
    FraudExpertLabeled,
    /// Normal item.
    Normal,
}

impl ItemLabel {
    /// Whether the label is either fraud variant.
    pub fn is_fraud(self) -> bool {
        !matches!(self, ItemLabel::Normal)
    }
}

/// A registered platform user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct User {
    /// Dense user id.
    pub id: u32,
    /// Anonymized display name (e.g. `0***li`).
    pub nickname: String,
    /// The platform's reliability score (paper: userExpValue; min 100,
    /// max 27,158,720 — low values mean low reliability).
    pub exp_value: u64,
    /// Whether this user belongs to a hired promotion pool (latent ground
    /// truth, never exposed through the public API).
    pub hired: bool,
}

/// A third-party shop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Shop {
    /// Dense shop id.
    pub id: u32,
    /// Shop display name.
    pub name: String,
    /// Public shop URL on the synthetic site.
    pub url: String,
}

/// One comment, attached to the order that produced it (on the modeled
/// platforms only buyers can comment, so a comment record doubles as an
/// order record — paper §V "order aspect").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comment {
    /// Dense comment id (platform-wide).
    pub id: u64,
    /// Id of the commenting (purchasing) user.
    pub user_id: u32,
    /// Client the order was placed from.
    pub client: Client,
    /// Order timestamp, `YYYY-MM-DD HH:MM:SS`.
    pub date: String,
    /// Comment text in the synthetic platform language.
    pub content: String,
}

/// An item listed by a shop, with its full public comment history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Item {
    /// Dense item id (platform-wide).
    pub id: u64,
    /// Owning shop.
    pub shop_id: u32,
    /// Item display name.
    pub name: String,
    /// List price in cents.
    pub price_cents: u64,
    /// Public sales volume counter.
    pub sales_volume: u64,
    /// Item category (paper §VI: detection runs per category).
    pub category: Category,
    /// Ground-truth label (latent; exposed only to evaluation code).
    pub label: ItemLabel,
    /// All comments, in posting order.
    pub comments: Vec<Comment>,
}

impl Item {
    /// Borrowed comment contents, the input shape of the CATS feature
    /// extractor.
    pub fn comment_texts(&self) -> Vec<&str> {
        self.comments.iter().map(|c| c.content.as_str()).collect()
    }
}

/// Formats a synthetic order timestamp from a day offset and an
/// intra-day minute, anchored at 2017-09-01 (the paper's data is from
/// late 2017).
pub fn format_date(day_offset: u32, minute_of_day: u32) -> String {
    // 30-day months keep the arithmetic trivial; these timestamps are
    // synthetic labels, not calendar math.
    let month = 9 + day_offset / 30;
    let day = 1 + day_offset % 30;
    let hour = (minute_of_day / 60) % 24;
    let minute = minute_of_day % 60;
    format!("2017-{month:02}-{day:02} {hour:02}:{minute:02}:00")
}

/// Builds an anonymized nickname like `a***x` from a user id,
/// mirroring the masked nicknames in the paper's Table VII.
pub fn anonymized_nickname(id: u32) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let first = ALPHABET[(id as usize) % ALPHABET.len()] as char;
    let last = ALPHABET[(id as usize / ALPHABET.len()) % ALPHABET.len()] as char;
    format!("{first}***{last}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_names_and_order() {
        assert_eq!(Client::ALL.len(), 4);
        assert_eq!(Client::Web.name(), "Web");
        assert_eq!(Client::IPhone.name(), "iPhone");
    }

    #[test]
    fn label_fraud_predicate() {
        assert!(ItemLabel::FraudSufficientEvidence.is_fraud());
        assert!(ItemLabel::FraudExpertLabeled.is_fraud());
        assert!(!ItemLabel::Normal.is_fraud());
    }

    #[test]
    fn date_formatting() {
        assert_eq!(format_date(0, 0), "2017-09-01 00:00:00");
        assert_eq!(format_date(9, 12 * 60 + 10), "2017-09-10 12:10:00");
        assert_eq!(format_date(30, 61), "2017-10-01 01:01:00");
    }

    #[test]
    fn categories_cover_papers_eight() {
        assert_eq!(Category::ALL.len(), 8);
        assert_eq!(Category::MensClothing.name(), "men's clothing");
        assert_eq!(Category::from_topic(0), Category::from_topic(8));
        assert_ne!(Category::from_topic(0), Category::from_topic(1));
    }

    #[test]
    fn nickname_shape() {
        let n = anonymized_nickname(12345);
        assert_eq!(n.len(), 5);
        assert!(n.contains("***"));
        // deterministic
        assert_eq!(n, anonymized_nickname(12345));
    }

    #[test]
    fn comment_texts_borrow() {
        let item = Item {
            id: 1,
            shop_id: 2,
            name: "x".into(),
            price_cents: 100,
            sales_volume: 10,
            category: Category::FoodGrocery,
            label: ItemLabel::Normal,
            comments: vec![Comment {
                id: 1,
                user_id: 3,
                client: Client::Web,
                date: format_date(0, 0),
                content: "hao".into(),
            }],
        };
        assert_eq!(item.comment_texts(), vec!["hao"]);
    }
}
