//! Temporal comment traces: the platform as a firehose.
//!
//! The batch generator ([`crate::platform`]) materializes each item's
//! full comment *archive* with day-granularity dates — enough for the
//! paper's offline experiments, but useless for streaming detection,
//! where the signal is *when* comments arrive. This module replays the
//! platform on a millisecond-granularity simulated clock:
//!
//! * **organic arrivals** are a per-item Poisson process at a low rate
//!   (exponential inter-arrival gaps), styled by the normal comment
//!   mixture;
//! * **fraud campaign waves** hit each fraud item in one or more short
//!   bursts: hired promoters from the item's campaign pool fire
//!   [`CommentStyle::FraudPromo`] comments with near-machine-regular
//!   gaps at tens of comments per minute — the burstiness fingerprint
//!   the streaming detector exists to catch;
//! * **delivery skew**: events are delivered in an order that may
//!   differ from event-time order by a bounded jitter, modelling
//!   collector fan-in — the consumer must tolerate out-of-order
//!   arrivals within [`TraceConfig::max_skew_ms`].
//!
//! Everything is a pure function of the platform and
//! [`TraceConfig::seed`]: the same inputs always produce the
//! byte-identical event sequence, which is what makes streaming
//! determinism testable end to end.

use crate::campaign::Campaign;
use crate::comment_model::{generate_comment_with_topic, CommentStyle, StyleMixture, N_TOPICS};
use crate::platform::Platform;
use rand::{rngs::StdRng, Rng, RngExt, SeedableRng};

/// Configuration of one temporal trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// RNG seed; the trace is deterministic in it (and the platform).
    pub seed: u64,
    /// Simulated span of the trace in milliseconds.
    pub duration_ms: u64,
    /// Mean organic comment arrivals per item per minute.
    pub organic_rate_per_min: f64,
    /// Promo arrivals per minute while a fraud item's wave is firing.
    pub burst_rate_per_min: f64,
    /// Wave length is drawn uniformly from this range (ms).
    pub burst_duration_ms: (u64, u64),
    /// Campaign waves per fraud item.
    pub waves_per_fraud_item: usize,
    /// Maximum delivery skew: an event may be delivered after events
    /// whose true time is up to this much later.
    pub max_skew_ms: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 0x57E4,
            duration_ms: 30 * 60 * 1000,
            organic_rate_per_min: 0.2,
            burst_rate_per_min: 60.0,
            burst_duration_ms: (45_000, 120_000),
            waves_per_fraud_item: 1,
            max_skew_ms: 2_000,
        }
    }
}

/// One comment event on the simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedComment {
    /// True event time (ms on the trace clock). Delivery order may lag
    /// this by up to [`TraceConfig::max_skew_ms`].
    pub at_ms: u64,
    /// Item the comment lands on.
    pub item_id: u64,
    /// Commenting user.
    pub user_id: u32,
    /// The item's public sales volume (stage-1 filter input).
    pub sales_volume: u64,
    /// Comment text in the platform language.
    pub content: String,
    /// Latent ground truth: emitted by a hired campaign wave. Never
    /// exposed to the detector; evaluation only.
    pub promo: bool,
}

/// Ground truth of one campaign wave — the unit detection latency is
/// measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstWave {
    /// Fraud item the wave targets.
    pub item_id: u64,
    /// First promo arrival of the wave (ms).
    pub start_ms: u64,
    /// Last promo arrival of the wave (ms).
    pub end_ms: u64,
}

/// A generated temporal trace: events in delivery order plus the latent
/// wave ground truth.
#[derive(Debug, Clone)]
pub struct TemporalTrace {
    /// Events in *delivery* order (event-time order perturbed by a
    /// bounded jitter).
    pub events: Vec<TimedComment>,
    /// Campaign-wave ground truth, one entry per generated wave.
    pub waves: Vec<BurstWave>,
    /// The generating configuration.
    pub config: TraceConfig,
}

impl TemporalTrace {
    /// Replays `platform` as a comment firehose under `config`.
    pub fn from_platform(platform: &Platform, config: &TraceConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pc = platform.config();
        let users = platform.users();
        let n_hired = users.iter().filter(|u| u.hired).count();
        let n_users = users.len();
        // Rebuilt exactly as the batch generator builds it (from_users
        // is deterministic), so waves draw from the same hired pools
        // that wrote the items' archived promo comments.
        let campaign = Campaign::from_users(users, pc.n_campaign_pools.max(1));
        let lexicon = platform.lexicon();

        let mut events: Vec<TimedComment> = Vec::new();
        let mut waves: Vec<BurstWave> = Vec::new();

        for (ordinal, item) in platform.items().iter().enumerate() {
            let topic = (item.id as usize).wrapping_mul(2654435761) % N_TOPICS;

            // Organic background: Poisson arrivals over the whole span.
            let organic = StyleMixture::normal();
            let per_ms = (config.organic_rate_per_min / 60_000.0).max(0.0);
            if per_ms > 0.0 {
                let mut t = exp_gap_ms(&mut rng, per_ms);
                while t < config.duration_ms as f64 {
                    let style = organic.sample(&mut rng);
                    events.push(TimedComment {
                        at_ms: t as u64,
                        item_id: item.id,
                        user_id: crate::campaign::sample_organic_buyer(n_hired, n_users, &mut rng),
                        sales_volume: item.sales_volume,
                        content: generate_comment_with_topic(lexicon, style, topic, &mut rng),
                        promo: false,
                    });
                    t += exp_gap_ms(&mut rng, per_ms);
                }
            }

            // Campaign waves: fraud items only.
            if !item.label.is_fraud() || config.burst_rate_per_min <= 0.0 {
                continue;
            }
            let (dur_lo, dur_hi) = config.burst_duration_ms;
            for _ in 0..config.waves_per_fraud_item {
                let dur = if dur_hi > dur_lo { rng.random_range(dur_lo..=dur_hi) } else { dur_lo };
                let dur = dur.min(config.duration_ms.saturating_sub(1));
                let start = rng.random_range(0..config.duration_ms.saturating_sub(dur).max(1));
                // Near-regular gaps: the wave tooling fires on a timer
                // with mild jitter — low inter-arrival entropy, the
                // opposite of the organic exponential tail.
                let base_gap = 60_000.0 / config.burst_rate_per_min;
                let mut t = start as f64;
                let mut first: Option<u64> = None;
                let mut last = start;
                while t < (start + dur) as f64 && t < config.duration_ms as f64 {
                    let at = t as u64;
                    first.get_or_insert(at);
                    last = at;
                    events.push(TimedComment {
                        at_ms: at,
                        item_id: item.id,
                        user_id: campaign.sample_promoter(ordinal, &mut rng),
                        sales_volume: item.sales_volume,
                        content: generate_comment_with_topic(
                            lexicon,
                            CommentStyle::FraudPromo,
                            topic,
                            &mut rng,
                        ),
                        promo: true,
                    });
                    t += base_gap * (0.7 + 0.6 * rng.random::<f64>());
                }
                if let Some(start_ms) = first {
                    waves.push(BurstWave { item_id: item.id, start_ms, end_ms: last });
                }
            }
        }

        // Delivery order: sort by true time, then jitter each event's
        // delivery stamp by up to max_skew_ms — adjacent events can swap,
        // but no event is delivered after one more than max_skew_ms
        // younger than it.
        events.sort_by_key(|e| (e.at_ms, e.item_id, e.user_id));
        let mut keyed: Vec<(u64, usize, TimedComment)> = events
            .into_iter()
            .enumerate()
            .map(|(i, ev)| {
                let jitter = if config.max_skew_ms > 0 {
                    rng.random_range(0..=config.max_skew_ms)
                } else {
                    0
                };
                (ev.at_ms + jitter, i, ev)
            })
            .collect();
        keyed.sort_by_key(|&(delivery, i, _)| (delivery, i));
        let events = keyed.into_iter().map(|(_, _, ev)| ev).collect();

        waves.sort_by_key(|w| (w.start_ms, w.item_id));
        Self { events, waves, config: config.clone() }
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Exponential inter-arrival gap (ms) for a Poisson process with
/// `per_ms` expected arrivals per millisecond.
fn exp_gap_ms(rng: &mut impl Rng, per_ms: f64) -> f64 {
    // Inverse-CDF sampling; 1-u keeps the log argument in (0, 1].
    let u: f64 = rng.random::<f64>();
    -(1.0 - u).ln() / per_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformConfig;

    fn tiny_platform() -> Platform {
        Platform::generate(PlatformConfig {
            n_fraud_items: 3,
            n_normal_items: 6,
            n_shops: 4,
            ..PlatformConfig::default()
        })
    }

    fn tiny_config() -> TraceConfig {
        TraceConfig {
            duration_ms: 5 * 60 * 1000,
            organic_rate_per_min: 0.5,
            burst_rate_per_min: 90.0,
            burst_duration_ms: (20_000, 40_000),
            ..TraceConfig::default()
        }
    }

    #[test]
    fn trace_is_deterministic_in_seed() {
        let p = tiny_platform();
        let a = TemporalTrace::from_platform(&p, &tiny_config());
        let b = TemporalTrace::from_platform(&p, &tiny_config());
        assert_eq!(a.events, b.events);
        assert_eq!(a.waves, b.waves);
    }

    #[test]
    fn delivery_skew_is_bounded() {
        let p = tiny_platform();
        let trace = TemporalTrace::from_platform(&p, &tiny_config());
        assert!(!trace.is_empty());
        let mut watermark = 0u64;
        for ev in &trace.events {
            assert!(
                ev.at_ms + trace.config.max_skew_ms >= watermark,
                "event at {} delivered after watermark {} (skew bound {})",
                ev.at_ms,
                watermark,
                trace.config.max_skew_ms
            );
            watermark = watermark.max(ev.at_ms);
        }
    }

    #[test]
    fn every_fraud_item_gets_a_wave_and_waves_are_promo_dense() {
        let p = tiny_platform();
        let trace = TemporalTrace::from_platform(&p, &tiny_config());
        let fraud_ids: Vec<u64> =
            p.items().iter().filter(|i| i.label.is_fraud()).map(|i| i.id).collect();
        for id in &fraud_ids {
            assert!(
                trace.waves.iter().any(|w| w.item_id == *id),
                "fraud item {id} has no campaign wave"
            );
        }
        for w in &trace.waves {
            assert!(w.end_ms >= w.start_ms);
            assert!(w.end_ms < trace.config.duration_ms);
            let in_wave = trace
                .events
                .iter()
                .filter(|e| e.item_id == w.item_id && e.at_ms >= w.start_ms && e.at_ms <= w.end_ms)
                .count();
            let promo_in_wave = trace
                .events
                .iter()
                .filter(|e| {
                    e.promo
                        && e.item_id == w.item_id
                        && e.at_ms >= w.start_ms
                        && e.at_ms <= w.end_ms
                })
                .count();
            assert!(in_wave >= 10, "wave with only {in_wave} events");
            assert!(
                promo_in_wave * 2 > in_wave,
                "wave not promo-dominated: {promo_in_wave}/{in_wave}"
            );
        }
    }

    #[test]
    fn normal_items_never_emit_promo_events() {
        let p = tiny_platform();
        let trace = TemporalTrace::from_platform(&p, &tiny_config());
        let fraud_ids: std::collections::HashSet<u64> =
            p.items().iter().filter(|i| i.label.is_fraud()).map(|i| i.id).collect();
        for ev in &trace.events {
            if ev.promo {
                assert!(fraud_ids.contains(&ev.item_id));
            }
        }
    }
}
