//! The cluster router: consistent-hash fan-out over shard processes,
//! health-driven ejection/re-admission, failover retries, and the
//! coordinated rolling model swap.
//!
//! ## Routing
//!
//! Items are placed on a consistent-hash ring ([`HashRing`]) keyed by
//! `item_id`, so the same item lands on the same shard run after run
//! (per-shard caches stay warm, and adding a shard only moves ~1/N of
//! the keyspace). A request's items are partitioned by their first
//! *live* preferred shard and fanned out concurrently; each sub-request
//! that fails on transport (shard died or vanished mid-response) walks
//! to the next live shard and replays — safe because scoring is a pure
//! function of the items and the pinned model version.
//!
//! ## Version pinning (zero-skew)
//!
//! Every routed request is pinned to the cluster model version at
//! arrival: each sub-request carries `pin_version` and shards answer
//! with exactly that generation or 409. The response's verdicts are
//! therefore all from ONE model version even when the request spans
//! shards mid-rolling-swap; a 409 (the pinned version fell out of a
//! shard's two-generation window) retries the whole request at the new
//! cluster version. `cats.serve.router.skew_merges` counts responses
//! that would have mixed versions — the chaos bench asserts it stays 0.
//!
//! ## Rolling swap
//!
//! [`Router::rolling_swap`] loads the new snapshot on every live shard
//! under the *next* version tag, then — only after every live shard
//! holds it — bumps the cluster version. In-flight and new requests pin
//! the old version until the bump and resolve via the shards' previous
//! slot; requests after the bump pin the new version. No request can
//! observe both.

use crate::chaos::ChaosRng;
use crate::client::{ClientError, ScoreClient};
use crate::health::{HealthConfig, HealthEvent, ShardHealth, ShardState};
use crate::http::{read_request, write_json_error, write_response, RequestHead};
use crate::wire::{
    parse_score_request, RouterHealthResponse, ScoreItem, ScoreResponse, ScoreVerdict,
    ShardHealthInfo, WireSnapshot,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address for the router's own HTTP front end.
    pub addr: String,
    /// Ejection / re-admission policy and probe cadence.
    pub health: HealthConfig,
    /// Virtual nodes per shard on the hash ring.
    pub virtual_nodes: usize,
    /// Whole-request attempts on a version conflict (409 mid-swap).
    pub max_attempts: usize,
    /// Per-sub-request read/write budget against a shard.
    pub shard_timeout: Duration,
    /// Per-sub-request connect budget (tight: a dead shard must fail
    /// fast so the failover replay stays cheap).
    pub shard_connect_timeout: Duration,
    /// Snapshot artifact the shards were started from, recorded as the
    /// version-1 artifact so late-joining/restarted shards can be
    /// synced before any swap happens.
    pub initial_artifact: Option<String>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            health: HealthConfig::default(),
            virtual_nodes: 64,
            max_attempts: 4,
            shard_timeout: Duration::from_secs(30),
            shard_connect_timeout: Duration::from_millis(500),
            initial_artifact: None,
        }
    }
}

/// Consistent-hash ring with virtual nodes.
pub struct HashRing {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

/// SplitMix64 of one key — stable across runs and processes.
fn hash_key(key: u64) -> u64 {
    ChaosRng::new(key).next_u64()
}

impl HashRing {
    /// A ring over `shards` shards with `virtual_nodes` points each.
    pub fn new(shards: usize, virtual_nodes: usize) -> Self {
        let shards = shards.max(1);
        let vnodes = virtual_nodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                points.push((hash_key(((s as u64) << 32) | (v as u64 + 1)), s));
            }
        }
        points.sort_unstable();
        Self { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `item_id`.
    pub fn primary(&self, item_id: u64) -> usize {
        self.preference(item_id)[0]
    }

    /// Failover order for `item_id`: the owning shard first, then each
    /// further shard in ring-walk order (every shard appears once).
    pub fn preference(&self, item_id: u64) -> Vec<usize> {
        let h = hash_key(item_id);
        let start = self.points.partition_point(|(p, _)| *p < h) % self.points.len();
        let mut order = Vec::with_capacity(self.shards);
        for i in 0..self.points.len() {
            let (_, s) = self.points[(start + i) % self.points.len()];
            if !order.contains(&s) {
                order.push(s);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }
}

/// Parent-side record of one shard.
struct ShardSlot {
    id: usize,
    addr: String,
    health: Mutex<ShardHealth>,
    /// Model version last reported by the prober (or set by a swap).
    last_version: AtomicU64,
}

impl ShardSlot {
    fn state(&self) -> ShardState {
        cats_obs::lock_recover(&self.health, "cats.serve.router.health").state()
    }
}

struct RouterShared {
    shards: Vec<ShardSlot>,
    ring: HashRing,
    cluster_version: AtomicU64,
    /// `(path, version)` of the newest successfully distributed
    /// artifact — what a re-admitted shard is synced to.
    last_artifact: Mutex<Option<(String, u64)>>,
    /// Serializes rolling swaps.
    swap_lock: Mutex<()>,
    stop: AtomicBool,
    config: RouterConfig,
}

impl RouterShared {
    fn client(&self, addr: &str) -> ScoreClient {
        ScoreClient::new(addr)
            .with_timeout(self.config.shard_timeout)
            .with_connect_timeout(self.config.shard_connect_timeout)
    }

    fn probe_client(&self, addr: &str) -> ScoreClient {
        ScoreClient::new(addr)
            .with_timeout(self.config.health.probe_timeout)
            .with_connect_timeout(self.config.health.probe_timeout)
    }
}

/// The running cluster router.
pub struct Router {
    shared: Arc<RouterShared>,
    accept_thread: Option<JoinHandle<()>>,
    prober_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    local_addr: SocketAddr,
}

impl Router {
    /// Binds the router over the given shard addresses and starts the
    /// accept loop and the health prober.
    pub fn start(shard_addrs: Vec<String>, config: RouterConfig) -> std::io::Result<Router> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shards = shard_addrs
            .into_iter()
            .enumerate()
            .map(|(id, addr)| ShardSlot {
                id,
                addr,
                health: Mutex::new(ShardHealth::new(&config.health)),
                last_version: AtomicU64::new(1),
            })
            .collect::<Vec<_>>();
        let ring = HashRing::new(shards.len(), config.virtual_nodes);
        let initial = config.initial_artifact.clone().map(|p| (p, 1));
        let shared = Arc::new(RouterShared {
            shards,
            ring,
            cluster_version: AtomicU64::new(1),
            last_artifact: Mutex::new(initial),
            swap_lock: Mutex::new(()),
            stop: AtomicBool::new(false),
            config,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("cats-router-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn router accept loop")
        };
        let prober_thread = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("cats-router-probe".into())
                .spawn(move || prober_loop(&shared))
                .expect("spawn router prober")
        };
        Ok(Router {
            shared,
            accept_thread: Some(accept_thread),
            prober_thread: Some(prober_thread),
            conns,
            local_addr,
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The cluster-coordinated model version.
    pub fn cluster_version(&self) -> u64 {
        self.shared.cluster_version.load(Ordering::Acquire)
    }

    /// Per-shard `(id, addr, state, last seen model version)`.
    pub fn shard_states(&self) -> Vec<ShardHealthInfo> {
        self.shared
            .shards
            .iter()
            .map(|s| ShardHealthInfo {
                id: s.id,
                addr: s.addr.clone(),
                state: s.state().as_str().to_string(),
                model_version: s.last_version.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Coordinated rolling swap: install `path` on every live shard
    /// under the next version tag, then bump the cluster version. On
    /// any shard failing the load, the swap aborts with the cluster
    /// version unchanged — requests keep pinning the old version, which
    /// every shard still serves (already-advanced shards via their
    /// previous slot).
    pub fn rolling_swap(&self, path: &str) -> Result<u64, String> {
        rolling_swap(&self.shared, path)
    }

    /// Stops accepting, joins the prober and every connection thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prober_thread.take() {
            let _ = h.join();
        }
        let handles =
            std::mem::take(&mut *cats_obs::lock_recover(&self.conns, "cats.serve.router.conns"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<RouterShared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name("cats-router-conn".into())
                    .spawn(move || handle_connection(stream, &shared))
                    .expect("spawn router connection handler");
                let mut hs = cats_obs::lock_recover(conns, "cats.serve.router.conns");
                hs.push(handle);
                let mut i = 0;
                while i < hs.len() {
                    if hs[i].is_finished() {
                        let _ = hs.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &RouterShared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let (head, body) = match read_request(&mut stream, 8 * 1024 * 1024) {
        Ok(ok) => ok,
        Err((status, msg)) => {
            write_json_error(&mut stream, status, "", &msg);
            return;
        }
    };
    route(&mut stream, shared, &head, &body);
}

fn route(stream: &mut TcpStream, shared: &RouterShared, head: &RequestHead, body: &str) {
    match (head.method.as_str(), head.path.as_str()) {
        ("POST", "/v1/score") => score(stream, shared, body),
        ("GET", "/healthz") => {
            let shards: Vec<ShardHealthInfo> = shared
                .shards
                .iter()
                .map(|s| ShardHealthInfo {
                    id: s.id,
                    addr: s.addr.clone(),
                    state: s.state().as_str().to_string(),
                    model_version: s.last_version.load(Ordering::Relaxed),
                })
                .collect();
            let live = shards.iter().filter(|s| s.state == "live").count();
            let version = shared.cluster_version.load(Ordering::Acquire);
            let resp = RouterHealthResponse {
                status: if live > 0 { "ok" } else { "degraded" }.to_string(),
                model_version: version,
                queue_depth: 0,
                cluster_version: version,
                live_shards: live,
                shards,
            };
            let body = serde_json::to_string(&resp).expect("router health serializes");
            write_response(stream, 200, "application/json", "", &body);
        }
        ("GET", "/metrics") => {
            let text = cluster_prometheus(shared);
            write_response(stream, 200, "text/plain; version=0.0.4", "", &text);
        }
        ("GET", "/metrics.json") => {
            let merged = merged_snapshot(shared);
            let wire: WireSnapshot = (&merged).into();
            let body = serde_json::to_string(&wire).expect("merged snapshot serializes");
            write_response(stream, 200, "application/json", "", &body);
        }
        ("POST", "/admin/swap") => {
            #[derive(serde::Deserialize)]
            struct SwapReq {
                path: String,
            }
            let req: SwapReq = match serde_json::from_str(body) {
                Ok(r) => r,
                Err(e) => {
                    write_json_error(stream, 400, "", &format!("body: {e}"));
                    return;
                }
            };
            match rolling_swap(shared, &req.path) {
                Ok(version) => {
                    write_response(
                        stream,
                        200,
                        "application/json",
                        "",
                        &format!("{{\"version\":{version}}}"),
                    );
                }
                Err(e) => write_json_error(stream, 502, "", &e),
            }
        }
        ("POST" | "GET", _) => {
            write_json_error(stream, 404, "", &format!("no such route: {}", head.path));
        }
        _ => {
            write_json_error(stream, 405, "", &format!("method {} not allowed", head.method));
        }
    }
}

/// Outcome of one whole-request routing attempt.
enum AttemptError {
    /// Some shard no longer holds the pinned version — retry the whole
    /// request at the (new) cluster version.
    Conflict,
    /// A shard answered an HTTP error that is not ours to retry
    /// (backpressure, bad batch) — forward it.
    Upstream(u16, String),
    /// Every candidate for some sub-request is unreachable.
    AllDown(String),
}

fn score(stream: &mut TcpStream, shared: &RouterShared, body: &str) {
    cats_obs::counter("cats.serve.router.requests").inc();
    let (items, client_pin) = match parse_score_request(body) {
        Ok(parsed) => parsed,
        Err(e) => {
            write_json_error(stream, 400, "", &e);
            return;
        }
    };
    if items.is_empty() {
        let resp = ScoreResponse {
            model_version: client_pin
                .unwrap_or_else(|| shared.cluster_version.load(Ordering::Acquire)),
            verdicts: Vec::new(),
        };
        let body = serde_json::to_string(&resp).expect("score response serializes");
        write_response(stream, 200, "application/json", "", &body);
        return;
    }
    let attempts = shared.config.max_attempts.max(1);
    let mut last_err: Option<AttemptError> = None;
    for _ in 0..attempts {
        let pin = client_pin.unwrap_or_else(|| shared.cluster_version.load(Ordering::Acquire));
        match score_once(shared, &items, pin) {
            Ok(verdicts) => {
                let resp = ScoreResponse { model_version: pin, verdicts };
                let body = serde_json::to_string(&resp).expect("score response serializes");
                write_response(stream, 200, "application/json", "", &body);
                return;
            }
            Err(AttemptError::Conflict) if client_pin.is_none() => {
                // Mid-swap: re-pin at the advanced cluster version and
                // replay the whole request.
                cats_obs::counter("cats.serve.router.version_conflicts").inc();
                last_err = Some(AttemptError::Conflict);
            }
            Err(e) => {
                last_err = Some(e);
                break;
            }
        }
    }
    match last_err {
        Some(AttemptError::Upstream(status, body)) => {
            write_response(stream, status, "application/json", "", &body);
        }
        Some(AttemptError::Conflict) => {
            write_json_error(stream, 409, "", "model version conflict persisted across retries");
        }
        Some(AttemptError::AllDown(msg)) => {
            cats_obs::counter("cats.serve.router.unroutable").inc();
            write_json_error(stream, 503, "Retry-After: 1\r\n", &msg);
        }
        None => {
            cats_obs::counter("cats.serve.router.unroutable").inc();
            write_json_error(stream, 503, "Retry-After: 1\r\n", "no route");
        }
    }
}

/// One fan-out attempt at a fixed pin. Returns verdicts in item order.
fn score_once(
    shared: &RouterShared,
    items: &[ScoreItem],
    pin: u64,
) -> Result<Vec<ScoreVerdict>, AttemptError> {
    let n_shards = shared.shards.len();
    // Partition items by their first live preferred shard (primary if
    // none is live — it might be back; the sub-request walk handles it
    // failing again).
    let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    for (idx, item) in items.iter().enumerate() {
        let pref = shared.ring.preference(item.item_id);
        let target = pref
            .iter()
            .copied()
            .find(|&s| shared.shards[s].state() == ShardState::Live)
            .unwrap_or(pref[0]);
        per_shard[target].push(idx);
    }

    let mut slots: Vec<Option<ScoreVerdict>> = (0..items.len()).map(|_| None).collect();
    let mut errors: Vec<AttemptError> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .map(|(target, idxs)| {
                let sub: Vec<ScoreItem> = idxs.iter().map(|&i| items[i].clone()).collect();
                scope.spawn(move || (idxs, sub_score(shared, target, &sub, pin)))
            })
            .collect();
        for h in handles {
            let (idxs, result) = h.join().expect("router sub-request thread");
            match result {
                Ok(verdicts) => {
                    for (&i, v) in idxs.iter().zip(verdicts) {
                        slots[i] = Some(v);
                    }
                }
                Err(e) => errors.push(e),
            }
        }
    });

    // Conflict dominates (the whole request must re-pin), then upstream
    // backpressure, then total unreachability.
    if errors.iter().any(|e| matches!(e, AttemptError::Conflict)) {
        return Err(AttemptError::Conflict);
    }
    if let Some(pos) = errors.iter().position(|e| matches!(e, AttemptError::Upstream(..))) {
        return Err(errors.swap_remove(pos));
    }
    if let Some(pos) = errors.iter().position(|e| matches!(e, AttemptError::AllDown(_))) {
        return Err(errors.swap_remove(pos));
    }
    Ok(slots.into_iter().map(|v| v.expect("every item answered")).collect())
}

/// One sub-request: try the target shard, then walk the remaining
/// shards in ring order, skipping ejected ones (unless everything is
/// ejected, in which case try them anyway — a probe may simply not have
/// noticed a recovery yet).
fn sub_score(
    shared: &RouterShared,
    target: usize,
    items: &[ScoreItem],
    pin: u64,
) -> Result<Vec<ScoreVerdict>, AttemptError> {
    let n = shared.shards.len();
    let candidates: Vec<usize> = (0..n).map(|step| (target + step) % n).collect();
    let mut last_transport = String::new();
    for (round, &sid) in candidates.iter().enumerate() {
        let shard = &shared.shards[sid];
        // Skip known-ejected alternates on the first pass; the second
        // half of the walk (if we get there) has nothing to lose.
        if round > 0 && shard.state() == ShardState::Ejected {
            continue;
        }
        if round > 0 {
            cats_obs::counter("cats.serve.router.retries").inc();
        }
        match shared.client(&shard.addr).score_pinned(items, pin) {
            Ok(resp) => {
                if resp.model_version != pin {
                    // A shard answered with the wrong generation — this
                    // response will NOT be merged (that would be version
                    // skew); count it and re-pin the whole request.
                    cats_obs::counter("cats.serve.router.skew_merges").inc();
                    return Err(AttemptError::Conflict);
                }
                record_success(shared, sid);
                return Ok(resp.verdicts);
            }
            Err(ClientError::Http { status: 409, .. }) => {
                return Err(AttemptError::Conflict);
            }
            Err(ClientError::Http { status, body }) => {
                // Backpressure (429/503) or a bad sub-request: not a
                // shard death — forward, don't eject.
                return Err(AttemptError::Upstream(status, body));
            }
            Err(e @ (ClientError::Io(_) | ClientError::Disconnected(_))) => {
                // Shard dead (refused, reset, died mid-response): count
                // towards ejection and replay on the next live shard —
                // scoring is pure, so the replay is safe.
                cats_obs::counter("cats.serve.router.shard_dead").inc();
                record_failure(shared, sid);
                last_transport = format!("shard {sid}: {e}");
            }
            Err(e @ ClientError::TimedOut(_)) => {
                // Shard slow: also counts towards ejection (a stuck
                // shard is as useless as a dead one) but is tracked
                // separately so operators can tell the failure modes
                // apart.
                cats_obs::counter("cats.serve.router.shard_slow").inc();
                record_failure(shared, sid);
                last_transport = format!("shard {sid}: {e}");
            }
            Err(e) => {
                cats_obs::counter("cats.serve.router.shard_dead").inc();
                record_failure(shared, sid);
                last_transport = format!("shard {sid}: {e}");
            }
        }
    }
    Err(AttemptError::AllDown(format!("no live shard could answer ({last_transport})")))
}

fn record_failure(shared: &RouterShared, sid: usize) {
    let mut h = cats_obs::lock_recover(&shared.shards[sid].health, "cats.serve.router.health");
    if let Some(HealthEvent::Ejected) = h.record_failure() {
        cats_obs::counter("cats.serve.router.ejections").inc();
        eprintln!("cats-router: ejected shard {sid} ({})", shared.shards[sid].addr);
    }
}

fn record_success(shared: &RouterShared, sid: usize) {
    // Routed-request successes reset failure streaks; re-admission is
    // decided by the prober (which also syncs the model version first).
    let mut h = cats_obs::lock_recover(&shared.shards[sid].health, "cats.serve.router.health");
    let _ = h.record_success();
}

/// The health prober: probes every shard each interval, drives the
/// ejection / re-admission state machine, and keeps shard model
/// versions in sync with the cluster version.
fn prober_loop(shared: &Arc<RouterShared>) {
    let interval = shared.config.health.probe_interval;
    let slice =
        Duration::from_millis(interval.as_millis().min(20) as u64).max(Duration::from_millis(1));
    while !shared.stop.load(Ordering::Acquire) {
        for sid in 0..shared.shards.len() {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            probe_shard(shared, sid);
        }
        let mut slept = Duration::ZERO;
        while slept < interval && !shared.stop.load(Ordering::Acquire) {
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

fn probe_shard(shared: &RouterShared, sid: usize) {
    let shard = &shared.shards[sid];
    match shared.probe_client(&shard.addr).health() {
        Ok(h) => {
            shard.last_version.store(h.model_version, Ordering::Relaxed);
            let event = {
                let mut hh = cats_obs::lock_recover(&shard.health, "cats.serve.router.health");
                hh.record_success()
            };
            match event {
                Some(HealthEvent::ReadyToReadmit) => {
                    // Sync before re-admission: a restarted shard comes
                    // back at v1 and must not serve pinned-v5 traffic.
                    if sync_shard(shared, sid).is_ok() {
                        cats_obs::lock_recover(&shard.health, "cats.serve.router.health")
                            .mark_readmitted();
                        cats_obs::counter("cats.serve.router.readmissions").inc();
                        eprintln!("cats-router: re-admitted shard {sid} ({})", shard.addr);
                    }
                }
                _ => {
                    // A live shard can drift too (fast restart between
                    // probes, before ejection): re-sync it in place.
                    if shard.state() == ShardState::Live
                        && h.model_version != shared.cluster_version.load(Ordering::Acquire)
                    {
                        let _ = sync_shard(shared, sid);
                    }
                }
            }
        }
        Err(_) => record_failure(shared, sid),
    }
}

/// Brings one shard to the cluster model version by replaying the last
/// distributed artifact. No-op when the versions already match.
fn sync_shard(shared: &RouterShared, sid: usize) -> Result<(), String> {
    let shard = &shared.shards[sid];
    let cluster = shared.cluster_version.load(Ordering::Acquire);
    if shard.last_version.load(Ordering::Relaxed) == cluster {
        return Ok(());
    }
    let artifact =
        cats_obs::lock_recover(&shared.last_artifact, "cats.serve.router.artifact").clone();
    let Some((path, version)) = artifact else {
        return Err(format!("no artifact recorded for cluster version {cluster}"));
    };
    if version != cluster {
        return Err(format!("recorded artifact is v{version}, cluster is v{cluster}"));
    }
    shared
        .client(&shard.addr)
        .admin_load(&path, cluster)
        .map_err(|e| format!("sync shard {sid} to v{cluster}: {e}"))?;
    shard.last_version.store(cluster, Ordering::Relaxed);
    cats_obs::counter("cats.serve.router.version_syncs").inc();
    eprintln!("cats-router: synced shard {sid} to model v{cluster}");
    Ok(())
}

fn rolling_swap(shared: &RouterShared, path: &str) -> Result<u64, String> {
    let _guard = cats_obs::lock_recover(&shared.swap_lock, "cats.serve.router.swap");
    let next = shared.cluster_version.load(Ordering::Acquire) + 1;
    // Stage 1: every live shard loads the new generation. Requests keep
    // pinning the old version and resolve against the previous slot on
    // shards that have already advanced.
    for shard in shared.shards.iter().filter(|s| s.state() == ShardState::Live) {
        shared
            .client(&shard.addr)
            .admin_load(path, next)
            .map_err(|e| format!("rolling swap aborted at shard {}: {e}", shard.id))?;
        shard.last_version.store(next, Ordering::Relaxed);
    }
    // Stage 2: record the artifact (re-admissions sync to it), THEN
    // bump the pin source. Order matters: after the bump, every new
    // request pins `next`, so every live shard must already hold it —
    // which stage 1 just guaranteed.
    *cats_obs::lock_recover(&shared.last_artifact, "cats.serve.router.artifact") =
        Some((path.to_string(), next));
    shared.cluster_version.store(next, Ordering::Release);
    cats_obs::counter("cats.serve.router.swaps").inc();
    eprintln!("cats-router: rolling swap complete, cluster at model v{next}");
    Ok(next)
}

/// Merged view over the router's own registry plus every reachable
/// shard's exported snapshot.
fn merged_snapshot(shared: &RouterShared) -> cats_obs::Snapshot {
    let mut merged = cats_obs::global().snapshot();
    for shard in &shared.shards {
        if let Ok(wire) = shared.probe_client(&shard.addr).metrics_snapshot() {
            merged = merged.merge(&wire.into_snapshot());
        }
    }
    merged
}

/// Prometheus text for the whole cluster: each shard's registry labeled
/// `shard="<id>"`, the router's own labeled `shard="router"`, and the
/// merged union labeled `shard="cluster"`.
fn cluster_prometheus(shared: &RouterShared) -> String {
    let own = cats_obs::global().snapshot();
    let mut out = own.to_prometheus_labeled(&[("shard", "router")]);
    let mut merged = own;
    for shard in &shared.shards {
        if let Ok(wire) = shared.probe_client(&shard.addr).metrics_snapshot() {
            let snap = wire.into_snapshot();
            out.push_str(&snap.to_prometheus_labeled(&[("shard", &shard.id.to_string())]));
            merged = merged.merge(&snap);
        }
    }
    out.push_str(&merged.to_prometheus_labeled(&[("shard", "cluster")]));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for item in 0..10_000u64 {
            counts[ring.primary(item)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (1_000..=5_000).contains(&c),
                "shard {s} owns {c} of 10k keys — ring is badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn ring_assignment_is_deterministic_and_sticky() {
        let a = HashRing::new(4, 64);
        let b = HashRing::new(4, 64);
        for item in 0..500u64 {
            assert_eq!(a.primary(item), b.primary(item), "same ring, same owner");
        }
        // Growing the ring moves only a fraction of the keyspace.
        let bigger = HashRing::new(5, 64);
        let moved = (0..10_000u64).filter(|&i| a.primary(i) != bigger.primary(i)).count();
        assert!(
            moved < 5_000,
            "adding one shard moved {moved}/10000 keys; consistent hashing should move ~1/5"
        );
    }

    #[test]
    fn preference_lists_every_shard_exactly_once() {
        let ring = HashRing::new(4, 16);
        for item in 0..200u64 {
            let mut pref = ring.preference(item);
            assert_eq!(pref[0], ring.primary(item));
            pref.sort_unstable();
            assert_eq!(pref, vec![0, 1, 2, 3], "preference is a permutation of shards");
        }
    }

    #[test]
    fn single_shard_ring_is_degenerate_but_valid() {
        let ring = HashRing::new(1, 8);
        assert_eq!(ring.primary(42), 0);
        assert_eq!(ring.preference(42), vec![0]);
        // Zero-shard input clamps to one.
        assert_eq!(HashRing::new(0, 0).primary(7), 0);
    }
}
