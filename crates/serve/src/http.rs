//! Minimal HTTP/1.1 front end for the scoring service.
//!
//! Deliberately small: blocking `std::net`, one thread per connection,
//! one request per connection (`Connection: close` on every response).
//! That is plenty for a scoring sidecar whose concurrency ceiling is
//! the batcher queue, and it keeps the crate free of any async runtime
//! or HTTP framework. Routes:
//!
//! | route               | behaviour                                          |
//! |---------------------|----------------------------------------------------|
//! | `POST /v1/score`    | parse → [`crate::Batcher::submit_pinned`] → 200    |
//! | `POST /v1/ingest`   | stream events → windows → batcher on flush → 200   |
//! | `GET /healthz`      | `ok`/`draining`, model version, queue depth        |
//! | `GET /metrics`      | `cats-obs` Prometheus exporter (text format 0.0.4) |
//! | `GET /metrics.json` | serde snapshot of the registry (router merges it)  |
//! | `POST /admin/load`  | install a snapshot file as a tagged model version  |
//!
//! Backpressure maps to status codes, never to stalled sockets: a full
//! queue answers 429 with a `Retry-After` computed from queue depth and
//! the recent drain rate, a draining server answers 503, an oversized
//! body answers 413 — all in microseconds. A request pinned to a model
//! version this process no longer holds answers 409 (the cluster router
//! re-runs it at the current version).

use crate::batcher::{BatchConfig, BatchReply, Batcher, RejectReason};
use crate::model::ModelSlot;
use crate::wire::{
    AdminLoadRequest, AdminLoadResponse, ErrorResponse, HealthResponse, IngestResponse, ScoreItem,
    ScoreResponse, WireSnapshot,
};
use cats_stream::{CommentEvent, StreamConfig, StreamEngine};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum bytes of request head (request line + headers) we accept.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Micro-batcher tuning.
    pub batch: BatchConfig,
    /// Largest accepted `POST /v1/score` body; beyond this, 413.
    pub max_body_bytes: usize,
    /// How long a request may wait for its scored batch before 504.
    pub request_timeout: Duration,
    /// Sliding-window tuning for `POST /v1/ingest`.
    pub stream: StreamConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            batch: BatchConfig::default(),
            max_body_bytes: 8 * 1024 * 1024,
            request_timeout: Duration::from_secs(60),
            stream: StreamConfig::default(),
        }
    }
}

struct ServerShared {
    batcher: Batcher,
    slot: Arc<ModelSlot>,
    stop: AtomicBool,
    config: ServeConfig,
    /// Sliding-window state behind `/v1/ingest`. One engine per server:
    /// ingest holds the lock for O(1) ring updates only; scoring goes
    /// through the (unlocked) micro-batcher.
    stream: Mutex<StreamEngine>,
    /// Drift monitor, fed by the batch workers and surfaced on
    /// `/healthz` as degraded mode (DESIGN.md §15). `None` when the
    /// model carries no feature reference.
    drift: Option<Arc<cats_obs::DriftMonitor>>,
}

/// The running HTTP server: an accept loop plus per-connection threads.
pub struct Server {
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds `config.addr` and starts serving `slot` immediately.
    pub fn start(slot: Arc<ModelSlot>, config: ServeConfig) -> std::io::Result<Self> {
        Self::start_with_drift(slot, config, None)
    }

    /// [`Server::start`] with a drift monitor: batch workers feed it
    /// every classified feature row, and `/healthz` reports its verdict
    /// (`degraded: true` at warning or worse).
    pub fn start_with_drift(
        slot: Arc<ModelSlot>,
        config: ServeConfig,
        drift: Option<Arc<cats_obs::DriftMonitor>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            batcher: Batcher::new_with_drift(slot.clone(), config.batch.clone(), drift.clone()),
            slot,
            stop: AtomicBool::new(false),
            stream: Mutex::new(StreamEngine::new(config.stream.clone())),
            config,
            drift,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("cats-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn accept loop")
        };
        Ok(Self { shared, accept_thread: Some(accept_thread), conns, local_addr })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current batcher queue depth (exposed for health checks/tests).
    pub fn queue_depth(&self) -> usize {
        self.shared.batcher.queue_depth()
    }

    /// The drift monitor this server was started with, if any.
    pub fn drift(&self) -> Option<&Arc<cats_obs::DriftMonitor>> {
        self.shared.drift.as_ref()
    }

    /// Chaos hook: makes the next `n` batch-worker iterations panic
    /// (see [`Batcher::inject_worker_panic`]); the soak bench uses this
    /// to drive the supervision + 500-recovery path through real
    /// sockets.
    pub fn inject_worker_panic(&self, n: u32) {
        self.shared.batcher.inject_worker_panic(n);
    }

    /// Graceful shutdown: stop accepting, answer everything already
    /// accepted (draining the batch queue), then join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Drain the batcher first: handler threads blocked on a scored
        // batch get their reply and finish fast.
        self.shared.batcher.shutdown();
        let handles =
            std::mem::take(&mut *cats_obs::lock_recover(&self.conns, "cats.serve.http.conns"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let accepted = cats_obs::counter("cats.serve.http.accepted");
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                accepted.inc();
                let shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name("cats-serve-conn".into())
                    .spawn(move || handle_connection(stream, &shared))
                    .expect("spawn connection handler");
                let mut hs = cats_obs::lock_recover(conns, "cats.serve.http.conns");
                hs.push(handle);
                // Reap finished handlers so the list stays bounded
                // under sustained load.
                let mut i = 0;
                while i < hs.len() {
                    if hs[i].is_finished() {
                        let _ = hs.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Parsed request head: method, path and declared body length.
pub(crate) struct RequestHead {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) content_length: usize,
}

/// Parses an HTTP/1.1 request head (everything before the blank line).
fn parse_head(head: &str) -> Result<RequestHead, String> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("missing request path")?.to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| "bad content-length".to_string())?;
            }
        }
    }
    Ok(RequestHead { method, path, content_length })
}

/// Reads one request (head + body) off the stream.
pub(crate) fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
) -> Result<(RequestHead, String), (u16, String)> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err((431, "request head too large".into()));
        }
        let n = stream.read(&mut chunk).map_err(|e| (400, format!("read: {e}")))?;
        if n == 0 {
            return Err((400, "connection closed mid-request".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head_str = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let head = parse_head(&head_str).map_err(|e| (400, e))?;
    if head.content_length > max_body {
        return Err((413, format!("body exceeds {max_body} bytes")));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < head.content_length {
        let n = stream.read(&mut chunk).map_err(|e| (400, format!("read body: {e}")))?;
        if n == 0 {
            return Err((400, "connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(head.content_length);
    let body = String::from_utf8(body).map_err(|_| (400, "body is not UTF-8".to_string()))?;
    Ok((head, body))
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

pub(crate) fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &str,
    body: &str,
) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{extra_headers}Connection: close\r\n\r\n",
        status_text(status),
        body.len(),
    );
    // The client may already be gone; that is its problem, not ours.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

pub(crate) fn write_json_error(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &str,
    msg: &str,
) {
    let body = serde_json::to_string(&ErrorResponse { error: msg.to_string() })
        .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
    write_response(stream, status, "application/json", extra_headers, &body);
}

fn handle_connection(mut stream: TcpStream, shared: &ServerShared) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let (head, body) = match read_request(&mut stream, shared.config.max_body_bytes) {
        Ok(ok) => ok,
        Err((status, msg)) => {
            cats_obs::counter("cats.serve.http.bad_request").inc();
            write_json_error(&mut stream, status, "", &msg);
            return;
        }
    };
    let status = route(&mut stream, shared, &head, &body);
    cats_obs::histogram("cats.serve.http.latency_ms").record(started.elapsed().as_secs_f64() * 1e3);
    cats_obs::counter(match status {
        200 => "cats.serve.http.status.200",
        429 => "cats.serve.http.status.429",
        500 => "cats.serve.http.status.500",
        503 => "cats.serve.http.status.503",
        _ => "cats.serve.http.status.other",
    })
    .inc();
}

/// Dispatches one parsed request and returns the response status.
fn route(stream: &mut TcpStream, shared: &ServerShared, head: &RequestHead, body: &str) -> u16 {
    match (head.method.as_str(), head.path.as_str()) {
        ("POST", "/v1/score") => score(stream, shared, body),
        ("POST", "/v1/ingest") => ingest(stream, shared, body),
        ("GET", "/healthz") => {
            let resp = HealthResponse {
                status: if shared.batcher.is_draining() { "draining" } else { "ok" }.to_string(),
                model_version: shared.slot.version(),
                queue_depth: shared.batcher.queue_depth() as u64,
                degraded: shared.drift.as_ref().is_some_and(|m| m.degraded()),
                drift: shared
                    .drift
                    .as_ref()
                    .map(|m| m.verdict().as_str().to_string())
                    .unwrap_or_else(|| "off".to_string()),
            };
            let body = serde_json::to_string(&resp).expect("health serializes");
            write_response(stream, 200, "application/json", "", &body);
            200
        }
        ("GET", "/metrics") => {
            let text = cats_obs::global().to_prometheus();
            write_response(stream, 200, "text/plain; version=0.0.4", "", &text);
            200
        }
        ("GET", "/metrics.json") => {
            let wire: WireSnapshot = (&cats_obs::global().snapshot()).into();
            let body = serde_json::to_string(&wire).expect("snapshot serializes");
            write_response(stream, 200, "application/json", "", &body);
            200
        }
        ("POST", "/admin/load") => admin_load(stream, shared, body),
        ("POST" | "GET", _) => {
            write_json_error(stream, 404, "", &format!("no such route: {}", head.path));
            404
        }
        _ => {
            write_json_error(stream, 405, "", &format!("method {} not allowed", head.method));
            405
        }
    }
}

fn score(stream: &mut TcpStream, shared: &ServerShared, body: &str) -> u16 {
    let (items, pin) = match crate::wire::parse_score_request(body) {
        Ok(parsed) => parsed,
        Err(e) => {
            write_json_error(stream, 400, "", &e);
            return 400;
        }
    };
    let rx = match shared.batcher.submit_pinned(items, pin) {
        Ok(rx) => rx,
        Err(RejectReason::QueueFull) => {
            // Honest backpressure: promise a retry window derived from
            // how deep the queue is and how fast it has been draining,
            // not a hardcoded guess.
            let retry_after = format!("Retry-After: {}\r\n", shared.batcher.retry_after_secs());
            write_json_error(stream, 429, &retry_after, "queue full, retry later");
            return 429;
        }
        Err(RejectReason::Draining) => {
            write_json_error(stream, 503, "", "server is draining");
            return 503;
        }
    };
    match rx.recv_timeout(shared.config.request_timeout) {
        Ok(BatchReply::Scored(scored)) => {
            let resp =
                ScoreResponse { model_version: scored.model_version, verdicts: scored.verdicts };
            let body = serde_json::to_string(&resp).expect("score response serializes");
            write_response(stream, 200, "application/json", "", &body);
            200
        }
        Ok(BatchReply::PinUnavailable { pinned, current }) => {
            write_json_error(
                stream,
                409,
                "",
                &format!("model version {pinned} is gone (serving v{current})"),
            );
            409
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            write_json_error(stream, 504, "", "scoring timed out");
            504
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The batch worker panicked after popping this request and
            // dropped the reply sender. The supervisor respawns the
            // worker; this client gets an immediate, explicit 500 — an
            // *answered* failure, never a dropped or stalled socket.
            cats_obs::counter("cats.serve.http.internal_errors").inc();
            write_json_error(stream, 500, "", "internal scoring error");
            500
        }
    }
}

/// `POST /v1/ingest`: feed comment events into the sliding-window
/// engine. Ingest itself is O(1) per event under a short lock; when the
/// batch pushes the virtual clock over a flush boundary, every item
/// touched since the last flush is re-scored through the *same
/// micro-batcher* as `/v1/score` — same coalescing with concurrent
/// score traffic, same 429/503 backpressure, same model versioning —
/// and each content score is fused with the item's velocity risk
/// ([`cats_core::fusion`]). Between flush boundaries the response
/// carries counts only (`verdicts: []`).
///
/// A rejected flush (429/503/504) loses that interval's dirty set; the
/// affected items are simply re-scored at the next flush that touches
/// them — incremental verdicts are a stream, not a ledger.
fn ingest(stream: &mut TcpStream, shared: &ServerShared, body: &str) -> u16 {
    let events = match crate::wire::parse_ingest_request(body) {
        Ok(events) => events,
        Err(e) => {
            write_json_error(stream, 400, "", &e);
            return 400;
        }
    };

    // Window updates under the lock; scoring strictly outside it.
    let (accepted, late_dropped, watermark_ms, slices, fusion_weight) = {
        let mut engine = cats_obs::lock_recover(&shared.stream, "cats.serve.http.stream");
        let late_before = engine.late_dropped();
        for ev in &events {
            let _ = engine.ingest(&CommentEvent {
                at_ms: ev.at_ms,
                item_id: ev.item_id,
                user_id: ev.user_id,
                sales_volume: ev.sales_volume,
                text: ev.text.clone(),
            });
        }
        let late = engine.late_dropped() - late_before;
        let slices = if engine.flush_due() { engine.drain_window_slices() } else { Vec::new() };
        (
            events.len() as u64 - late,
            late,
            engine.watermark_ms(),
            slices,
            engine.config().fusion_weight,
        )
    };

    if slices.is_empty() {
        let resp = IngestResponse {
            model_version: shared.slot.version(),
            accepted,
            late_dropped,
            watermark_ms,
            verdicts: Vec::new(),
        };
        let body = serde_json::to_string(&resp).expect("ingest response serializes");
        write_response(stream, 200, "application/json", "", &body);
        return 200;
    }

    let items: Vec<ScoreItem> = slices
        .iter()
        .map(|s| ScoreItem {
            item_id: s.item_id,
            sales_volume: s.sales_volume,
            comments: s.comments.texts.clone(),
        })
        .collect();
    let rx = match shared.batcher.submit(items) {
        Ok(rx) => rx,
        Err(RejectReason::QueueFull) => {
            let retry_after = format!("Retry-After: {}\r\n", shared.batcher.retry_after_secs());
            write_json_error(stream, 429, &retry_after, "queue full, retry later");
            return 429;
        }
        Err(RejectReason::Draining) => {
            write_json_error(stream, 503, "", "server is draining");
            return 503;
        }
    };
    match rx.recv_timeout(shared.config.request_timeout) {
        Ok(BatchReply::Scored(scored)) => {
            // Read the threshold from the model that actually scored
            // the batch (fall back to current across a concurrent swap).
            let model = shared
                .slot
                .load_version(scored.model_version)
                .unwrap_or_else(|| shared.slot.load());
            let threshold = model.pipeline.detector().threshold();
            let verdicts = slices
                .iter()
                .zip(&scored.verdicts)
                .map(|(s, v)| {
                    let risk = cats_core::velocity_risk(&s.velocity);
                    let fused = cats_core::fuse_scores(v.score, risk, fusion_weight);
                    cats_core::StreamVerdict {
                        item_id: s.item_id,
                        at_ms: watermark_ms,
                        window_comments: s.comments.len() as u32,
                        cats_score: v.score,
                        velocity_risk: risk,
                        fused_score: fused,
                        is_fraud: fused >= threshold,
                    }
                })
                .collect();
            cats_obs::counter("cats.serve.ingest.flushes").inc();
            let resp = IngestResponse {
                model_version: scored.model_version,
                accepted,
                late_dropped,
                watermark_ms,
                verdicts,
            };
            let body = serde_json::to_string(&resp).expect("ingest response serializes");
            write_response(stream, 200, "application/json", "", &body);
            200
        }
        Ok(BatchReply::PinUnavailable { pinned, current }) => {
            // Unpinned submissions never get this reply; keep the arm
            // total rather than panicking a connection thread.
            write_json_error(
                stream,
                409,
                "",
                &format!("model version {pinned} is gone (serving v{current})"),
            );
            409
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            write_json_error(stream, 504, "", "scoring timed out");
            504
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            cats_obs::counter("cats.serve.http.internal_errors").inc();
            write_json_error(stream, 500, "", "internal scoring error");
            500
        }
    }
}

/// `POST /admin/load`: parse, validate and install a snapshot file as a
/// router-assigned model version. Invalid files answer 400 and leave
/// the serving model untouched — the same keep-the-old-model contract
/// as the file watcher.
fn admin_load(stream: &mut TcpStream, shared: &ServerShared, body: &str) -> u16 {
    let req: AdminLoadRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => {
            write_json_error(stream, 400, "", &format!("body: {e}"));
            return 400;
        }
    };
    match crate::model::load_pipeline_file(std::path::Path::new(&req.path)) {
        Ok(pipeline) => {
            let version = shared.slot.swap_tagged(pipeline, req.version);
            cats_obs::counter("cats.serve.admin.loads").inc();
            let body = serde_json::to_string(&AdminLoadResponse { version })
                .expect("admin response serializes");
            write_response(stream, 200, "application/json", "", &body);
            200
        }
        Err(e) => {
            cats_obs::counter("cats.serve.admin.load_errors").inc();
            write_json_error(stream, 400, "", &format!("load: {e}"));
            400
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_parsing_extracts_method_path_and_length() {
        let head =
            parse_head("POST /v1/score HTTP/1.1\r\nHost: x\r\ncontent-LENGTH: 42\r\nAccept: */*")
                .unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/v1/score");
        assert_eq!(head.content_length, 42);
        let bare = parse_head("GET /healthz HTTP/1.1").unwrap();
        assert_eq!(bare.content_length, 0, "missing content-length means empty body");
        assert!(parse_head("").is_err());
        assert!(parse_head("GET").is_err(), "path is required");
        assert!(
            parse_head("POST / HTTP/1.1\r\nContent-Length: nope").is_err(),
            "unparseable length is a 400, not a silent zero"
        );
    }

    #[test]
    fn head_terminator_is_found_across_chunk_boundaries() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn status_lines_cover_the_codes_we_emit() {
        for code in [200, 400, 404, 405, 409, 413, 429, 431, 502, 503, 504] {
            assert!(!status_text(code).is_empty());
        }
        assert_eq!(status_text(409), "Conflict");
        assert_eq!(status_text(500), "Internal Server Error");
        assert_eq!(status_text(599), "Internal Server Error");
    }
}
