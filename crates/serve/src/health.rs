//! Shard health tracking: the state machine behind the router's
//! ejection / re-admission decisions.
//!
//! The policy is deliberately classical (consecutive-failure ejection,
//! consecutive-success re-admission — the same shape as envoy-style
//! outlier detection): a shard is [`ShardState::Live`] until
//! [`HealthConfig::eject_after`] *consecutive* probe or request
//! failures, at which point it is ejected and receives no routed
//! traffic; while ejected, the prober keeps probing, and
//! [`HealthConfig::readmit_after`] consecutive successes make it
//! eligible for re-admission. Re-admission is completed by the router
//! (not here) because the shard must first be synced to the cluster's
//! current model version — a restarted shard comes back at v1 and must
//! not serve pinned-v5 traffic.
//!
//! The state machine itself is pure (no clock, no sockets): the router
//! feeds it probe results and request outcomes, and unit tests drive
//! every transition deterministically.

/// Health-policy knobs.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive failures that eject a live shard.
    pub eject_after: u32,
    /// Consecutive probe successes an ejected shard needs before the
    /// router re-admits it.
    pub readmit_after: u32,
    /// Wall-clock pause between probe rounds.
    pub probe_interval: std::time::Duration,
    /// Per-probe connect/read budget.
    pub probe_timeout: std::time::Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            eject_after: 3,
            readmit_after: 2,
            probe_interval: std::time::Duration::from_millis(100),
            probe_timeout: std::time::Duration::from_millis(500),
        }
    }
}

/// Routing-visible state of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Receiving routed traffic.
    Live,
    /// Out of the rotation; probed but not routed to.
    Ejected,
}

impl ShardState {
    /// Wire spelling used in the router's `/healthz`.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Live => "live",
            Self::Ejected => "ejected",
        }
    }
}

/// A state transition the caller must act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// The shard just crossed the failure threshold: pull it from the
    /// ring now.
    Ejected,
    /// The shard has proven itself again: sync its model version, then
    /// call [`ShardHealth::mark_readmitted`].
    ReadyToReadmit,
}

/// Per-shard health accounting. Pure: callers supply the observations.
#[derive(Debug)]
pub struct ShardHealth {
    state: ShardState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    config_eject_after: u32,
    config_readmit_after: u32,
}

impl ShardHealth {
    /// A live shard with zeroed streaks.
    pub fn new(config: &HealthConfig) -> Self {
        Self {
            state: ShardState::Live,
            consecutive_failures: 0,
            consecutive_successes: 0,
            config_eject_after: config.eject_after.max(1),
            config_readmit_after: config.readmit_after.max(1),
        }
    }

    pub fn state(&self) -> ShardState {
        self.state
    }

    /// Records a failed probe or routed request. Returns
    /// [`HealthEvent::Ejected`] exactly once, on the transition.
    pub fn record_failure(&mut self) -> Option<HealthEvent> {
        self.consecutive_successes = 0;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.state == ShardState::Live && self.consecutive_failures >= self.config_eject_after {
            self.state = ShardState::Ejected;
            return Some(HealthEvent::Ejected);
        }
        None
    }

    /// Records a successful probe or routed request. For an ejected
    /// shard, returns [`HealthEvent::ReadyToReadmit`] on every success
    /// past the threshold until the router completes re-admission via
    /// [`ShardHealth::mark_readmitted`] (version sync can fail, so the
    /// offer must repeat).
    pub fn record_success(&mut self) -> Option<HealthEvent> {
        self.consecutive_failures = 0;
        self.consecutive_successes = self.consecutive_successes.saturating_add(1);
        if self.state == ShardState::Ejected
            && self.consecutive_successes >= self.config_readmit_after
        {
            return Some(HealthEvent::ReadyToReadmit);
        }
        None
    }

    /// Completes re-admission after the router has synced the shard to
    /// the cluster model version.
    pub fn mark_readmitted(&mut self) {
        self.state = ShardState::Live;
        self.consecutive_failures = 0;
        self.consecutive_successes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(eject: u32, readmit: u32) -> HealthConfig {
        HealthConfig { eject_after: eject, readmit_after: readmit, ..HealthConfig::default() }
    }

    #[test]
    fn ejects_only_after_consecutive_failures() {
        let mut h = ShardHealth::new(&config(3, 2));
        assert_eq!(h.record_failure(), None);
        assert_eq!(h.record_failure(), None);
        // An intervening success resets the streak.
        assert_eq!(h.record_success(), None);
        assert_eq!(h.record_failure(), None);
        assert_eq!(h.record_failure(), None);
        assert_eq!(h.record_failure(), Some(HealthEvent::Ejected), "third consecutive");
        assert_eq!(h.state(), ShardState::Ejected);
        // Already ejected: further failures are not a new event.
        assert_eq!(h.record_failure(), None);
    }

    #[test]
    fn readmission_offer_repeats_until_marked() {
        let mut h = ShardHealth::new(&config(1, 2));
        assert_eq!(h.record_failure(), Some(HealthEvent::Ejected));
        assert_eq!(h.record_success(), None, "one success is not enough");
        assert_eq!(h.record_success(), Some(HealthEvent::ReadyToReadmit));
        // Version sync failed, say — the offer must come again.
        assert_eq!(h.record_success(), Some(HealthEvent::ReadyToReadmit));
        h.mark_readmitted();
        assert_eq!(h.state(), ShardState::Live);
        assert_eq!(h.record_success(), None, "live shards emit no readmit offers");
    }

    #[test]
    fn failure_mid_probation_restarts_the_probation() {
        let mut h = ShardHealth::new(&config(1, 3));
        h.record_failure();
        assert_eq!(h.state(), ShardState::Ejected);
        h.record_success();
        h.record_success();
        assert_eq!(h.record_failure(), None, "already ejected");
        assert_eq!(h.record_success(), None);
        assert_eq!(h.record_success(), None);
        assert_eq!(h.record_success(), Some(HealthEvent::ReadyToReadmit), "streak restarted");
    }

    #[test]
    fn zero_thresholds_are_clamped_sane() {
        let mut h = ShardHealth::new(&config(0, 0));
        assert_eq!(h.record_failure(), Some(HealthEvent::Ejected), "0 clamps to 1");
        assert_eq!(h.record_success(), Some(HealthEvent::ReadyToReadmit));
    }

    #[test]
    fn state_spellings_match_the_wire() {
        assert_eq!(ShardState::Live.as_str(), "live");
        assert_eq!(ShardState::Ejected.as_str(), "ejected");
    }
}
