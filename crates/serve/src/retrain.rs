//! Closing the drift loop: label lag and guarded retraining.
//!
//! A drift monitor that only *reports* decay leaves the recovery to a
//! human. This module closes the loop (DESIGN.md §15):
//!
//! * [`LabelLagBuffer`] models the operational reality that ground truth
//!   arrives late — a manual review queue, a chargeback window, a
//!   platform audit all label an item `lag` virtual ticks after it was
//!   scored. Retraining can only ever use *matured* labels; the examples
//!   still inside the lag window are invisible.
//! * [`RetrainController`] turns a `Critical` drift verdict into a
//!   retrain over the matured window, then applies a **promotion
//!   guard**: the candidate is validated on a held-out slice of the
//!   matured labels (never on its own training rows) against the
//!   incumbent, round-tripped through the exact snapshot wire format
//!   the serving path loads, and promoted only if it is not worse than
//!   the incumbent by more than [`RetrainConfig::f1_tolerance`]. A
//!   failed or regressing candidate leaves the serving model untouched
//!   — drift recovery must never make the fleet worse than doing
//!   nothing.
//!
//! Promotion itself rides the existing hot-swap machinery: with
//! [`RetrainConfig::snapshot_path`] set, the controller writes the
//! validated snapshot as a checksummed atomic file and the
//! [`crate::ModelWatcher`] (or `/admin/load`) performs the swap — the
//! same zero-dropped-requests path every other deploy takes. Without a
//! path, the controller swaps the in-process [`ModelSlot`] directly.

use crate::model::ModelSlot;
use cats_core::{CatsPipeline, ItemComments, PipelineSnapshot};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;

/// One item whose ground-truth label has (eventually) arrived.
#[derive(Debug, Clone)]
pub struct LaggedExample {
    /// The item's comments as scored.
    pub comments: ItemComments,
    /// Public sales volume at scoring time (stage-1 filter input).
    pub sales_volume: u64,
    /// Ground truth: 1 = fraud, 0 = organic.
    pub label: u8,
}

/// Ground-truth labels delayed by a fixed number of virtual ticks.
///
/// `push` records an example at its scoring tick; `advance` moves the
/// virtual clock and matures every example whose label has now arrived
/// (`scored_tick + lag <= now`). The matured window is bounded: beyond
/// `capacity` examples the oldest are dropped, so the retrain window
/// tracks the recent — drifted — distribution instead of averaging over
/// every epoch ever seen.
pub struct LabelLagBuffer {
    lag: u64,
    capacity: usize,
    pending: VecDeque<(u64, LaggedExample)>,
    matured: Vec<LaggedExample>,
}

impl LabelLagBuffer {
    /// A buffer whose labels arrive `lag` ticks late, keeping at most
    /// `capacity` matured examples.
    pub fn new(lag: u64, capacity: usize) -> Self {
        Self { lag, capacity: capacity.max(1), pending: VecDeque::new(), matured: Vec::new() }
    }

    /// Records an example scored at `tick`; its label stays invisible
    /// until the clock passes `tick + lag`.
    pub fn push(&mut self, tick: u64, example: LaggedExample) {
        self.pending.push_back((tick, example));
    }

    /// Advances the virtual clock to `now`, maturing every example whose
    /// label has arrived. Returns how many matured in this call.
    pub fn advance(&mut self, now: u64) -> usize {
        let mut moved = 0usize;
        while let Some((tick, _)) = self.pending.front() {
            if tick.saturating_add(self.lag) > now {
                break;
            }
            let (_, ex) = self.pending.pop_front().expect("front exists");
            self.matured.push(ex);
            moved += 1;
        }
        if self.matured.len() > self.capacity {
            let excess = self.matured.len() - self.capacity;
            self.matured.drain(..excess);
        }
        cats_obs::gauge("cats.serve.retrain.labeled_window").set(self.matured.len() as f64);
        moved
    }

    /// The matured (labeled) window, oldest first.
    pub fn matured(&self) -> &[LaggedExample] {
        &self.matured
    }

    /// Examples still waiting for their label.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The configured label delay in ticks.
    pub fn lag(&self) -> u64 {
        self.lag
    }
}

/// Tuning knobs for the retrain controller.
#[derive(Debug, Clone)]
pub struct RetrainConfig {
    /// Minimum matured labels before a retrain is attempted; below this
    /// a `Critical` verdict waits for more ground truth.
    pub min_labeled: usize,
    /// Every n-th matured example goes to the holdout slice (the rest
    /// train). Clamped to ≥ 2 so both slices are non-empty.
    pub holdout_every: usize,
    /// How much worse (absolute holdout F1) a candidate may be than the
    /// incumbent and still promote. Zero means strictly-no-worse.
    pub f1_tolerance: f64,
    /// Ticks after a retrain attempt (promoted or not) before the next
    /// may fire, so a persistently-Critical monitor cannot retrain in a
    /// tight loop faster than labels mature.
    pub cooldown_ticks: u64,
    /// When set, promotion writes the validated snapshot here as a
    /// checksummed atomic file for the [`crate::ModelWatcher`] /
    /// `/admin/load` machinery to swap in; when `None`, the controller
    /// swaps the in-process slot directly.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        Self {
            min_labeled: 64,
            holdout_every: 5,
            f1_tolerance: 0.02,
            cooldown_ticks: 100,
            snapshot_path: None,
        }
    }
}

/// What one [`RetrainController::maybe_retrain`] call did.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrainOutcome {
    /// Nothing ran: drift not critical, cooling down, or too few labels.
    Idle,
    /// The candidate passed the promotion guard. `version` is the new
    /// slot version for direct swaps, `None` when promotion went through
    /// the snapshot file (the watcher assigns the version when it picks
    /// the file up).
    Promoted { version: Option<u64>, candidate_f1: f64, incumbent_f1: f64 },
    /// The candidate validated worse than the incumbent and was dropped;
    /// the serving model is untouched.
    Rejected { candidate_f1: f64, incumbent_f1: f64 },
    /// The trainer errored or produced an unservable snapshot; the
    /// serving model is untouched.
    Failed { reason: String },
}

/// Drives the drift → retrain → validate → promote loop against one
/// [`ModelSlot`]. The controller owns no thread: callers (the serving
/// shell, the drift bench) invoke [`RetrainController::maybe_retrain`]
/// on their own cadence with the current drift verdict.
pub struct RetrainController {
    slot: Arc<ModelSlot>,
    config: RetrainConfig,
    last_attempt: Option<u64>,
}

impl RetrainController {
    /// A controller promoting into `slot` under `config`.
    pub fn new(slot: Arc<ModelSlot>, config: RetrainConfig) -> Self {
        Self { slot, config, last_attempt: None }
    }

    /// The active configuration.
    pub fn config(&self) -> &RetrainConfig {
        &self.config
    }

    /// Runs one control step at virtual tick `tick`. `critical` is the
    /// drift monitor's verdict (`DriftVerdict::Critical`); anything less
    /// is a no-op. `trainer` builds a candidate snapshot from the
    /// training slice of the matured window — typically
    /// `CatsPipeline::train_resumable` over a checkpoint store, so a
    /// crash mid-retrain resumes instead of restarting.
    pub fn maybe_retrain(
        &mut self,
        tick: u64,
        critical: bool,
        buffer: &LabelLagBuffer,
        trainer: &mut dyn FnMut(&[LaggedExample]) -> Result<PipelineSnapshot, String>,
    ) -> RetrainOutcome {
        if !critical {
            return RetrainOutcome::Idle;
        }
        if let Some(last) = self.last_attempt {
            if tick.saturating_sub(last) < self.config.cooldown_ticks {
                return RetrainOutcome::Idle;
            }
        }
        let matured = buffer.matured();
        if matured.len() < self.config.min_labeled.max(2) {
            cats_obs::counter("cats.serve.retrain.waiting_labels").inc();
            return RetrainOutcome::Idle;
        }
        self.last_attempt = Some(tick);
        cats_obs::counter("cats.serve.retrain.triggered").inc();

        // Split matured labels: every n-th example is held out for the
        // promotion guard, the rest train the candidate. The candidate
        // is never judged on its own training rows.
        let every = self.config.holdout_every.max(2);
        let mut train = Vec::new();
        let mut holdout = Vec::new();
        for (i, ex) in matured.iter().enumerate() {
            if i % every == 0 {
                holdout.push(ex.clone());
            } else {
                train.push(ex.clone());
            }
        }

        let snapshot = match trainer(&train) {
            Ok(s) => s,
            Err(reason) => {
                cats_obs::counter("cats.serve.retrain.failed").inc();
                return RetrainOutcome::Failed { reason };
            }
        };
        // Validate the exact artifact the serving path would load: the
        // snapshot round-trips through its binary wire format before any
        // holdout example is scored. A snapshot that cannot survive its
        // own encoding must never be promoted.
        let candidate = match snapshot
            .to_io2_bytes()
            .map_err(|e| e.to_string())
            .and_then(|b| PipelineSnapshot::from_bytes(&b).map_err(|e| e.to_string()))
        {
            Ok(reparsed) => CatsPipeline::restore(reparsed),
            Err(reason) => {
                cats_obs::counter("cats.serve.retrain.failed").inc();
                cats_obs::counter("cats.serve.model.swap_rejected").inc();
                return RetrainOutcome::Failed {
                    reason: format!("candidate snapshot does not round-trip: {reason}"),
                };
            }
        };

        let incumbent = self.slot.load();
        let candidate_f1 = holdout_f1(&candidate, &holdout);
        let incumbent_f1 = holdout_f1(&incumbent.pipeline, &holdout);
        cats_obs::gauge("cats.serve.retrain.candidate_f1").set(candidate_f1);
        cats_obs::gauge("cats.serve.retrain.incumbent_f1").set(incumbent_f1);
        if candidate_f1 + self.config.f1_tolerance < incumbent_f1 {
            // Guarded rollback: the retrain produced something worse
            // than the decayed incumbent (poisoned labels, a degenerate
            // window). Keep serving the incumbent.
            cats_obs::counter("cats.serve.retrain.rejected").inc();
            cats_obs::counter("cats.serve.model.swap_rejected").inc();
            return RetrainOutcome::Rejected { candidate_f1, incumbent_f1 };
        }

        let version = match &self.config.snapshot_path {
            Some(path) => {
                let bytes = match snapshot.to_io2_bytes() {
                    Ok(b) => b,
                    Err(e) => {
                        cats_obs::counter("cats.serve.retrain.failed").inc();
                        return RetrainOutcome::Failed { reason: e.to_string() };
                    }
                };
                if let Err(e) = cats_io::write_checksummed(path, &bytes) {
                    cats_obs::counter("cats.serve.retrain.failed").inc();
                    return RetrainOutcome::Failed { reason: e.to_string() };
                }
                None
            }
            None => Some(self.slot.swap(candidate)),
        };
        cats_obs::counter("cats.serve.retrain.promoted").inc();
        RetrainOutcome::Promoted { version, candidate_f1, incumbent_f1 }
    }
}

/// F1 of `pipeline`'s verdicts against the holdout's ground truth
/// (0 when the pipeline finds no true positive at all).
fn holdout_f1(pipeline: &CatsPipeline, holdout: &[LaggedExample]) -> f64 {
    let comments: Vec<ItemComments> = holdout.iter().map(|ex| ex.comments.clone()).collect();
    let sales: Vec<u64> = holdout.iter().map(|ex| ex.sales_volume).collect();
    let reports = pipeline.detect(&comments, &sales);
    let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
    for (rep, ex) in reports.iter().zip(holdout) {
        match (rep.is_fraud, ex.label == 1) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let denom = 2 * tp + fp + fn_;
    if denom == 0 {
        return 0.0;
    }
    2.0 * tp as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use cats_ml::Classifier as _;

    fn example(i: usize, fraud: bool) -> LaggedExample {
        LaggedExample {
            comments: if fraud { testutil::fraud_item(i) } else { testutil::normal_item(i) },
            sales_volume: 50,
            label: u8::from(fraud),
        }
    }

    /// A matured buffer holding `n` fraud + `n` organic labeled items.
    fn labeled_buffer(n: usize) -> LabelLagBuffer {
        let mut buf = LabelLagBuffer::new(3, 4 * n);
        for i in 0..n {
            buf.push(i as u64, example(i, true));
            buf.push(i as u64, example(i, false));
        }
        buf.advance(n as u64 + 3);
        assert_eq!(buf.matured().len(), 2 * n);
        buf
    }

    /// A snapshot whose GBT was fit on the given labels (flip them for a
    /// poisoned candidate).
    fn snapshot_with_labels(pipeline: &cats_core::CatsPipeline, flip: bool) -> PipelineSnapshot {
        let mut items = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            items.push(testutil::fraud_item(i));
            labels.push(if flip { 0u8 } else { 1u8 });
            items.push(testutil::normal_item(i));
            labels.push(if flip { 1u8 } else { 0u8 });
        }
        let rows = cats_core::features::extract_batch(&items, pipeline.analyzer(), 0);
        let mut data = cats_ml::Dataset::new(cats_core::N_FEATURES);
        for (r, &l) in rows.iter().zip(&labels) {
            data.push(r.as_slice(), l);
        }
        let mut gbt = cats_ml::gbt::GradientBoostedTrees::new(cats_ml::gbt::GbtConfig::default());
        gbt.fit(&data);
        cats_core::CatsPipeline::snapshot(
            pipeline.analyzer().clone(),
            pipeline.detector().config(),
            gbt,
        )
    }

    #[test]
    fn labels_mature_only_after_the_lag() {
        let mut buf = LabelLagBuffer::new(5, 100);
        buf.push(10, example(0, true));
        buf.push(12, example(1, false));
        assert_eq!(buf.advance(14), 0, "nothing matures inside the lag window");
        assert_eq!(buf.pending_len(), 2);
        assert_eq!(buf.advance(15), 1, "tick 10 + lag 5 matures at 15");
        assert_eq!(buf.advance(17), 1);
        assert_eq!(buf.pending_len(), 0);
        assert_eq!(buf.matured().len(), 2);
        assert_eq!(buf.matured()[0].label, 1, "matured in scoring order");
    }

    #[test]
    fn matured_window_is_bounded_dropping_oldest() {
        let mut buf = LabelLagBuffer::new(0, 4);
        for i in 0..10 {
            buf.push(i, example(i as usize, i % 2 == 0));
            buf.advance(i);
        }
        assert_eq!(buf.matured().len(), 4, "window bounded at capacity");
        // Oldest dropped: the survivors are the last four pushes (6..10).
        assert_eq!(buf.matured()[0].label, 1, "push 6 (even => fraud) survives");
    }

    #[test]
    fn idle_without_critical_drift_or_enough_labels() {
        let slot = Arc::new(ModelSlot::new(testutil::trained(0.0)));
        let mut ctl = RetrainController::new(slot, RetrainConfig::default());
        let buf = labeled_buffer(40);
        let mut trainer = |_: &[LaggedExample]| -> Result<PipelineSnapshot, String> {
            panic!("trainer must not run")
        };
        assert_eq!(ctl.maybe_retrain(1, false, &buf, &mut trainer), RetrainOutcome::Idle);
        let thin = labeled_buffer(4); // 8 matured < min_labeled 64
        assert_eq!(ctl.maybe_retrain(2, true, &thin, &mut trainer), RetrainOutcome::Idle);
    }

    #[test]
    fn promotes_a_sound_candidate_and_respects_cooldown() {
        let slot = Arc::new(ModelSlot::new(testutil::trained(0.0)));
        let snapshot = snapshot_with_labels(&slot.load().pipeline, false);
        let mut ctl = RetrainController::new(
            slot.clone(),
            RetrainConfig { min_labeled: 16, cooldown_ticks: 50, ..RetrainConfig::default() },
        );
        let buf = labeled_buffer(20);
        let mut calls = 0usize;
        // Snapshots are not Clone (they own the model); hand the single
        // prebuilt one to the single expected trainer invocation.
        let mut snapshot = Some(snapshot);
        let mut trainer = |train: &[LaggedExample]| {
            calls += 1;
            assert!(!train.is_empty());
            Ok(snapshot.take().expect("trainer runs once"))
        };
        let promoted = cats_obs::counter("cats.serve.retrain.promoted");
        let before = promoted.get();
        match ctl.maybe_retrain(100, true, &buf, &mut trainer) {
            RetrainOutcome::Promoted { version: Some(v), candidate_f1, incumbent_f1 } => {
                assert_eq!(v, 2, "direct promotion bumps the slot");
                assert!(
                    candidate_f1 + 0.02 >= incumbent_f1,
                    "guard held: {candidate_f1} vs {incumbent_f1}"
                );
            }
            other => panic!("expected promotion, got {other:?}"),
        }
        assert_eq!(slot.version(), 2);
        assert!(promoted.get() > before);
        // Still critical, but inside the cooldown: no second retrain.
        assert_eq!(ctl.maybe_retrain(120, true, &buf, &mut trainer), RetrainOutcome::Idle);
        assert_eq!(calls, 1);
    }

    #[test]
    fn rejects_a_poisoned_candidate_leaving_the_slot_untouched() {
        let slot = Arc::new(ModelSlot::new(testutil::trained(0.0)));
        let poisoned = snapshot_with_labels(&slot.load().pipeline, true);
        let mut ctl = RetrainController::new(
            slot.clone(),
            RetrainConfig { min_labeled: 16, ..RetrainConfig::default() },
        );
        let buf = labeled_buffer(20);
        let rejected = cats_obs::counter("cats.serve.retrain.rejected");
        let swap_rejected = cats_obs::counter("cats.serve.model.swap_rejected");
        let (rej_before, swap_before) = (rejected.get(), swap_rejected.get());
        let mut poisoned = Some(poisoned);
        let mut trainer = |_: &[LaggedExample]| Ok(poisoned.take().expect("trainer runs once"));
        match ctl.maybe_retrain(10, true, &buf, &mut trainer) {
            RetrainOutcome::Rejected { candidate_f1, incumbent_f1 } => {
                assert!(
                    candidate_f1 < incumbent_f1,
                    "label-flipped candidate must validate worse: {candidate_f1} vs {incumbent_f1}"
                );
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(slot.version(), 1, "rejected candidate never reaches the slot");
        assert!(rejected.get() > rej_before, "rejection is visible in the registry");
        assert!(swap_rejected.get() > swap_before, "swap_rejected counts the guard");
    }

    #[test]
    fn failed_trainer_is_reported_not_promoted() {
        let slot = Arc::new(ModelSlot::new(testutil::trained(0.0)));
        let mut ctl = RetrainController::new(
            slot.clone(),
            RetrainConfig { min_labeled: 16, cooldown_ticks: 0, ..RetrainConfig::default() },
        );
        let buf = labeled_buffer(20);
        let mut trainer = |_: &[LaggedExample]| Err("no corpus".to_string());
        match ctl.maybe_retrain(5, true, &buf, &mut trainer) {
            RetrainOutcome::Failed { reason } => assert!(reason.contains("no corpus")),
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(slot.version(), 1);
    }

    #[test]
    fn file_promotion_writes_a_watcher_loadable_snapshot() {
        let dir = std::env::temp_dir().join(format!("cats_retrain_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snapshot");
        let slot = Arc::new(ModelSlot::new(testutil::trained(0.0)));
        let snapshot = snapshot_with_labels(&slot.load().pipeline, false);
        let mut ctl = RetrainController::new(
            slot.clone(),
            RetrainConfig {
                min_labeled: 16,
                snapshot_path: Some(path.clone()),
                ..RetrainConfig::default()
            },
        );
        let buf = labeled_buffer(20);
        let mut snapshot = Some(snapshot);
        let mut trainer = |_: &[LaggedExample]| Ok(snapshot.take().expect("trainer runs once"));
        match ctl.maybe_retrain(10, true, &buf, &mut trainer) {
            RetrainOutcome::Promoted { version: None, .. } => {}
            other => panic!("expected file promotion, got {other:?}"),
        }
        assert_eq!(slot.version(), 1, "file promotion leaves the swap to the watcher");
        let loaded = crate::model::load_pipeline_file(&path)
            .expect("promoted snapshot must load through the serving path");
        assert!((0.0..=1.0).contains(&loaded.detector().threshold()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
