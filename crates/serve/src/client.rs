//! Tiny blocking HTTP client for the scoring service.
//!
//! This is the counterpart of [`crate::http`]: one request per
//! connection, `Connection: close`, read-to-EOF. It exists so
//! `cats-cli score`, the `exp_serve` load generator and the
//! integration tests all speak the wire format through one typed
//! implementation instead of three hand-rolled socket loops.

use crate::wire::{HealthResponse, ScoreItem, ScoreResponse};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// What went wrong with a client call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connection or socket failure.
    Io(String),
    /// The server answered, but not with a 2xx.
    Http {
        /// Response status code (429 and 503 are the backpressure ones).
        status: u16,
        /// Raw response body (usually a JSON `{"error": ...}`).
        body: String,
    },
    /// The server answered 2xx but the body did not parse.
    Parse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io: {e}"),
            Self::Http { status, body } => write!(f, "http {status}: {body}"),
            Self::Parse(e) => write!(f, "parse: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Blocking client for one `cats-serve` endpoint.
#[derive(Debug, Clone)]
pub struct ScoreClient {
    addr: String,
    timeout: Duration,
}

impl ScoreClient {
    /// A client for `addr` (`host:port`) with a 60 s I/O timeout.
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), timeout: Duration::from_secs(60) }
    }

    /// Overrides the per-call connect/read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// `POST /v1/score`: returns the verdicts or a typed error (429 and
    /// 503 surface as [`ClientError::Http`] with that status).
    pub fn score(&self, items: &[ScoreItem]) -> Result<ScoreResponse, ClientError> {
        let body = serde_json::to_string(items).map_err(|e| ClientError::Parse(e.to_string()))?;
        let (status, resp_body) = self.request("POST", "/v1/score", Some(&body))?;
        if status != 200 {
            return Err(ClientError::Http { status, body: resp_body });
        }
        serde_json::from_str(&resp_body).map_err(|e| ClientError::Parse(e.to_string()))
    }

    /// `GET /healthz`.
    pub fn health(&self) -> Result<HealthResponse, ClientError> {
        let (status, body) = self.request("GET", "/healthz", None)?;
        if status != 200 {
            return Err(ClientError::Http { status, body });
        }
        serde_json::from_str(&body).map_err(|e| ClientError::Parse(e.to_string()))
    }

    /// `GET /metrics`: the raw Prometheus exposition text.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let (status, body) = self.request("GET", "/metrics", None)?;
        if status != 200 {
            return Err(ClientError::Http { status, body });
        }
        Ok(body)
    }

    /// One request/response exchange; returns (status, body).
    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| ClientError::Io(format!("connect {}: {e}", self.addr)))?;
        stream.set_read_timeout(Some(self.timeout)).map_err(|e| ClientError::Io(e.to_string()))?;
        stream.set_write_timeout(Some(self.timeout)).map_err(|e| ClientError::Io(e.to_string()))?;
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        stream.write_all(request.as_bytes()).map_err(|e| ClientError::Io(e.to_string()))?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).map_err(|e| ClientError::Io(e.to_string()))?;
        parse_response(&raw)
    }
}

/// Splits a raw HTTP/1.1 response into (status, body).
fn parse_response(raw: &[u8]) -> Result<(u16, String), ClientError> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::Parse("no header terminator in response".into()))?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status_line = head.lines().next().unwrap_or_default();
    // "HTTP/1.1 200 OK" — the status code is the second token.
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Parse(format!("bad status line: {status_line}")))?;
    let body = String::from_utf8_lossy(&raw[head_end + 4..]).into_owned();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parsing_handles_status_and_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\nhi";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, "hi");
        assert!(parse_response(b"garbage with no terminator").is_err());
        assert!(parse_response(b"NOT-HTTP\r\n\r\n").is_err());
    }

    #[test]
    fn connect_failure_is_a_typed_io_error() {
        // Port 1 on localhost is essentially never listening.
        let client = ScoreClient::new("127.0.0.1:1").with_timeout(Duration::from_millis(200));
        match client.health() {
            Err(ClientError::Io(msg)) => assert!(msg.contains("connect")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
