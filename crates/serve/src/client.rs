//! Tiny blocking HTTP client for the scoring service.
//!
//! This is the counterpart of [`crate::http`]: one request per
//! connection, `Connection: close`, read-to-EOF. It exists so
//! `cats-cli score`, the `exp_serve` load generator and the
//! integration tests all speak the wire format through one typed
//! implementation instead of three hand-rolled socket loops.
//!
//! Errors are typed finely enough for a retry policy to act on them:
//! [`ClientError::TimedOut`] means the peer is *slow* (it may still
//! answer — retrying elsewhere risks duplicate work), while
//! [`ClientError::Disconnected`] means the peer *died mid-exchange*
//! (the request was definitely not answered — safe and necessary to
//! replay). The cluster router's failover path is built on exactly
//! this distinction.

use crate::wire::{
    AdminLoadRequest, AdminLoadResponse, HealthResponse, ScoreItem, ScoreRequest, ScoreResponse,
    WireSnapshot,
};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What went wrong with a client call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connection or socket failure (could not even start the exchange).
    Io(String),
    /// The peer accepted the connection but did not answer within the
    /// read timeout. The peer is slow, not necessarily dead.
    TimedOut(String),
    /// The connection dropped mid-exchange: reset, or EOF before a
    /// complete response arrived. The request was not answered.
    Disconnected(String),
    /// The server answered, but not with a 2xx.
    Http {
        /// Response status code (429 and 503 are the backpressure ones).
        status: u16,
        /// Raw response body (usually a JSON `{"error": ...}`).
        body: String,
    },
    /// The server answered 2xx but the body did not parse.
    Parse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io: {e}"),
            Self::TimedOut(e) => write!(f, "timed out: {e}"),
            Self::Disconnected(e) => write!(f, "disconnected: {e}"),
            Self::Http { status, body } => write!(f, "http {status}: {body}"),
            Self::Parse(e) => write!(f, "parse: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Maps a post-connect socket error to slow-vs-dead: a timeout kind is
/// [`ClientError::TimedOut`], anything else (reset, broken pipe, abort)
/// is [`ClientError::Disconnected`].
fn classify_io(context: &str, e: &std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            ClientError::TimedOut(format!("{context}: {e}"))
        }
        _ => ClientError::Disconnected(format!("{context}: {e}")),
    }
}

/// Blocking client for one `cats-serve` endpoint.
#[derive(Debug, Clone)]
pub struct ScoreClient {
    addr: String,
    timeout: Duration,
    connect_timeout: Option<Duration>,
}

impl ScoreClient {
    /// A client for `addr` (`host:port`) with a 60 s I/O timeout.
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), timeout: Duration::from_secs(60), connect_timeout: None }
    }

    /// Overrides the per-call read/write timeout (and the connect
    /// timeout, unless [`ScoreClient::with_connect_timeout`] set one).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Overrides the connect timeout independently of the I/O timeout —
    /// a router probing a possibly-dead shard wants a tight connect
    /// bound without capping legitimate scoring time.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// The endpoint this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `POST /v1/score`: returns the verdicts or a typed error (429 and
    /// 503 surface as [`ClientError::Http`] with that status).
    pub fn score(&self, items: &[ScoreItem]) -> Result<ScoreResponse, ClientError> {
        let body = serde_json::to_string(items).map_err(|e| ClientError::Parse(e.to_string()))?;
        self.score_body(&body)
    }

    /// [`ScoreClient::score`] pinned to one model version: the server
    /// scores with exactly that generation or answers 409.
    pub fn score_pinned(
        &self,
        items: &[ScoreItem],
        pin_version: u64,
    ) -> Result<ScoreResponse, ClientError> {
        let req = ScoreRequest { items: items.to_vec(), pin_version: Some(pin_version) };
        let body = serde_json::to_string(&req).map_err(|e| ClientError::Parse(e.to_string()))?;
        self.score_body(&body)
    }

    fn score_body(&self, body: &str) -> Result<ScoreResponse, ClientError> {
        let (status, resp_body) = self.request("POST", "/v1/score", Some(body))?;
        if status != 200 {
            return Err(ClientError::Http { status, body: resp_body });
        }
        serde_json::from_str(&resp_body).map_err(|e| ClientError::Parse(e.to_string()))
    }

    /// `GET /healthz`.
    pub fn health(&self) -> Result<HealthResponse, ClientError> {
        let (status, body) = self.request("GET", "/healthz", None)?;
        if status != 200 {
            return Err(ClientError::Http { status, body });
        }
        serde_json::from_str(&body).map_err(|e| ClientError::Parse(e.to_string()))
    }

    /// `GET /metrics`: the raw Prometheus exposition text.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let (status, body) = self.request("GET", "/metrics", None)?;
        if status != 200 {
            return Err(ClientError::Http { status, body });
        }
        Ok(body)
    }

    /// `GET /metrics.json`: the peer's full metrics snapshot, ready for
    /// [`cats_obs::Snapshot::merge`].
    pub fn metrics_snapshot(&self) -> Result<WireSnapshot, ClientError> {
        let (status, body) = self.request("GET", "/metrics.json", None)?;
        if status != 200 {
            return Err(ClientError::Http { status, body });
        }
        serde_json::from_str(&body).map_err(|e| ClientError::Parse(e.to_string()))
    }

    /// `POST /admin/load`: install a snapshot file as a tagged version.
    pub fn admin_load(&self, path: &str, version: u64) -> Result<AdminLoadResponse, ClientError> {
        let req = AdminLoadRequest { path: path.to_string(), version };
        let body = serde_json::to_string(&req).map_err(|e| ClientError::Parse(e.to_string()))?;
        let (status, resp_body) = self.request("POST", "/admin/load", Some(&body))?;
        if status != 200 {
            return Err(ClientError::Http { status, body: resp_body });
        }
        serde_json::from_str(&resp_body).map_err(|e| ClientError::Parse(e.to_string()))
    }

    /// One request/response exchange; returns (status, body).
    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let mut stream = self.connect()?;
        stream.set_read_timeout(Some(self.timeout)).map_err(|e| ClientError::Io(e.to_string()))?;
        stream.set_write_timeout(Some(self.timeout)).map_err(|e| ClientError::Io(e.to_string()))?;
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        stream.write_all(request.as_bytes()).map_err(|e| classify_io("write request", &e))?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).map_err(|e| classify_io("read response", &e))?;
        parse_response(&raw)
    }

    /// Connects with the connect timeout (explicit one, else the I/O
    /// timeout), trying every resolved address.
    fn connect(&self) -> Result<TcpStream, ClientError> {
        let timeout = self.connect_timeout.unwrap_or(self.timeout);
        let addrs = self
            .addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Io(format!("resolve {}: {e}", self.addr)))?;
        let mut last = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
        }
        Err(match last {
            Some(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                ClientError::TimedOut(format!("connect {}: {e}", self.addr))
            }
            Some(e) => ClientError::Io(format!("connect {}: {e}", self.addr)),
            None => ClientError::Io(format!("connect {}: no addresses resolved", self.addr)),
        })
    }
}

/// Splits a raw HTTP/1.1 response into (status, body), verifying the
/// body is complete against the declared `Content-Length` — a short
/// body means the peer died mid-response, which must surface as
/// [`ClientError::Disconnected`], never as a quiet truncated success.
fn parse_response(raw: &[u8]) -> Result<(u16, String), ClientError> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").ok_or_else(|| {
        ClientError::Disconnected("connection closed before the response head completed".into())
    })?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status_line = head.lines().next().unwrap_or_default();
    // "HTTP/1.1 200 OK" — the status code is the second token.
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Parse(format!("bad status line: {status_line}")))?;
    let body = String::from_utf8_lossy(&raw[head_end + 4..]).into_owned();
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let declared: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Parse(format!("bad content-length: {value}")))?;
                if body.len() < declared {
                    return Err(ClientError::Disconnected(format!(
                        "connection closed mid-body: got {} of {declared} bytes",
                        body.len()
                    )));
                }
            }
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn response_parsing_handles_status_and_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\nhi";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, "hi");
        assert!(parse_response(b"garbage with no terminator").is_err());
        assert!(parse_response(b"NOT-HTTP\r\n\r\n").is_err());
    }

    #[test]
    fn truncated_body_is_a_disconnect_not_a_short_success() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhalf";
        match parse_response(raw) {
            Err(ClientError::Disconnected(msg)) => assert!(msg.contains("mid-body"), "{msg}"),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        // A missing head terminator is the same failure, earlier.
        match parse_response(b"HTTP/1.1 200 OK\r\nContent-") {
            Err(ClientError::Disconnected(_)) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn connect_failure_is_a_typed_io_error() {
        // Port 1 on localhost is essentially never listening.
        let client = ScoreClient::new("127.0.0.1:1").with_timeout(Duration::from_millis(200));
        match client.health() {
            Err(ClientError::Io(msg)) => assert!(msg.contains("connect")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn slow_peer_times_out_dead_peer_disconnects() {
        // Slow: a listener that accepts and never answers → TimedOut.
        let slow = TcpListener::bind("127.0.0.1:0").unwrap();
        let slow_addr = slow.local_addr().unwrap().to_string();
        let slow_thread = std::thread::spawn(move || {
            let (stream, _) = slow.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
            drop(stream);
        });
        let client = ScoreClient::new(slow_addr).with_timeout(Duration::from_millis(100));
        match client.health() {
            Err(ClientError::TimedOut(_)) => {}
            other => panic!("expected TimedOut from a silent peer, got {other:?}"),
        }
        slow_thread.join().unwrap();

        // Dead: a listener that sends half a response and drops the
        // connection → Disconnected.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap().to_string();
        let dead_thread = std::thread::spawn(move || {
            let (mut stream, _) = dead.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let _ = stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort");
            // Dropping here resets/closes the socket mid-body.
        });
        let client = ScoreClient::new(dead_addr).with_timeout(Duration::from_secs(5));
        match client.health() {
            Err(ClientError::Disconnected(_)) => {}
            other => panic!("expected Disconnected from a dying peer, got {other:?}"),
        }
        dead_thread.join().unwrap();
    }

    #[test]
    fn connect_timeout_is_independent_of_io_timeout() {
        let client = ScoreClient::new("127.0.0.1:1")
            .with_timeout(Duration::from_secs(60))
            .with_connect_timeout(Duration::from_millis(50));
        // Refused immediately on loopback — just verify it stays typed.
        assert!(matches!(client.health(), Err(ClientError::Io(_))));
    }
}
