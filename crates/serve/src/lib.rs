//! # cats-serve — the online detection service
//!
//! The paper pitches CATS as a third-party service that platforms query
//! for fraud verdicts (§I); this crate is that serving layer, built on
//! `std` only — no async runtime, no HTTP framework, no new third-party
//! dependencies (DESIGN.md §9). Four pieces, layered bottom-up:
//!
//! 1. **Wire format** ([`wire`]): the JSON request/response types for
//!    `POST /v1/score` and `GET /healthz`.
//! 2. **Model slot** ([`model`]): a hand-rolled `ArcSwap` — an
//!    atomically swappable `Arc<VersionedModel>` — plus a file watcher
//!    that hot-swaps `cats-cli train` output into a live server without
//!    dropping a single in-flight request.
//! 3. **Micro-batcher** ([`batcher`]): a bounded request queue drained
//!    by batch workers that coalesce concurrent requests into
//!    size/deadline-bounded batches and score them through one
//!    [`cats_core::CatsPipeline::detect`] call (which fans out onto the
//!    `cats-par` pool). Queue overflow and drain are surfaced as typed
//!    rejections, not stalls.
//! 4. **HTTP server** ([`http`]): a minimal HTTP/1.1 listener exposing
//!    `POST /v1/score`, `POST /v1/ingest` (the `cats-stream`
//!    sliding-window lane, flushing through the same micro-batcher),
//!    `GET /healthz` and `GET /metrics` (the `cats-obs` Prometheus
//!    exporter), mapping [`RejectReason`] to 429/503 and draining
//!    gracefully on shutdown.
//!
//! A small blocking [`client`] rounds it out: it is what `cats-cli
//! score`, the `exp_serve` load generator and the integration tests
//! speak through. The [`chaos`] module supplies deterministic, seeded
//! fault injection (slow-loris clients, mid-body disconnects, torn
//! snapshot rewrites, worker panics) for the `exp_soak` bench and the
//! failure-model tests (DESIGN.md §10), plus the heavy-tail
//! [`TrafficTrace`] the cluster bench drives load with.
//!
//! On top of the single-process server sits the **cluster layer**
//! (DESIGN.md §11): [`shard`] wraps the server into spawnable shard
//! child processes, [`health`] is the pure ejection/re-admission state
//! machine, and [`router`] consistent-hashes items across the shards,
//! replays sub-requests past dead shards, aggregates `/metrics`, and
//! coordinates rolling model swaps so no request ever observes two
//! model versions.
//!
//! The serving layer also survives *adversarial drift* (DESIGN.md §15):
//! started with a [`cats_obs::DriftMonitor`], the batch workers feed it
//! every classified feature row, `/healthz` reports degraded mode once
//! the verdict escalates, and the [`retrain`] module closes the loop —
//! a [`LabelLagBuffer`] of late-arriving ground truth plus a
//! [`RetrainController`] that retrains on `Critical`, validates the
//! candidate on held-out labels, and promotes through the same hot-swap
//! machinery (or rejects it, keeping the incumbent).
//!
//! Everything is instrumented into the global `cats-obs` registry under
//! `cats.serve.*`: queue depth, batch size, request latency
//! (p50/p95/p99 via `/metrics`), rejection, swap and router
//! retry/ejection counters.

pub mod batcher;
pub mod chaos;
pub mod client;
pub mod health;
pub mod http;
pub mod model;
pub mod retrain;
pub mod router;
pub mod shard;
pub mod wire;

pub use batcher::{
    compute_retry_after, BatchConfig, BatchReply, Batcher, RejectReason, ScoredBatch,
};
pub use chaos::{ChaosPlan, ChaosRng, Fault, TrafficTrace};
pub use client::{ClientError, ScoreClient};
pub use health::{HealthConfig, HealthEvent, ShardHealth, ShardState};
pub use http::{ServeConfig, Server};
pub use model::{load_pipeline_file, ModelSlot, ModelWatcher, VersionedModel};
pub use retrain::{
    LabelLagBuffer, LaggedExample, RetrainConfig, RetrainController, RetrainOutcome,
};
pub use router::{HashRing, Router, RouterConfig};
pub use shard::{announce_ready, start_shard, ShardOpts, ShardProcess, READY_PREFIX};
pub use wire::{
    AdminLoadRequest, AdminLoadResponse, HealthResponse, IngestEvent, IngestRequest,
    IngestResponse, RouterHealthResponse, ScoreItem, ScoreRequest, ScoreResponse, ScoreVerdict,
    ShardHealthInfo, WireSnapshot,
};

#[cfg(test)]
pub(crate) mod testutil {
    //! A tiny trained pipeline (mirrors the `cats-core` pipeline tests)
    //! so serving tests exercise real scoring, not a stub. Training is
    //! the slow part, so tests that need many models train once, call
    //! [`snapshot_json`], and [`restore`] as many cheap copies as they
    //! want.

    use cats_core::{CatsPipeline, ItemComments, PipelineConfig, PipelineSnapshot};
    use cats_ml::Classifier as _;

    pub fn fraud_item(i: usize) -> ItemComments {
        ItemComments::from_texts([
            format!("hao0 hao0 zan1 ! hao0 bang2 w{i} ， hao0 hao0 zan0 hao1 hao1").as_str(),
            "hen hao0 zan2 ！ hao2 hao0 hao0 bang0 hao0",
        ])
    }

    pub fn normal_item(i: usize) -> ItemComments {
        ItemComments::from_texts([format!("shu hao0 kan w{i}").as_str(), "dongxi cha0 le dian"])
    }

    pub fn trained(threshold_shift: f64) -> CatsPipeline {
        let mut texts = Vec::new();
        for i in 0..250 {
            let v = i % 3;
            texts.push(format!("hao{v} zan{v} hao{v} bang{v} kuai du"));
            texts.push(format!("cha{v} lan{v} cha{v} huai{v} man du"));
            texts.push("he zi kuai di shou dao".to_string());
        }
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let mut training = Vec::new();
        for i in 0..30 {
            training.push(cats_core::pipeline::LabeledItem { comments: fraud_item(i), label: 1 });
            training.push(cats_core::pipeline::LabeledItem { comments: normal_item(i), label: 0 });
        }
        let mut pipeline = CatsPipeline::train(
            &refs,
            &["hao0".to_string()],
            &["cha0".to_string()],
            &["hao0 zan0 bang0 hao1", "zan1 hao2 bang1"],
            &["cha0 lan0 huai0", "lan1 cha2 huai2"],
            &training,
            None,
            PipelineConfig::default(),
        );
        if threshold_shift != 0.0 {
            let t = (0.5 + threshold_shift).clamp(0.0, 1.0);
            pipeline.detector_mut().set_threshold(t);
        }
        pipeline
    }

    /// Serializes a pipeline-equivalent snapshot: a concrete GBT
    /// retrained on the standard training set (deterministic, so it
    /// scores identically to `pipeline`'s own classifier).
    pub fn snapshot_json(pipeline: &CatsPipeline) -> String {
        let mut items = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            items.push(fraud_item(i));
            labels.push(1u8);
            items.push(normal_item(i));
            labels.push(0u8);
        }
        let rows = cats_core::features::extract_batch(&items, pipeline.analyzer(), 0);
        let mut data = cats_ml::Dataset::new(cats_core::N_FEATURES);
        for (r, &l) in rows.iter().zip(&labels) {
            data.push(r.as_slice(), l);
        }
        let mut gbt = cats_ml::gbt::GradientBoostedTrees::new(cats_ml::gbt::GbtConfig::default());
        gbt.fit(&data);
        CatsPipeline::snapshot(pipeline.analyzer().clone(), pipeline.detector().config(), gbt)
            .to_json()
            .expect("snapshot serializes")
    }

    /// Cheap model copy: restore a snapshot and shift its threshold.
    pub fn restore(json: &str, threshold_shift: f64) -> CatsPipeline {
        let snap = PipelineSnapshot::from_json(json).expect("snapshot parses");
        let mut pipeline = CatsPipeline::restore(snap);
        if threshold_shift != 0.0 {
            let t = (0.5 + threshold_shift).clamp(0.0, 1.0);
            pipeline.detector_mut().set_threshold(t);
        }
        pipeline
    }
}
