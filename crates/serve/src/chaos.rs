//! Deterministic chaos injection for the serving stack (DESIGN.md §10).
//!
//! Robustness claims are only as good as the faults they were tested
//! against, so this module makes fault injection a first-class,
//! *seeded* capability: a [`ChaosPlan`] plus a seed reproduces the
//! exact same fault sequence on every run, which is what lets the
//! `exp_soak` bench assert hard invariants (zero lost responses, zero
//! torn snapshots swapped in, bounded respawns) instead of "it usually
//! survives". Four fault families, matching the failure model:
//!
//! * **Slow-loris clients** ([`send_slow_loris`]) — dribble a partial
//!   request head, then vanish. Bounded by the per-connection read
//!   timeout; must never occupy a batch worker.
//! * **Mid-body disconnects** ([`send_mid_body_disconnect`]) — a valid
//!   head, half a body, then a hang-up. Answered 400, never stalled.
//! * **Torn snapshot rewrites** ([`torn_rewrite`]) — a non-atomic
//!   partial overwrite of the model file, as a crashed writer would
//!   leave it. The watcher's checksum must reject it and keep serving.
//! * **Scoring-worker panics** ([`crate::Batcher::inject_worker_panic`])
//!   — supervised respawn; in-flight requests answer 500.
//!
//! The RNG is a hand-rolled SplitMix64 so the crate stays `std`-only;
//! chaos reproducibility must not depend on an external RNG crate's
//! stream stability.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Duration;

/// Deterministic SplitMix64 stream: same seed, same faults, every run.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `0..n`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// One injected fault, drawn from a [`ChaosPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Dribbled partial request head, then silence.
    SlowLoris,
    /// Valid head, half a body, hang-up.
    MidBodyDisconnect,
    /// Non-atomic partial overwrite of the snapshot file.
    TornRewrite,
    /// Injected batch-worker panic (supervised respawn).
    WorkerPanic,
}

/// Per-tick fault mix for a soak run. Probabilities are independent of
/// wall clock: the fault sequence is a pure function of the seed and
/// the number of [`ChaosPlan::draw`] calls.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed for the fault stream (see [`ChaosPlan::rng`]).
    pub seed: u64,
    /// Probability a tick fires a slow-loris client.
    pub slow_loris: f64,
    /// Probability a tick fires a mid-body disconnect.
    pub mid_body_disconnect: f64,
    /// Probability a tick tears the snapshot file mid-rewrite.
    pub torn_rewrite: f64,
    /// Probability a tick injects a scoring-worker panic.
    pub worker_panic: f64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self {
            seed: 42,
            slow_loris: 0.05,
            mid_body_disconnect: 0.05,
            torn_rewrite: 0.03,
            worker_panic: 0.02,
        }
    }
}

impl ChaosPlan {
    /// The fault stream for this plan's seed.
    pub fn rng(&self) -> ChaosRng {
        ChaosRng::new(self.seed)
    }

    /// Draws at most one fault for this tick, consuming exactly one
    /// uniform draw. Probabilities are stacked in declaration order, so
    /// the fault sequence is reproducible from the seed alone.
    pub fn draw(&self, rng: &mut ChaosRng) -> Option<Fault> {
        let x = rng.next_f64();
        let mut acc = self.slow_loris;
        if x < acc {
            return Some(Fault::SlowLoris);
        }
        acc += self.mid_body_disconnect;
        if x < acc {
            return Some(Fault::MidBodyDisconnect);
        }
        acc += self.torn_rewrite;
        if x < acc {
            return Some(Fault::TornRewrite);
        }
        acc += self.worker_panic;
        if x < acc {
            return Some(Fault::WorkerPanic);
        }
        None
    }
}

/// Slow-loris client: connects, dribbles up to `dribble_bytes` of a
/// request head one byte at a time with tiny pauses, then drops the
/// connection without ever finishing the head. The server must answer
/// 400 (closed mid-request) or reap it on its read timeout — and must
/// never hand the connection to a batch worker.
pub fn send_slow_loris(addr: SocketAddr, dribble_bytes: usize) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    let head =
        b"POST /v1/score HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 1000000\r\n";
    for b in head.iter().take(dribble_bytes) {
        stream.write_all(std::slice::from_ref(b))?;
        stream.flush()?;
        std::thread::sleep(Duration::from_millis(1));
    }
    // Drop without the terminating blank line: the server's next read
    // returns 0 and the connection is answered/reaped immediately.
    Ok(())
}

/// Mid-body disconnect: sends a fully valid head declaring a body, half
/// the body, then hangs up. The server must answer with a 400-class
/// close, not block a worker waiting for bytes that never come.
pub fn send_mid_body_disconnect(addr: SocketAddr) -> std::io::Result<()> {
    let body = br#"{"items":[{"item_id":1,"sales_volume":50,"comments":["hao0 zan0"]}]}"#;
    let head = format!(
        "POST /v1/score HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(head.as_bytes())?;
    stream.write_all(&body[..body.len() / 2])?;
    stream.flush()?;
    Ok(())
}

/// Tears a snapshot rewrite: non-atomically overwrites `path` with a
/// strict prefix of `bytes` (at least 1 byte, never the whole thing),
/// exactly as a writer crashed mid-`fs::write` would leave it. The
/// watcher's checksum/parse validation must reject the file and keep
/// the current model.
pub fn torn_rewrite(path: &Path, bytes: &[u8], rng: &mut ChaosRng) -> std::io::Result<()> {
    assert!(bytes.len() >= 2, "nothing to tear");
    let cut = 1 + rng.below(bytes.len() as u64 - 1) as usize;
    std::fs::write(path, &bytes[..cut])
}

/// Deterministic heavy-tail traffic shape for cluster benches.
///
/// Real marketplace traffic is nothing like uniform: a few hot items
/// absorb most of the scoring load (so one shard runs hot while others
/// idle — exactly the regime where naive round-robin looks fine and
/// consistent hashing has to prove itself), and volume swings on a
/// diurnal cycle. `TrafficTrace` reproduces both from a seed: item
/// draws follow a power-law over the pool (index `⌊n·u^skew⌋`, so
/// `skew=3` sends ~22 % of draws to the first 1 % of items) and
/// [`TrafficTrace::burst_factor`] modulates offered load sinusoidally
/// over a fixed tick period. Same seed, same trace — the chaos bench's
/// throughput floors stay comparable run to run.
#[derive(Debug, Clone)]
pub struct TrafficTrace {
    rng: ChaosRng,
    pool_size: usize,
    /// Power-law exponent; 1.0 = uniform, larger = hotter head.
    skew: f64,
    /// Ticks per diurnal cycle.
    burst_period: u64,
    /// Peak-to-mean swing in `[0, 1)`.
    burst_amplitude: f64,
    tick: u64,
}

impl TrafficTrace {
    /// A trace over `pool_size` items with the default shape (skew 3.0,
    /// 400-tick cycle, ±60 % swing).
    pub fn new(seed: u64, pool_size: usize) -> Self {
        Self {
            rng: ChaosRng::new(seed),
            pool_size: pool_size.max(1),
            skew: 3.0,
            burst_period: 400,
            burst_amplitude: 0.6,
            tick: 0,
        }
    }

    /// Overrides the power-law exponent (clamped to ≥ 1).
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew.max(1.0);
        self
    }

    /// Overrides the diurnal cycle shape.
    pub fn with_burst(mut self, period: u64, amplitude: f64) -> Self {
        self.burst_period = period.max(1);
        self.burst_amplitude = amplitude.clamp(0.0, 0.95);
        self
    }

    /// Draws the next item index in `0..pool_size`, heavy-tailed toward
    /// low indexes, and advances the trace one tick.
    pub fn draw_item(&mut self) -> usize {
        self.tick = self.tick.wrapping_add(1);
        let u = self.rng.next_f64();
        ((self.pool_size as f64 * u.powf(self.skew)) as usize).min(self.pool_size - 1)
    }

    /// Load multiplier for the current tick: `1 ± amplitude`, swinging
    /// over one `burst_period`. Callers scale their pacing (or batch
    /// size) by it to reproduce diurnal bursts.
    pub fn burst_factor(&self) -> f64 {
        let phase = (self.tick % self.burst_period) as f64 / self.burst_period as f64;
        1.0 + self.burst_amplitude * (phase * std::f64::consts::TAU).sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = ChaosPlan::default();
        let (mut a, mut b) = (plan.rng(), plan.rng());
        let sa: Vec<Option<Fault>> = (0..256).map(|_| plan.draw(&mut a)).collect();
        let sb: Vec<Option<Fault>> = (0..256).map(|_| plan.draw(&mut b)).collect();
        assert_eq!(sa, sb, "fault stream is a pure function of the seed");
        assert!(sa.iter().any(Option::is_some), "default mix fires some faults in 256 ticks");
        assert!(sa.iter().any(Option::is_none), "default mix leaves most ticks clean");
    }

    #[test]
    fn different_seeds_diverge() {
        let (mut a, mut b) = (ChaosRng::new(1), ChaosRng::new(2));
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn draws_stay_in_range() {
        let mut rng = ChaosRng::new(7);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f), "{f}");
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn zero_probability_plan_never_fires() {
        let plan = ChaosPlan {
            slow_loris: 0.0,
            mid_body_disconnect: 0.0,
            torn_rewrite: 0.0,
            worker_panic: 0.0,
            ..ChaosPlan::default()
        };
        let mut rng = plan.rng();
        assert!((0..512).all(|_| plan.draw(&mut rng).is_none()));
    }

    #[test]
    fn torn_rewrite_writes_a_strict_prefix() {
        let path = std::env::temp_dir().join(format!("cats_chaos_tear_{}", std::process::id()));
        let bytes = b"CATS-IO1 deadbeef 64\nsome payload that will be cut";
        let mut rng = ChaosRng::new(3);
        for _ in 0..20 {
            torn_rewrite(&path, bytes, &mut rng).unwrap();
            let torn = std::fs::read(&path).unwrap();
            assert!(!torn.is_empty() && torn.len() < bytes.len());
            assert_eq!(&bytes[..torn.len()], &torn[..], "a tear is a prefix, not noise");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn traffic_trace_is_deterministic_and_in_range() {
        let mut a = TrafficTrace::new(11, 500);
        let mut b = TrafficTrace::new(11, 500);
        let da: Vec<usize> = (0..256).map(|_| a.draw_item()).collect();
        let db: Vec<usize> = (0..256).map(|_| b.draw_item()).collect();
        assert_eq!(da, db, "trace is a pure function of the seed");
        assert!(da.iter().all(|&i| i < 500));
    }

    #[test]
    fn traffic_trace_has_a_hot_head() {
        let mut trace = TrafficTrace::new(5, 1000);
        let draws = 20_000;
        let hot = (0..draws).filter(|_| trace.draw_item() < 100).count();
        // Uniform traffic would put ~10% of draws in the first 10% of
        // the pool; the default skew concentrates far more.
        assert!(
            hot as f64 / draws as f64 > 0.35,
            "only {hot}/{draws} draws hit the hot head — trace is not heavy-tailed"
        );
    }

    #[test]
    fn burst_factor_swings_and_stays_positive() {
        let mut trace = TrafficTrace::new(1, 10).with_burst(100, 0.6);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..300 {
            trace.draw_item();
            let f = trace.burst_factor();
            assert!(f > 0.0, "{f}");
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(hi > 1.3 && lo < 0.7, "cycle should swing around 1.0: lo={lo} hi={hi}");
    }

    #[test]
    fn chaos_clients_do_not_stall_scoring() {
        // A server under slow-loris + mid-body abuse must keep
        // answering well-formed requests promptly.
        let slot = std::sync::Arc::new(crate::ModelSlot::new(crate::testutil::trained(0.0)));
        let server = crate::Server::start(
            slot,
            crate::ServeConfig { addr: "127.0.0.1:0".into(), ..crate::ServeConfig::default() },
        )
        .unwrap();
        let addr = server.addr();
        for i in 0..4 {
            if i % 2 == 0 {
                let _ = send_slow_loris(addr, 12);
            } else {
                let _ = send_mid_body_disconnect(addr);
            }
        }
        let client =
            crate::ScoreClient::new(addr.to_string()).with_timeout(Duration::from_secs(30));
        let items = vec![crate::ScoreItem {
            item_id: 9,
            sales_volume: 50,
            comments: vec!["hao0 zan0 hao1".into()],
        }];
        let resp = client.score(&items).expect("well-formed request scores despite chaos peers");
        assert_eq!(resp.verdicts.len(), 1);
        assert_eq!(resp.verdicts[0].item_id, 9);
        server.shutdown();
    }
}
