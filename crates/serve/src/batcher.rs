//! Micro-batching request queue.
//!
//! Concurrent `POST /v1/score` requests land in one bounded queue;
//! batch workers drain it, coalescing whatever is in flight into a
//! batch bounded by [`BatchConfig::max_batch_items`] items and a
//! [`BatchConfig::max_delay`] deadline anchored at the *oldest* pending
//! request, then score the whole batch through a single
//! [`cats_core::CatsPipeline::detect`] call (which fans out across the
//! `cats-par` pool). Requests are never split: every item of a request
//! is scored by the same model version, in the same batch.
//!
//! Backpressure is typed, not implicit: a full queue rejects with
//! [`RejectReason::QueueFull`] (HTTP 429 upstream) and a draining
//! batcher rejects with [`RejectReason::Draining`] (HTTP 503), so an
//! overloaded server answers fast instead of stalling the socket.
//! [`Batcher::shutdown`] flips the drain flag, lets workers finish
//! everything already queued, and joins them — accepted requests are
//! never dropped.
//!
//! Workers are *supervised* (DESIGN.md §10): each runs its loop under
//! `catch_unwind`, and a panic — a scoring bug, a poisoned lock, an
//! injected chaos fault — respawns the loop in place instead of
//! silently shrinking batch capacity. Requests popped by the panicking
//! iteration have their reply senders dropped, which the HTTP layer
//! answers as a 500: accepted work is always *answered*, never lost.

use crate::model::ModelSlot;
use crate::wire::{filter_str, ScoreItem, ScoreVerdict};
use cats_core::ItemComments;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the micro-batcher.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Dispatch a batch once it holds at least this many items. A
    /// single oversized request still dispatches alone (never split).
    pub max_batch_items: usize,
    /// How long the oldest pending request may wait for co-riders
    /// before its batch dispatches anyway.
    pub max_delay: Duration,
    /// Maximum requests waiting in the queue; beyond this, submit
    /// rejects with [`RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Batch worker threads draining the queue.
    pub workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch_items: 64,
            max_delay: Duration::from_millis(10),
            queue_capacity: 256,
            workers: 2,
        }
    }
}

/// Why a submission was rejected instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity — retry later (HTTP 429).
    QueueFull,
    /// The server is shutting down and no longer accepts work (503).
    Draining,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull => write!(f, "queue full, retry later"),
            Self::Draining => write!(f, "server is draining"),
        }
    }
}

/// The scored result of one submitted request.
#[derive(Debug, Clone)]
pub struct ScoredBatch {
    /// Version of the model that scored every verdict below.
    pub model_version: u64,
    /// One verdict per submitted item, in submission order.
    pub verdicts: Vec<ScoreVerdict>,
}

/// What a worker sends back for one submitted request.
#[derive(Debug, Clone)]
pub enum BatchReply {
    /// The request was scored (by the pinned version when one was given).
    Scored(ScoredBatch),
    /// The request pinned a model version this process no longer holds
    /// (it fell out of the two-generation slot). HTTP answers 409 and
    /// the router re-runs the whole request at the current version.
    PinUnavailable {
        /// The version the request demanded.
        pinned: u64,
        /// The version this process currently serves.
        current: u64,
    },
}

/// One queued request: its items plus the channel the worker answers on.
struct Request {
    items: Vec<ScoreItem>,
    /// Model version this request must be scored by, if pinned.
    pin: Option<u64>,
    enqueued: Instant,
    reply: mpsc::Sender<BatchReply>,
}

struct Shared {
    queue: Mutex<VecDeque<Request>>,
    /// Signalled on enqueue and on drain, so sleeping workers wake.
    notify: Condvar,
    draining: AtomicBool,
    /// Chaos hook: each pending count makes one worker iteration panic
    /// right after it pops its batch (see [`Batcher::inject_worker_panic`]).
    inject_panics: AtomicU32,
    /// Items (not requests) currently queued — the numerator of the
    /// 429 Retry-After estimate.
    queued_items: AtomicU64,
    /// EWMA of the drain rate in items/second, stored as f64 bits; 0
    /// until the first batch completes.
    drain_rate_bits: AtomicU64,
    /// Clock reading (µs) when the last batch finished scoring.
    last_drain_micros: AtomicU64,
    slot: Arc<ModelSlot>,
    config: BatchConfig,
    /// Live drift monitor, when the server runs with one. Workers feed
    /// it every classified item's extracted feature row after scoring —
    /// observation rides the batch path, off the request latency path.
    drift: Option<Arc<cats_obs::DriftMonitor>>,
}

impl Shared {
    /// Records a completed drain of `items` items, updating the EWMA
    /// drain rate (70% history / 30% newest sample).
    fn note_drain(&self, items: u64) {
        let now = cats_obs::now_micros();
        let last = self.last_drain_micros.swap(now, Ordering::Relaxed);
        let dt = now.saturating_sub(last).max(1);
        let sample = items as f64 * 1e6 / dt as f64;
        let old = f64::from_bits(self.drain_rate_bits.load(Ordering::Relaxed));
        let blended = if old > 0.0 { 0.7 * old + 0.3 * sample } else { sample };
        self.drain_rate_bits.store(blended.to_bits(), Ordering::Relaxed);
        cats_obs::gauge("cats.serve.drain.items_per_s").set(blended);
    }
}

/// Seconds an overloaded client should wait before retrying: queued
/// items over the recent drain rate, clamped to `[1, 30]`. With no
/// drain observed yet (rate 0) the answer is the pessimistic cap — an
/// idle-then-slammed server should not promise a 1-second recovery.
pub fn compute_retry_after(queued_items: u64, drain_rate_items_per_sec: f64) -> u64 {
    if drain_rate_items_per_sec <= 1e-9 || !drain_rate_items_per_sec.is_finite() {
        return 30;
    }
    ((queued_items as f64 / drain_rate_items_per_sec).ceil() as u64).clamp(1, 30)
}

/// Waits on `cv`, recovering from poison like [`cats_obs::lock_recover`]
/// (a worker that panicked while holding the queue lock must not take
/// down its siblings with it).
fn wait_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
    name: &str,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, dur) {
        Ok((g, _timeout)) => g,
        Err(poisoned) => {
            cats_obs::counter("cats.obs.lock.poison_recovered").inc();
            eprintln!("cats-obs: recovered poisoned lock {name}");
            poisoned.into_inner().0
        }
    }
}

/// The micro-batching scorer: submit requests, get per-request results.
pub struct Batcher {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Batcher {
    /// Spawns `config.workers` batch workers over the given model slot.
    pub fn new(slot: Arc<ModelSlot>, config: BatchConfig) -> Self {
        Self::new_with_drift(slot, config, None)
    }

    /// [`Batcher::new`] plus a drift monitor fed from every classified
    /// item scored by the workers (DESIGN.md §15).
    pub fn new_with_drift(
        slot: Arc<ModelSlot>,
        config: BatchConfig,
        drift: Option<Arc<cats_obs::DriftMonitor>>,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            notify: Condvar::new(),
            draining: AtomicBool::new(false),
            inject_panics: AtomicU32::new(0),
            queued_items: AtomicU64::new(0),
            drain_rate_bits: AtomicU64::new(0f64.to_bits()),
            last_drain_micros: AtomicU64::new(cats_obs::now_micros()),
            slot,
            config: config.clone(),
            drift,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cats-serve-batch-{i}"))
                    .spawn(move || supervise(&shared))
                    .expect("spawn batch worker")
            })
            .collect();
        Self { shared, workers: Mutex::new(workers) }
    }

    /// Chaos hook: makes the next `n` worker batch iterations panic
    /// after popping their requests, exercising the supervision +
    /// dropped-reply (HTTP 500) recovery path end to end.
    pub fn inject_worker_panic(&self, n: u32) {
        self.shared.inject_panics.fetch_add(n, Ordering::AcqRel);
    }

    /// Enqueues a request. On `Ok`, the receiver yields exactly one
    /// [`BatchReply`] once a worker has handled the items; on `Err`,
    /// nothing was enqueued and the caller should answer 429/503.
    pub fn submit(
        &self,
        items: Vec<ScoreItem>,
    ) -> Result<mpsc::Receiver<BatchReply>, RejectReason> {
        self.submit_pinned(items, None)
    }

    /// [`Batcher::submit`] with an optional model-version pin: the
    /// request is scored by exactly that generation, or answered with
    /// [`BatchReply::PinUnavailable`] when the process no longer holds
    /// it.
    pub fn submit_pinned(
        &self,
        items: Vec<ScoreItem>,
        pin: Option<u64>,
    ) -> Result<mpsc::Receiver<BatchReply>, RejectReason> {
        if self.shared.draining.load(Ordering::Acquire) {
            cats_obs::counter("cats.serve.reject.draining").inc();
            return Err(RejectReason::Draining);
        }
        let (reply, rx) = mpsc::channel();
        {
            let mut q = cats_obs::lock_recover(&self.shared.queue, "cats.serve.batch.queue");
            // Re-check under the lock: shutdown() flips the flag before
            // draining the queue, so nothing slips in behind it.
            if self.shared.draining.load(Ordering::Acquire) {
                cats_obs::counter("cats.serve.reject.draining").inc();
                return Err(RejectReason::Draining);
            }
            if q.len() >= self.shared.config.queue_capacity {
                cats_obs::counter("cats.serve.reject.queue_full").inc();
                return Err(RejectReason::QueueFull);
            }
            self.shared.queued_items.fetch_add(items.len() as u64, Ordering::Relaxed);
            q.push_back(Request { items, pin, enqueued: Instant::now(), reply });
            cats_obs::gauge("cats.serve.queue.depth").set(q.len() as f64);
        }
        cats_obs::counter("cats.serve.requests").inc();
        self.shared.notify.notify_one();
        Ok(rx)
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        cats_obs::lock_recover(&self.shared.queue, "cats.serve.batch.queue").len()
    }

    /// `Retry-After` seconds for a 429: current queued items over the
    /// EWMA drain rate (see [`compute_retry_after`]).
    pub fn retry_after_secs(&self) -> u64 {
        compute_retry_after(
            self.shared.queued_items.load(Ordering::Relaxed),
            f64::from_bits(self.shared.drain_rate_bits.load(Ordering::Relaxed)),
        )
    }

    /// True once [`Batcher::shutdown`] has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, score everything already queued,
    /// join the workers. Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.notify.notify_all();
        let handles =
            std::mem::take(&mut *cats_obs::lock_recover(&self.workers, "cats.serve.batch.workers"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs [`worker_loop`] under supervision: a panic anywhere in the loop
/// is caught, counted, and the loop re-entered in place, so one bad
/// batch (or an injected chaos fault) never shrinks scoring capacity.
fn supervise(shared: &Shared) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared))) {
            // Normal exit: drain finished.
            Ok(()) => return,
            Err(_) => {
                cats_obs::counter("cats.serve.batch.worker_panics").inc();
                cats_obs::counter("cats.serve.batch.worker_respawns").inc();
                eprintln!("cats-serve: batch worker panicked; respawning in place");
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    let batch_size = cats_obs::histogram("cats.serve.batch.items");
    let batch_wait = cats_obs::histogram("cats.serve.batch.wait_ms");
    let depth_gauge = cats_obs::gauge("cats.serve.queue.depth");
    loop {
        // Phase 1: wait for work (or drain + empty queue = exit).
        let mut q = cats_obs::lock_recover(&shared.queue, "cats.serve.batch.queue");
        loop {
            if !q.is_empty() {
                break;
            }
            if shared.draining.load(Ordering::Acquire) {
                return;
            }
            q = wait_recover(
                &shared.notify,
                q,
                Duration::from_millis(50),
                "cats.serve.batch.queue",
            );
        }

        // Phase 2: coalesce. The deadline is anchored at the OLDEST
        // pending request so no request waits longer than max_delay in
        // the window, however many co-riders trickle in after it.
        let deadline = q.front().expect("non-empty queue").enqueued + shared.config.max_delay;
        loop {
            let queued: usize = q.iter().map(|r| r.items.len()).sum();
            if queued >= shared.config.max_batch_items || shared.draining.load(Ordering::Acquire) {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            q = wait_recover(&shared.notify, q, deadline - now, "cats.serve.batch.queue");
            if q.is_empty() {
                // Another worker took everything while we slept.
                break;
            }
        }
        if q.is_empty() {
            continue;
        }

        // Pop whole requests until the item budget is spent. The first
        // request always ships, even if alone it exceeds the budget.
        let mut batch: Vec<Request> = Vec::new();
        let mut items_in_batch = 0usize;
        while let Some(front) = q.front() {
            if !batch.is_empty()
                && items_in_batch + front.items.len() > shared.config.max_batch_items
            {
                break;
            }
            let req = q.pop_front().expect("front exists");
            items_in_batch += req.items.len();
            batch.push(req);
        }
        depth_gauge.set(q.len() as f64);
        shared.queued_items.fetch_sub(items_in_batch as u64, Ordering::Relaxed);
        let more_waiting = !q.is_empty();
        drop(q);
        if more_waiting {
            // Leftovers (e.g. an oversized tail) belong to the next
            // worker — wake one now rather than after scoring.
            shared.notify.notify_one();
        }

        // Chaos hook: fire an injected panic now that the batch is
        // popped — its reply senders drop, clients get 500s, and the
        // supervisor respawns this loop.
        if shared
            .inject_panics
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
            .is_ok()
        {
            panic!("injected batch-worker panic (chaos)");
        }

        // Phase 3: score outside the lock. Requests are grouped by
        // their version pin — one model load per group — so every
        // *request* is still scored by exactly one coherent model even
        // when a coalesced batch mixes pins mid-rolling-swap.
        batch_size.record(items_in_batch as f64);
        if let Some(oldest) = batch.iter().map(|r| r.enqueued).min() {
            batch_wait.record(oldest.elapsed().as_secs_f64() * 1e3);
        }
        let mut groups: Vec<(Option<u64>, Vec<Request>)> = Vec::new();
        for req in batch {
            match groups.iter_mut().find(|(p, _)| *p == req.pin) {
                Some((_, g)) => g.push(req),
                None => groups.push((req.pin, vec![req])),
            }
        }
        for (pin, group) in groups {
            let model = match pin {
                None => shared.slot.load(),
                Some(v) => match shared.slot.load_version(v) {
                    Some(m) => m,
                    None => {
                        // The pinned generation is gone: answer 409 so
                        // the router re-runs at the current version
                        // rather than silently mixing versions.
                        let current = shared.slot.version();
                        cats_obs::counter("cats.serve.batch.pin_unavailable")
                            .add(group.len() as u64);
                        for req in group {
                            let _ =
                                req.reply.send(BatchReply::PinUnavailable { pinned: v, current });
                        }
                        continue;
                    }
                },
            };
            let group_items: usize = group.iter().map(|r| r.items.len()).sum();
            let comments: Vec<ItemComments> = group
                .iter()
                .flat_map(|r| r.items.iter())
                .map(|it| ItemComments::from_texts(it.comments.iter().map(String::as_str)))
                .collect();
            let sales: Vec<u64> =
                group.iter().flat_map(|r| r.items.iter()).map(|it| it.sales_volume).collect();
            let reports = {
                let _span = cats_obs::span!("cats.serve.batch.detect", { group_items });
                model.pipeline.detect(&comments, &sales)
            };
            cats_obs::counter("cats.serve.items_scored").add(group_items as u64);
            if let Some(monitor) = &shared.drift {
                for rep in &reports {
                    if let Some(f) = &rep.features {
                        monitor.observe_row(&f.0);
                    }
                }
            }

            // Slice the flat report vector back into per-request replies.
            let mut cursor = 0usize;
            for req in group {
                let n = req.items.len();
                let verdicts = reports[cursor..cursor + n]
                    .iter()
                    .zip(&req.items)
                    .map(|(rep, item)| ScoreVerdict {
                        item_id: item.item_id,
                        filter: filter_str(rep.filter).to_string(),
                        score: rep.score,
                        is_fraud: rep.is_fraud,
                    })
                    .collect();
                cursor += n;
                // A hung-up client (timed-out request) is not an error.
                let _ = req.reply.send(BatchReply::Scored(ScoredBatch {
                    model_version: model.version,
                    verdicts,
                }));
            }
        }
        shared.note_drain(items_in_batch as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    fn slot() -> Arc<ModelSlot> {
        Arc::new(ModelSlot::new(testutil::trained(0.0)))
    }

    /// Unwraps the scored arm (panics on a 409 reply).
    fn scored(reply: BatchReply) -> ScoredBatch {
        match reply {
            BatchReply::Scored(s) => s,
            other => panic!("expected a scored reply, got {other:?}"),
        }
    }

    fn req(id: u64, fraud: bool) -> ScoreItem {
        let item = if fraud {
            testutil::fraud_item(id as usize)
        } else {
            testutil::normal_item(id as usize)
        };
        ScoreItem { item_id: id, sales_volume: 50, comments: item.texts }
    }

    #[test]
    fn single_request_roundtrips_in_order() {
        let batcher = Batcher::new(slot(), BatchConfig::default());
        let rx = batcher.submit(vec![req(1, true), req(2, false), req(3, true)]).unwrap();
        let scored = scored(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        assert_eq!(scored.model_version, 1);
        let ids: Vec<u64> = scored.verdicts.iter().map(|v| v.item_id).collect();
        assert_eq!(ids, vec![1, 2, 3], "verdicts keep request order");
        for v in &scored.verdicts {
            assert!((0.0..=1.0).contains(&v.score));
        }
    }

    #[test]
    fn concurrent_requests_coalesce_but_answer_separately() {
        let batcher = Arc::new(Batcher::new(
            slot(),
            BatchConfig { max_delay: Duration::from_millis(40), ..BatchConfig::default() },
        ));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let b = batcher.clone();
                std::thread::spawn(move || {
                    let rx = b.submit(vec![req(i, i % 2 == 0)]).unwrap();
                    rx.recv_timeout(Duration::from_secs(30)).unwrap()
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let scored = scored(h.join().unwrap());
            assert_eq!(scored.verdicts.len(), 1);
            assert_eq!(scored.verdicts[0].item_id, i as u64, "each caller gets its own item back");
        }
    }

    #[test]
    fn full_queue_rejects_instead_of_stalling() {
        // One slow worker + a long coalescing delay keeps the queue
        // occupied; capacity 1 means the second un-drained submit in
        // the window must bounce.
        let batcher = Batcher::new(
            slot(),
            BatchConfig {
                max_batch_items: 1000,
                max_delay: Duration::from_secs(2),
                queue_capacity: 1,
                workers: 1,
            },
        );
        let _rx1 = batcher.submit(vec![req(1, true)]).unwrap();
        // The worker may pop rx1's request into its coalescing window
        // at any moment, so allow a few attempts: at least one of the
        // next submissions must hit the bounded-queue limit.
        let mut saw_reject = false;
        let mut receivers = Vec::new();
        for i in 0..3 {
            match batcher.submit(vec![req(10 + i, false)]) {
                Err(RejectReason::QueueFull) => {
                    saw_reject = true;
                    break;
                }
                Ok(rx) => receivers.push(rx),
                Err(other) => panic!("unexpected reject: {other:?}"),
            }
        }
        assert!(saw_reject, "bounded queue must reject when full");
        drop(batcher); // drain scores the accepted requests
        for rx in receivers {
            assert!(rx.try_recv().is_ok(), "accepted requests still get scored on drain");
        }
    }

    #[test]
    fn shutdown_drains_accepted_work_then_rejects() {
        let batcher = Batcher::new(
            slot(),
            BatchConfig { max_delay: Duration::from_millis(200), ..BatchConfig::default() },
        );
        let rx = batcher.submit(vec![req(5, true)]).unwrap();
        batcher.shutdown();
        let scored = scored(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        assert_eq!(scored.verdicts.len(), 1, "queued request scored during drain");
        assert_eq!(batcher.submit(vec![req(6, true)]).unwrap_err(), RejectReason::Draining);
        assert!(batcher.is_draining());
        batcher.shutdown(); // idempotent
    }

    #[test]
    fn empty_request_gets_an_empty_scored_batch() {
        let batcher = Batcher::new(slot(), BatchConfig::default());
        let rx = batcher.submit(Vec::new()).unwrap();
        let scored = scored(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        assert!(scored.verdicts.is_empty());
        assert_eq!(scored.model_version, 1);
    }

    #[test]
    fn injected_panic_drops_the_reply_and_the_worker_respawns() {
        let panics = cats_obs::counter("cats.serve.batch.worker_panics");
        let respawns = cats_obs::counter("cats.serve.batch.worker_respawns");
        let (panics_before, respawns_before) = (panics.get(), respawns.get());
        let batcher = Batcher::new(
            slot(),
            BatchConfig {
                workers: 1,
                max_delay: Duration::from_millis(1),
                ..BatchConfig::default()
            },
        );
        batcher.inject_worker_panic(1);
        let rx = batcher.submit(vec![req(1, true)]).unwrap();
        // The panicking iteration drops the reply sender: the caller
        // observes a disconnect (HTTP maps it to 500), never a hang.
        match rx.recv_timeout(Duration::from_secs(30)) {
            Err(mpsc::RecvTimeoutError::Disconnected) => {}
            other => panic!("expected dropped reply after injected panic, got {other:?}"),
        }
        // The reply sender drops mid-unwind, before the supervisor's
        // catch_unwind counts the panic — give it a moment to land.
        let deadline = Instant::now() + Duration::from_secs(5);
        while (panics.get() <= panics_before || respawns.get() <= respawns_before)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(panics.get() > panics_before, "supervisor counted the panic");
        assert!(respawns.get() > respawns_before, "supervisor counted the respawn");
        // The respawned worker (same thread, re-entered loop) keeps scoring.
        let rx = batcher.submit(vec![req(2, false)]).unwrap();
        let scored = scored(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        assert_eq!(scored.verdicts.len(), 1, "scoring capacity survives the panic");
        assert_eq!(scored.verdicts[0].item_id, 2);
    }

    #[test]
    fn pinned_requests_score_on_their_generation_even_mid_batch() {
        // Hold a long coalescing window so pinned-v1 and pinned-v2
        // requests land in the SAME popped batch, then verify each was
        // answered by its own version — the zero-skew invariant the
        // rolling swap depends on.
        let slot = slot();
        let json = testutil::snapshot_json(&slot.load().pipeline);
        slot.swap_tagged(testutil::restore(&json, 0.0), 2);
        let batcher = Arc::new(Batcher::new(
            slot,
            BatchConfig {
                max_batch_items: 1000,
                max_delay: Duration::from_millis(150),
                workers: 1,
                ..BatchConfig::default()
            },
        ));
        let rx1 = batcher.submit_pinned(vec![req(1, true)], Some(1)).unwrap();
        let rx2 = batcher.submit_pinned(vec![req(2, true)], Some(2)).unwrap();
        let s1 = scored(rx1.recv_timeout(Duration::from_secs(30)).unwrap());
        let s2 = scored(rx2.recv_timeout(Duration::from_secs(30)).unwrap());
        assert_eq!(s1.model_version, 1, "pinned to the previous generation");
        assert_eq!(s2.model_version, 2, "pinned to the current generation");
    }

    #[test]
    fn unavailable_pin_answers_conflict_not_wrong_version() {
        let batcher = Batcher::new(slot(), BatchConfig::default());
        let rx = batcher.submit_pinned(vec![req(1, true)], Some(99)).unwrap();
        match rx.recv_timeout(Duration::from_secs(30)).unwrap() {
            BatchReply::PinUnavailable { pinned: 99, current: 1 } => {}
            other => panic!("expected PinUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn retry_after_tracks_queue_depth_and_drain_rate() {
        // No drain observed yet: pessimistic cap.
        assert_eq!(compute_retry_after(10, 0.0), 30);
        assert_eq!(compute_retry_after(0, 0.0), 30);
        assert_eq!(compute_retry_after(5, f64::NAN), 30);
        // Fast drain: clamped to the 1s floor, even with nothing queued.
        assert_eq!(compute_retry_after(0, 100.0), 1);
        assert_eq!(compute_retry_after(50, 100.0), 1);
        // Backlog over rate, rounded up.
        assert_eq!(compute_retry_after(250, 100.0), 3);
        assert_eq!(compute_retry_after(1000, 100.0), 10);
        // Deep backlog: clamped to the 30s cap.
        assert_eq!(compute_retry_after(1_000_000, 100.0), 30);
        // A served batcher converges to a sane dynamic value.
        let batcher = Batcher::new(slot(), BatchConfig::default());
        let rx = batcher.submit(vec![req(1, true)]).unwrap();
        let _ = scored(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        let secs = batcher.retry_after_secs();
        assert!((1..=30).contains(&secs), "retry-after {secs} outside [1,30]");
    }

    #[test]
    fn drift_monitor_sees_every_classified_row() {
        let references: Vec<cats_obs::FeatureReference> = cats_core::FEATURE_NAMES
            .iter()
            .map(|name| {
                cats_obs::FeatureReference::new(
                    *name,
                    (0..64).map(|i| i as f64 / 64.0).collect::<Vec<_>>(),
                )
            })
            .collect();
        let monitor =
            Arc::new(cats_obs::DriftMonitor::new(references, cats_obs::DriftConfig::default()));
        let batcher =
            Batcher::new_with_drift(slot(), BatchConfig::default(), Some(monitor.clone()));
        let rx = batcher.submit(vec![req(1, true), req(2, false), req(3, true)]).unwrap();
        let scored = scored(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        let classified = scored.verdicts.iter().filter(|v| v.filter == "classified").count();
        assert!(classified > 0, "test corpus should classify at least one item");
        assert_eq!(
            monitor.rows_seen(),
            classified,
            "one observed row per classified item, none for filtered items"
        );
    }
}
