//! The hot-swappable model slot and its file watcher.
//!
//! The slot is a hand-rolled `ArcSwap`: a `Mutex<Arc<VersionedModel>>`
//! where the lock is held only for the duration of a pointer clone or
//! store — never across scoring. Readers take a cheap [`ModelSlot::load`]
//! and then own an immutable, fully-constructed model for as long as
//! they need it; a concurrent [`ModelSlot::swap`] publishes a *new* Arc
//! and cannot mutate anything a reader already holds. That is the whole
//! no-torn-reads argument: a request either sees the old model or the
//! new one, version stamp and weights together, never a mix.
//!
//! [`ModelWatcher`] closes the deployment loop from the paper's §VI:
//! `cats-cli train` writes a snapshot, the watcher notices the content
//! change (length + CRC32 — same-size rewrites and coarse-mtime
//! filesystems can fool a metadata fingerprint), parses it off the
//! serving path, and swaps it in. A snapshot that fails its checksum or
//! parse (torn rewrite, truncation, newer format) is counted and
//! skipped — the server keeps answering from the old model — and each
//! successfully swapped snapshot can be mirrored to a *last-good* copy
//! so a restart survives a corrupt primary file (DESIGN.md §10).

use cats_core::{CatsPipeline, PipelineSnapshot};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A pipeline plus the slot version that published it.
pub struct VersionedModel {
    /// Monotonic slot version, starting at 1.
    pub version: u64,
    /// The trained pipeline.
    pub pipeline: CatsPipeline,
}

/// Atomically swappable model reference shared by every serving thread.
///
/// The slot keeps **two** generations: the current model and the one it
/// displaced. During a cluster rolling swap a router pins every request
/// to one version; a shard that has already advanced can still serve
/// requests pinned to the old version from the `previous` slot, so the
/// swap never forces a mixed-version response (see `router.rs`).
pub struct ModelSlot {
    current: Mutex<Arc<VersionedModel>>,
    previous: Mutex<Option<Arc<VersionedModel>>>,
    version: AtomicU64,
}

impl ModelSlot {
    /// Publishes `pipeline` as version 1.
    pub fn new(pipeline: CatsPipeline) -> Self {
        cats_obs::gauge("cats.serve.model.version").set(1.0);
        Self {
            current: Mutex::new(Arc::new(VersionedModel { version: 1, pipeline })),
            previous: Mutex::new(None),
            version: AtomicU64::new(1),
        }
    }

    /// The current model. The returned Arc stays valid (and immutable)
    /// across any number of concurrent swaps.
    pub fn load(&self) -> Arc<VersionedModel> {
        cats_obs::lock_recover(&self.current, "cats.serve.model.slot").clone()
    }

    /// The model published as `version`, if it is still one of the two
    /// retained generations (current or the one before it).
    pub fn load_version(&self, version: u64) -> Option<Arc<VersionedModel>> {
        let cur = self.load();
        if cur.version == version {
            return Some(cur);
        }
        cats_obs::lock_recover(&self.previous, "cats.serve.model.slot.prev")
            .clone()
            .filter(|p| p.version == version)
    }

    /// Atomically replaces the model, returning the new version.
    /// In-flight readers keep the Arc they already loaded; the displaced
    /// model stays resolvable through [`ModelSlot::load_version`].
    pub fn swap(&self, pipeline: CatsPipeline) -> u64 {
        let version = self.version.fetch_add(1, Ordering::Relaxed) + 1;
        self.publish(pipeline, version)
    }

    /// [`ModelSlot::swap`] with a caller-chosen version tag. Cluster
    /// rolling swaps use this so every shard lands on the *same* number
    /// for the same artifact; tags must be monotonically increasing
    /// (the router's coordinator guarantees it).
    pub fn swap_tagged(&self, pipeline: CatsPipeline, version: u64) -> u64 {
        self.publish(pipeline, version)
    }

    fn publish(&self, pipeline: CatsPipeline, version: u64) -> u64 {
        let next = Arc::new(VersionedModel { version, pipeline });
        let mut cur = cats_obs::lock_recover(&self.current, "cats.serve.model.slot");
        let old = std::mem::replace(&mut *cur, next);
        *cats_obs::lock_recover(&self.previous, "cats.serve.model.slot.prev") = Some(old);
        drop(cur);
        self.version.fetch_max(version, Ordering::Relaxed);
        cats_obs::counter("cats.serve.model.swaps").inc();
        cats_obs::gauge("cats.serve.model.version").set(version as f64);
        version
    }

    /// The latest published version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }
}

/// Restores a pipeline from a snapshot file (the `cats-cli train`
/// output format). Binary `CATS-IO2` containers, `CATS-IO1`-framed JSON
/// and legacy raw-JSON snapshots are all accepted — the format is
/// sniffed by magic, and checksums (per-section CRC32s for IO2, the
/// frame CRC for IO1) are verified before parsing. Either way the
/// snapshot format version is validated before the pipeline is rebuilt.
pub fn load_pipeline_file(path: &Path) -> Result<CatsPipeline, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_pipeline_bytes(&bytes, path)
}

fn parse_pipeline_bytes(bytes: &[u8], path: &Path) -> Result<CatsPipeline, String> {
    // A CATS-IO1 frame is verified and stripped here; IO2 containers and
    // bare JSON pass through verbatim. `from_bytes` then sniffs by magic,
    // so one code path serves `.cats` binary and `.json` snapshots alike.
    let payload = cats_io::verify_checksummed(bytes, &path.display().to_string())
        .map_err(|e| e.to_string())?;
    let snapshot = PipelineSnapshot::from_bytes(&payload).map_err(|e| e.to_string())?;
    Ok(CatsPipeline::restore(snapshot))
}

/// Content fingerprint (length, CRC32) used to detect snapshot
/// rewrites. Unlike the `(mtime, len)` metadata fingerprint this
/// replaced, it cannot be fooled by a same-size rewrite landing within
/// the filesystem's mtime granularity.
fn fingerprint(bytes: &[u8]) -> (u64, u32) {
    (bytes.len() as u64, cats_io::crc32(bytes))
}

fn read_fingerprint(path: &Path) -> Option<(u64, u32)> {
    std::fs::read(path).ok().map(|b| fingerprint(&b))
}

/// Polls a snapshot file and hot-swaps it into a [`ModelSlot`].
pub struct ModelWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ModelWatcher {
    /// Starts watching `path`, re-checking every `interval`. The file's
    /// *current* contents are assumed to be what the slot already holds;
    /// only subsequent rewrites trigger a reload.
    pub fn spawn(slot: Arc<ModelSlot>, path: PathBuf, interval: Duration) -> Self {
        Self::spawn_with_checkpoint(slot, path, interval, None)
    }

    /// [`ModelWatcher::spawn`] plus a *last-good* mirror: whenever a
    /// rewrite of `path` passes checksum + parse validation and is
    /// swapped in, its exact bytes are atomically copied to
    /// `last_good`. A later restart that finds `path` torn or corrupt
    /// can fall back to the mirror (see `cats-cli serve
    /// --checkpoint-dir`), so a crash mid-rewrite never strands the
    /// service without a loadable model.
    pub fn spawn_with_checkpoint(
        slot: Arc<ModelSlot>,
        path: PathBuf,
        interval: Duration,
        last_good: Option<PathBuf>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("cats-serve-watch".into())
            .spawn(move || watch_loop(&slot, &path, interval, &stop_flag, last_good.as_deref()))
            .expect("spawn model watcher");
        Self { stop, handle: Some(handle) }
    }

    /// Stops the watcher and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ModelWatcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn watch_loop(
    slot: &ModelSlot,
    path: &Path,
    interval: Duration,
    stop: &AtomicBool,
    last_good: Option<&Path>,
) {
    let reloads = cats_obs::counter("cats.serve.model.reloads");
    let errors = cats_obs::counter("cats.serve.model.reload_errors");
    // Rollback visibility (DESIGN.md §15): reload_errors alone cannot tell
    // "file was garbage" apart from "we kept serving the incumbent", so
    // every rejected rewrite also counts as a rollback to the old model.
    let rollbacks = cats_obs::counter("cats.serve.model.watcher_rollbacks");
    let mut last = read_fingerprint(path);
    // Seed the last-good mirror from the startup snapshot so a restart
    // has a fallback even if the primary is never rewritten again.
    if let (Some(lg), Ok(bytes)) = (last_good, std::fs::read(path)) {
        if parse_pipeline_bytes(&bytes, path).is_ok() {
            if let Err(e) = cats_io::atomic_write(lg, &bytes) {
                eprintln!("cats-serve: last-good mirror write failed: {e}");
            }
        }
    }
    // Sleep in small slices so stop() returns promptly even with a
    // coarse polling interval.
    let slice =
        Duration::from_millis(interval.as_millis().min(20) as u64).max(Duration::from_millis(1));
    let mut slept = Duration::ZERO;
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(slice);
        slept += slice;
        if slept < interval {
            continue;
        }
        slept = Duration::ZERO;
        let Ok(bytes) = std::fs::read(path) else {
            // File momentarily missing (e.g. non-atomic replace in
            // flight): keep the current model and retry next tick.
            continue;
        };
        let now = Some(fingerprint(&bytes));
        if now == last {
            continue;
        }
        match parse_pipeline_bytes(&bytes, path) {
            Ok(pipeline) => {
                let v = slot.swap(pipeline);
                reloads.inc();
                eprintln!("cats-serve: hot-swapped model from {} (v{v})", path.display());
                last = now;
                if let Some(lg) = last_good {
                    if let Err(e) = cats_io::atomic_write(lg, &bytes) {
                        eprintln!("cats-serve: last-good mirror write failed: {e}");
                    }
                }
            }
            Err(e) => {
                // Possibly a half-written file: keep the old model and
                // remember the *bad* content's fingerprint — a write
                // completing cannot keep the same (len, crc32), so the
                // retry fires on the very next content change, while
                // unchanged garbage is not re-parsed (and re-counted)
                // every tick.
                errors.inc();
                rollbacks.inc();
                eprintln!("cats-serve: model reload failed, keeping current model: {e}");
                last = now;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn slot_versions_are_monotonic_and_readers_keep_their_arc() {
        let pipeline = testutil::trained(0.0);
        let json = testutil::snapshot_json(&pipeline);
        let slot = ModelSlot::new(pipeline);
        assert_eq!(slot.version(), 1);
        let before = slot.load();
        let v2 = slot.swap(testutil::restore(&json, 0.2));
        assert_eq!(v2, 2);
        assert_eq!(slot.version(), 2);
        // The pre-swap reader still holds a complete version-1 model.
        assert_eq!(before.version, 1);
        let items = vec![testutil::fraud_item(7)];
        let old_reports = before.pipeline.detect(&items, &[50]);
        assert_eq!(old_reports.len(), 1);
        assert_eq!(slot.load().version, 2);
    }

    #[test]
    fn concurrent_loads_never_see_a_torn_model() {
        // Swap in a tight loop while readers score; every reader must
        // get a report consistent with the version stamp it loaded.
        let pipeline = testutil::trained(0.0);
        let json = testutil::snapshot_json(&pipeline);
        let slot = Arc::new(ModelSlot::new(pipeline));
        let item = testutil::fraud_item(3);
        let expect_v1 = slot.load().pipeline.detect(&[item.clone()], &[50])[0].score;
        let swapper = {
            let slot = slot.clone();
            let json = json.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    slot.swap(testutil::restore(&json, 0.3));
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let mut v1_seen = 0;
        for _ in 0..200 {
            let model = slot.load();
            let got = model.pipeline.detect(&[item.clone()], &[50])[0].score;
            // The restored snapshot scores identically to the original
            // (deterministic training), so ANY coherent model — old or
            // new — produces this exact score. A torn read would not.
            assert_eq!(got.to_bits(), expect_v1.to_bits(), "model v{} torn?", model.version);
            if model.version == 1 {
                v1_seen += 1;
            }
        }
        swapper.join().unwrap();
        assert!(v1_seen > 0 || slot.version() > 1);
        assert_eq!(slot.version(), 21, "20 swaps on top of v1");
    }

    #[test]
    fn watcher_reloads_on_rewrite_and_survives_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cats_serve_watch_{}.json", std::process::id()));
        let pipeline = testutil::trained(0.0);
        let json = testutil::snapshot_json(&pipeline);
        std::fs::write(&path, &json).unwrap();

        let slot = Arc::new(ModelSlot::new(pipeline));
        let rollbacks = cats_obs::counter("cats.serve.model.watcher_rollbacks");
        let rollbacks_before = rollbacks.get();
        let watcher = ModelWatcher::spawn(slot.clone(), path.clone(), Duration::from_millis(10));

        // Garbage rewrite: must NOT swap, must keep serving v1.
        std::thread::sleep(Duration::from_millis(30));
        std::fs::write(&path, "{not a snapshot").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while std::time::Instant::now() < deadline && slot.version() != 1 {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(slot.version(), 1, "garbage must not be swapped in");
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while std::time::Instant::now() < deadline && rollbacks.get() == rollbacks_before {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            rollbacks.get() > rollbacks_before,
            "rejected garbage must be visible as a watcher rollback"
        );

        // Valid rewrite: must swap (the garbage attempt left `last`
        // stale, so the very next poll retries).
        std::fs::write(&path, &json).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline && slot.version() < 2 {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(slot.version() >= 2, "valid rewrite must hot-swap");

        watcher.stop();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn two_generations_stay_resolvable_across_a_tagged_swap() {
        let pipeline = testutil::trained(0.0);
        let json = testutil::snapshot_json(&pipeline);
        let slot = ModelSlot::new(pipeline);
        assert!(slot.load_version(1).is_some(), "v1 current");
        assert!(slot.load_version(2).is_none(), "v2 not published yet");
        assert_eq!(slot.swap_tagged(testutil::restore(&json, 0.1), 7), 7);
        assert_eq!(slot.version(), 7, "tagged swap advances the version");
        assert_eq!(slot.load().version, 7);
        assert_eq!(slot.load_version(1).unwrap().version, 1, "previous retained");
        // A second swap evicts v1: only the last two generations live.
        slot.swap_tagged(testutil::restore(&json, 0.2), 9);
        assert!(slot.load_version(1).is_none(), "two-deep history only");
        assert!(slot.load_version(7).is_some());
        assert!(slot.load_version(9).is_some());
    }

    #[test]
    fn watcher_hot_swaps_mixed_json_and_io2_formats() {
        // The same snapshot file is rewritten across all three on-disk
        // formats — bare JSON at startup, then a binary CATS-IO2
        // container, then CATS-IO1-framed JSON. Each rewrite must swap
        // (the (len, crc32) fingerprint is format-agnostic), and every
        // loaded generation must score bit-identically.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cats_serve_mixed_{}.snap", std::process::id()));
        let pipeline = testutil::trained(0.0);
        let json = testutil::snapshot_json(&pipeline);
        let io2 = PipelineSnapshot::from_json(&json).unwrap().to_io2_bytes().unwrap();
        assert!(cats_io::io2::is_io2(&io2));
        std::fs::write(&path, &json).unwrap();

        let item = testutil::fraud_item(9);
        let expect = pipeline.detect(&[item.clone()], &[50])[0].score;
        let slot = Arc::new(ModelSlot::new(pipeline));
        let watcher = ModelWatcher::spawn(slot.clone(), path.clone(), Duration::from_millis(10));

        let wait_for = |v: u64| {
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while std::time::Instant::now() < deadline && slot.version() < v {
                std::thread::sleep(Duration::from_millis(5));
            }
            assert!(slot.version() >= v, "expected swap to v{v}, at v{}", slot.version());
        };

        cats_io::atomic_write(&path, &io2).unwrap();
        wait_for(2);
        let got = slot.load().pipeline.detect(&[item.clone()], &[50])[0].score;
        assert_eq!(got.to_bits(), expect.to_bits(), "IO2-loaded model must score identically");

        cats_io::write_checksummed(&path, json.as_bytes()).unwrap();
        wait_for(3);
        let got = slot.load().pipeline.detect(&[item.clone()], &[50])[0].score;
        assert_eq!(got.to_bits(), expect.to_bits(), "IO1-framed JSON must score identically");

        watcher.stop();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn content_fingerprint_catches_same_size_rewrites() {
        // An (mtime, len) fingerprint misses a same-length rewrite that
        // lands within the filesystem's mtime granularity; the content
        // fingerprint cannot.
        let a = fingerprint(b"model-bytes-A");
        let b = fingerprint(b"model-bytes-B");
        assert_eq!(a.0, b.0, "same length");
        assert_ne!(a.1, b.1, "different checksum");
    }

    #[test]
    fn watcher_mirrors_last_good_and_rejects_torn_checksummed_rewrites() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let path = dir.join(format!("cats_serve_lg_{pid}.snap"));
        let mirror = dir.join(format!("cats_serve_lg_{pid}.last_good"));
        let _ = std::fs::remove_file(&mirror);
        let pipeline = testutil::trained(0.0);
        let json = testutil::snapshot_json(&pipeline);
        cats_io::write_checksummed(&path, json.as_bytes()).unwrap();

        let slot = Arc::new(ModelSlot::new(pipeline));
        let watcher = ModelWatcher::spawn_with_checkpoint(
            slot.clone(),
            path.clone(),
            Duration::from_millis(10),
            Some(mirror.clone()),
        );

        // The startup snapshot is mirrored even before any rewrite.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline && !mirror.exists() {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            load_pipeline_file(&mirror).is_ok(),
            "mirror must hold a loadable copy of the startup snapshot"
        );

        // A torn rewrite (checksummed file cut mid-payload) must fail
        // verification and must NOT be swapped in.
        let rollbacks = cats_obs::counter("cats.serve.model.watcher_rollbacks");
        let rollbacks_before = rollbacks.get();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(slot.version(), 1, "torn rewrite must not be swapped in");
        assert!(load_pipeline_file(&mirror).is_ok(), "mirror untouched by the torn rewrite");
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while std::time::Instant::now() < deadline && rollbacks.get() == rollbacks_before {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            rollbacks.get() > rollbacks_before,
            "torn rewrite must be visible as a watcher rollback"
        );

        // Completing the rewrite with valid checksummed bytes swaps.
        cats_io::write_checksummed(&path, json.as_bytes()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline && slot.version() < 2 {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(slot.version() >= 2, "valid checksummed rewrite must hot-swap");

        watcher.stop();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&mirror);
    }
}
