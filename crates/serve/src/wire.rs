//! JSON wire format for the scoring API.
//!
//! `POST /v1/score` accepts either a bare array of [`ScoreItem`]s or a
//! `{"items": [...]}` wrapper (the wrapper leaves room for per-request
//! options later without breaking clients). Responses carry the model
//! version that scored the batch, so clients — and the hot-swap tests —
//! can verify that every verdict in a response came from one coherent
//! model.

use cats_core::FilterDecision;
use serde::{Deserialize, Serialize};

/// One item to score: the public data CATS consumes (§II-A).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ScoreItem {
    /// Platform item id, echoed back in the verdict.
    pub item_id: u64,
    /// Public sales volume (stage-1 filter input).
    pub sales_volume: u64,
    /// Raw comment texts; segmented server-side.
    pub comments: Vec<String>,
}

/// One verdict on the wire (mirrors the CLI's JSONL report line).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreVerdict {
    /// Platform item id from the request.
    pub item_id: u64,
    /// Stage-1 outcome (`classified`, `filtered_low_sales`,
    /// `filtered_no_evidence`, `quarantined`).
    pub filter: String,
    /// Fraud score in \[0,1\]; 0 for filtered items.
    pub score: f64,
    /// Final verdict.
    pub is_fraud: bool,
}

/// `POST /v1/score` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreResponse {
    /// Version of the model slot that scored this whole batch — one
    /// number because the batcher loads the model exactly once per
    /// batch (no request can straddle a swap).
    pub model_version: u64,
    /// One verdict per requested item, in request order.
    pub verdicts: Vec<ScoreVerdict>,
}

/// `GET /healthz` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    /// `"ok"` while accepting, `"draining"` once shutdown has begun.
    pub status: String,
    /// Current model slot version.
    pub model_version: u64,
    /// Requests waiting in the batch queue right now.
    pub queue_depth: u64,
    /// True when the drift monitor holds a `warning`/`critical` verdict:
    /// the server still answers, but scores come from a model whose
    /// training distribution no longer matches live traffic. Defaults
    /// keep pre-drift peers parseable.
    #[serde(default)]
    pub degraded: bool,
    /// Drift verdict string (`stable`/`warning`/`critical`), `"off"`
    /// when the server runs without a monitor, `""` from pre-drift
    /// peers.
    #[serde(default)]
    pub drift: String,
}

/// Error body for non-2xx responses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable reason.
    pub error: String,
}

/// Serde mirror of [`cats_obs::Snapshot`] for `GET /metrics.json`.
///
/// `cats-obs` is deliberately dependency-free, so it cannot derive
/// serde itself; shards export this mirror and the router converts back
/// to a real [`cats_obs::Snapshot`] to drive [`cats_obs::Snapshot::merge`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireSnapshot {
    pub counters: std::collections::BTreeMap<String, u64>,
    pub gauges: std::collections::BTreeMap<String, f64>,
    #[serde(default)]
    pub gauges_at: std::collections::BTreeMap<String, u64>,
    #[serde(default)]
    pub taken_at_micros: u64,
    pub hists: std::collections::BTreeMap<String, WireHist>,
    pub stages: std::collections::BTreeMap<String, WireStage>,
}

/// Serde mirror of [`cats_obs::HistSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireHist {
    pub bounds: Vec<f64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

/// Serde mirror of [`cats_obs::StageSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireStage {
    pub count: u64,
    pub items: u64,
    pub total_micros: u64,
    pub self_micros: u64,
    pub hist: WireHist,
}

impl From<&cats_obs::HistSnapshot> for WireHist {
    fn from(h: &cats_obs::HistSnapshot) -> Self {
        WireHist {
            bounds: h.bounds.clone(),
            buckets: h.buckets.clone(),
            count: h.count,
            sum: h.sum,
        }
    }
}

impl WireHist {
    fn into_hist(self) -> cats_obs::HistSnapshot {
        cats_obs::HistSnapshot {
            bounds: self.bounds,
            buckets: self.buckets,
            count: self.count,
            sum: self.sum,
        }
    }
}

impl From<&cats_obs::Snapshot> for WireSnapshot {
    fn from(s: &cats_obs::Snapshot) -> Self {
        WireSnapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            gauges_at: s.gauges_at.clone(),
            taken_at_micros: s.taken_at_micros,
            hists: s.hists.iter().map(|(k, h)| (k.clone(), h.into())).collect(),
            stages: s
                .stages
                .iter()
                .map(|(k, st)| {
                    (
                        k.clone(),
                        WireStage {
                            count: st.count,
                            items: st.items,
                            total_micros: st.total_micros,
                            self_micros: st.self_micros,
                            hist: (&st.hist).into(),
                        },
                    )
                })
                .collect(),
        }
    }
}

impl WireSnapshot {
    /// Rebuilds the real [`cats_obs::Snapshot`] this mirror was made
    /// from, so the router can [`cats_obs::Snapshot::merge`] it.
    pub fn into_snapshot(self) -> cats_obs::Snapshot {
        cats_obs::Snapshot {
            counters: self.counters,
            gauges: self.gauges,
            gauges_at: self.gauges_at,
            taken_at_micros: self.taken_at_micros,
            hists: self.hists.into_iter().map(|(k, h)| (k, h.into_hist())).collect(),
            stages: self
                .stages
                .into_iter()
                .map(|(k, st)| {
                    (
                        k,
                        cats_obs::StageSnapshot {
                            count: st.count,
                            items: st.items,
                            total_micros: st.total_micros,
                            self_micros: st.self_micros,
                            hist: st.hist.into_hist(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Stable wire spelling of a stage-1 decision.
pub fn filter_str(filter: FilterDecision) -> &'static str {
    match filter {
        FilterDecision::Classified => "classified",
        FilterDecision::FilteredLowSales => "filtered_low_sales",
        FilterDecision::FilteredNoPositiveEvidence => "filtered_no_evidence",
        FilterDecision::Quarantined => "quarantined",
    }
}

/// `POST /v1/score` wrapped request body. `pin_version` is how the
/// cluster router keeps one logical request on one model version across
/// shards and retries: a pinned request must be scored by exactly that
/// version (the shard answers 409 when it no longer holds it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreRequest {
    pub items: Vec<ScoreItem>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pin_version: Option<u64>,
}

/// Parses a score request body — bare array or `{"items": [...]}` —
/// returning the items plus the optional model-version pin.
pub fn parse_score_request(body: &str) -> Result<(Vec<ScoreItem>, Option<u64>), String> {
    serde_json::from_str::<Vec<ScoreItem>>(body)
        .map(|items| (items, None))
        .or_else(|_| serde_json::from_str::<ScoreRequest>(body).map(|w| (w.items, w.pin_version)))
        .map_err(|e| format!("body: {e}"))
}

/// One comment event for `POST /v1/ingest` — the streaming mirror of
/// [`cats_stream::CommentEvent`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct IngestEvent {
    /// Event time on the stream clock (virtual ms).
    pub at_ms: u64,
    /// Target item.
    pub item_id: u64,
    /// Commenting user.
    pub user_id: u64,
    /// The item's public sales volume (stage-1 filter input).
    pub sales_volume: u64,
    /// Raw comment text; segmented server-side.
    pub text: String,
}

/// `POST /v1/ingest` wrapped request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestRequest {
    pub events: Vec<IngestEvent>,
}

/// Parses an ingest request body — bare array or `{"events": [...]}`.
pub fn parse_ingest_request(body: &str) -> Result<Vec<IngestEvent>, String> {
    serde_json::from_str::<Vec<IngestEvent>>(body)
        .or_else(|_| serde_json::from_str::<IngestRequest>(body).map(|w| w.events))
        .map_err(|e| format!("body: {e}"))
}

/// `POST /v1/ingest` response body. `verdicts` is non-empty only when
/// the events pushed the stream clock over a flush boundary; it then
/// carries one incremental [`cats_core::StreamVerdict`] per item
/// touched since the previous flush (ascending item id).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestResponse {
    /// Version of the model that scored `verdicts` (the current slot
    /// version when no flush happened).
    pub model_version: u64,
    /// Events recorded into window state.
    pub accepted: u64,
    /// Events older than the long window could absorb, dropped.
    pub late_dropped: u64,
    /// The stream clock after this request (highest event time seen).
    pub watermark_ms: u64,
    /// Incremental verdicts, empty between flush boundaries.
    pub verdicts: Vec<cats_core::StreamVerdict>,
}

/// `POST /admin/load` request body: install the snapshot file at `path`
/// as model version `version`. Used by the router's rolling-swap
/// coordinator and by operators doing a manual staged deploy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdminLoadRequest {
    /// Snapshot file path, readable by the serving process.
    pub path: String,
    /// Version tag to publish it as (router-assigned, monotonic).
    pub version: u64,
}

/// `POST /admin/load` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdminLoadResponse {
    /// The version now being served.
    pub version: u64,
}

/// One shard's row in the router's `/healthz` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardHealthInfo {
    /// Shard id (position on the hash ring).
    pub id: usize,
    /// Loopback address the shard listens on.
    pub addr: String,
    /// `"live"` or `"ejected"`.
    pub state: String,
    /// Model version last observed by the health prober.
    pub model_version: u64,
}

/// Router `GET /healthz` response: a superset of the single-process
/// [`HealthResponse`] (same leading fields, so [`crate::ScoreClient`]
/// parses either) plus the cluster view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterHealthResponse {
    /// `"ok"` while ≥1 shard is live, else `"degraded"`.
    pub status: String,
    /// Cluster-coordinated model version.
    pub model_version: u64,
    /// Queue depth summed over live shards at the last probe.
    pub queue_depth: u64,
    /// Same as `model_version` (explicit name for cluster tooling).
    pub cluster_version: u64,
    /// Number of shards currently in the `live` state.
    pub live_shards: usize,
    /// Per-shard detail.
    pub shards: Vec<ShardHealthInfo>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_request_shapes_parse() {
        let bare = r#"[{"item_id":1,"sales_volume":9,"comments":["hao"]}]"#;
        let wrapped = r#"{"items":[{"item_id":1,"sales_volume":9,"comments":["hao"]}]}"#;
        let (bare_items, bare_pin) = parse_score_request(bare).unwrap();
        let (wrapped_items, wrapped_pin) = parse_score_request(wrapped).unwrap();
        assert_eq!(bare_items, wrapped_items);
        assert_eq!(bare_items[0].item_id, 1);
        assert_eq!((bare_pin, wrapped_pin), (None, None), "no pin unless asked");
        assert!(parse_score_request("{oops").unwrap_err().starts_with("body:"));
        assert!(parse_score_request("[]").unwrap().0.is_empty(), "empty batch is legal");
    }

    #[test]
    fn ingest_request_shapes_parse() {
        let bare = r#"[{"at_ms":5,"item_id":1,"user_id":2,"sales_volume":9,"text":"hao"}]"#;
        let wrapped = format!(r#"{{"events":{bare}}}"#);
        let a = parse_ingest_request(bare).unwrap();
        let b = parse_ingest_request(&wrapped).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0].at_ms, 5);
        assert_eq!(a[0].item_id, 1);
        assert!(parse_ingest_request("{nope").unwrap_err().starts_with("body:"));
        assert!(parse_ingest_request("[]").unwrap().is_empty(), "empty batch is legal");
    }

    #[test]
    fn ingest_response_roundtrips() {
        let resp = IngestResponse {
            model_version: 2,
            accepted: 3,
            late_dropped: 1,
            watermark_ms: 60_000,
            verdicts: vec![cats_core::StreamVerdict {
                item_id: 7,
                at_ms: 60_000,
                window_comments: 4,
                cats_score: 0.25,
                velocity_risk: 0.5,
                fused_score: 0.4375,
                is_fraud: false,
            }],
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: IngestResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.accepted, 3);
        assert_eq!(back.verdicts[0].fused_score, 0.4375);
    }

    #[test]
    fn pinned_requests_carry_their_version() {
        let pinned = r#"{"items":[{"item_id":1,"sales_volume":9,"comments":[]}],"pin_version":4}"#;
        let (items, pin) = parse_score_request(pinned).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(pin, Some(4));
        // The client-side serializer omits the pin when unset, so plain
        // clients keep producing the PR-5 wire shape byte-for-byte.
        let req = ScoreRequest { items, pin_version: None };
        assert!(!serde_json::to_string(&req).unwrap().contains("pin_version"));
        let req = ScoreRequest { pin_version: Some(9), ..req };
        assert!(serde_json::to_string(&req).unwrap().contains("\"pin_version\":9"));
    }

    #[test]
    fn wire_snapshot_roundtrips_through_json() {
        let r = cats_obs::Registry::new();
        r.counter("c").add(3);
        r.gauge("g").set(1.5);
        r.histogram("h").record(42.0);
        let snap = r.snapshot();
        let wire: WireSnapshot = (&snap).into();
        let json = serde_json::to_string(&wire).unwrap();
        let back: WireSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.into_snapshot(), snap, "lossless mirror");
    }

    #[test]
    fn filter_spelling_matches_the_cli_report_lines() {
        assert_eq!(filter_str(FilterDecision::Classified), "classified");
        assert_eq!(filter_str(FilterDecision::FilteredLowSales), "filtered_low_sales");
        assert_eq!(filter_str(FilterDecision::FilteredNoPositiveEvidence), "filtered_no_evidence");
        assert_eq!(filter_str(FilterDecision::Quarantined), "quarantined");
    }

    #[test]
    fn health_response_accepts_pre_drift_bodies() {
        // A router probing a shard built before the drift monitor must
        // still parse its health body; the new fields default.
        let old = r#"{"status":"ok","model_version":3,"queue_depth":2}"#;
        let h: HealthResponse = serde_json::from_str(old).unwrap();
        assert_eq!(h.model_version, 3);
        assert!(!h.degraded);
        assert_eq!(h.drift, "");
        let new = HealthResponse {
            status: "ok".into(),
            model_version: 3,
            queue_depth: 0,
            degraded: true,
            drift: "critical".into(),
        };
        let json = serde_json::to_string(&new).unwrap();
        let back: HealthResponse = serde_json::from_str(&json).unwrap();
        assert!(back.degraded);
        assert_eq!(back.drift, "critical");
    }

    #[test]
    fn score_response_roundtrips() {
        let resp = ScoreResponse {
            model_version: 3,
            verdicts: vec![ScoreVerdict {
                item_id: 7,
                filter: "classified".into(),
                score: 0.875,
                is_fraud: true,
            }],
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: ScoreResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.model_version, 3);
        assert_eq!(back.verdicts[0].score, 0.875);
    }
}
