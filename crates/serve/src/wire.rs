//! JSON wire format for the scoring API.
//!
//! `POST /v1/score` accepts either a bare array of [`ScoreItem`]s or a
//! `{"items": [...]}` wrapper (the wrapper leaves room for per-request
//! options later without breaking clients). Responses carry the model
//! version that scored the batch, so clients — and the hot-swap tests —
//! can verify that every verdict in a response came from one coherent
//! model.

use cats_core::FilterDecision;
use serde::{Deserialize, Serialize};

/// One item to score: the public data CATS consumes (§II-A).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ScoreItem {
    /// Platform item id, echoed back in the verdict.
    pub item_id: u64,
    /// Public sales volume (stage-1 filter input).
    pub sales_volume: u64,
    /// Raw comment texts; segmented server-side.
    pub comments: Vec<String>,
}

/// One verdict on the wire (mirrors the CLI's JSONL report line).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreVerdict {
    /// Platform item id from the request.
    pub item_id: u64,
    /// Stage-1 outcome (`classified`, `filtered_low_sales`,
    /// `filtered_no_evidence`, `quarantined`).
    pub filter: String,
    /// Fraud score in \[0,1\]; 0 for filtered items.
    pub score: f64,
    /// Final verdict.
    pub is_fraud: bool,
}

/// `POST /v1/score` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreResponse {
    /// Version of the model slot that scored this whole batch — one
    /// number because the batcher loads the model exactly once per
    /// batch (no request can straddle a swap).
    pub model_version: u64,
    /// One verdict per requested item, in request order.
    pub verdicts: Vec<ScoreVerdict>,
}

/// `GET /healthz` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    /// `"ok"` while accepting, `"draining"` once shutdown has begun.
    pub status: String,
    /// Current model slot version.
    pub model_version: u64,
    /// Requests waiting in the batch queue right now.
    pub queue_depth: u64,
}

/// Error body for non-2xx responses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable reason.
    pub error: String,
}

/// Stable wire spelling of a stage-1 decision.
pub fn filter_str(filter: FilterDecision) -> &'static str {
    match filter {
        FilterDecision::Classified => "classified",
        FilterDecision::FilteredLowSales => "filtered_low_sales",
        FilterDecision::FilteredNoPositiveEvidence => "filtered_no_evidence",
        FilterDecision::Quarantined => "quarantined",
    }
}

/// Parses a score request body: bare array or `{"items": [...]}`.
pub fn parse_score_request(body: &str) -> Result<Vec<ScoreItem>, String> {
    #[derive(Deserialize)]
    struct Wrapped {
        items: Vec<ScoreItem>,
    }
    serde_json::from_str::<Vec<ScoreItem>>(body)
        .or_else(|_| serde_json::from_str::<Wrapped>(body).map(|w| w.items))
        .map_err(|e| format!("body: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_request_shapes_parse() {
        let bare = r#"[{"item_id":1,"sales_volume":9,"comments":["hao"]}]"#;
        let wrapped = r#"{"items":[{"item_id":1,"sales_volume":9,"comments":["hao"]}]}"#;
        assert_eq!(parse_score_request(bare).unwrap(), parse_score_request(wrapped).unwrap());
        assert_eq!(parse_score_request(bare).unwrap()[0].item_id, 1);
        assert!(parse_score_request("{oops").unwrap_err().starts_with("body:"));
        assert!(parse_score_request("[]").unwrap().is_empty(), "empty batch is legal");
    }

    #[test]
    fn filter_spelling_matches_the_cli_report_lines() {
        assert_eq!(filter_str(FilterDecision::Classified), "classified");
        assert_eq!(filter_str(FilterDecision::FilteredLowSales), "filtered_low_sales");
        assert_eq!(filter_str(FilterDecision::FilteredNoPositiveEvidence), "filtered_no_evidence");
        assert_eq!(filter_str(FilterDecision::Quarantined), "quarantined");
    }

    #[test]
    fn score_response_roundtrips() {
        let resp = ScoreResponse {
            model_version: 3,
            verdicts: vec![ScoreVerdict {
                item_id: 7,
                filter: "classified".into(),
                score: 0.875,
                is_fraud: true,
            }],
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: ScoreResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.model_version, 3);
        assert_eq!(back.verdicts[0].score, 0.875);
    }
}
