//! Shard-process plumbing: the in-process shard server (child side) and
//! the [`ShardProcess`] handle the router uses to spawn, watch, kill
//! and restart shard child processes over loopback TCP.
//!
//! A shard is an ordinary [`crate::Server`] wrapped in two cluster
//! affordances:
//!
//! * **Readiness announcement** — the child prints
//!   `CATS-SHARD-READY <addr>` on stdout once its socket is bound, so
//!   the parent learns the real address (port 0 binds) without racing
//!   the bind.
//! * **Bind retry** — a shard restarted onto its old address tolerates
//!   `EADDRINUSE` for a grace window, because the killed predecessor's
//!   socket may linger briefly; same-port restart is what lets the hash
//!   ring keep its slot stable across a crash.
//!
//! The parent side spawns the child with `std::process::Command`, reads
//! the ready line off piped stdout (with a timeout), and can SIGKILL it
//! mid-request — that is exactly the chaos `exp_cluster` injects.

use crate::http::{ServeConfig, Server};
use crate::model::{load_pipeline_file, ModelSlot};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stdout prefix announcing a bound shard: `CATS-SHARD-READY <addr>`.
pub const READY_PREFIX: &str = "CATS-SHARD-READY ";

/// Child-side shard configuration.
#[derive(Debug, Clone)]
pub struct ShardOpts {
    /// Bind address (port 0 lets the OS pick; the ready line reports it).
    pub addr: String,
    /// Model snapshot file to serve at startup (as version 1).
    pub model_path: PathBuf,
    /// Batch workers per shard.
    pub workers: usize,
    /// Feature-extraction threads per shard; 0 = auto. Cluster runs pin
    /// this to a slice of the machine so N shards don't oversubscribe
    /// N× the cores.
    pub score_threads: usize,
}

/// Starts an in-process shard server: loads the model, pins its
/// parallelism, binds (retrying `EADDRINUSE` for ~10 s to absorb
/// same-port restarts) and returns the running server.
pub fn start_shard(opts: &ShardOpts) -> Result<Server, String> {
    let mut pipeline = load_pipeline_file(&opts.model_path)?;
    if opts.score_threads > 0 {
        pipeline
            .detector_mut()
            .set_parallelism(cats_par::Parallelism::with_threads(opts.score_threads));
    }
    let slot = Arc::new(ModelSlot::new(pipeline));
    let config = ServeConfig {
        addr: opts.addr.clone(),
        batch: crate::batcher::BatchConfig {
            workers: opts.workers.max(1),
            ..crate::batcher::BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Server::start(slot.clone(), config.clone()) {
            Ok(server) => return Ok(server),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                // The killed predecessor's socket is still lingering;
                // its FIN/cleanup completes shortly.
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(format!("bind {}: {e}", opts.addr)),
        }
    }
}

/// Prints the readiness line the parent waits for. Separated from
/// [`start_shard`] so in-process tests can skip it.
pub fn announce_ready(server: &Server) {
    println!("{READY_PREFIX}{}", server.addr());
    // The parent reads stdout through a pipe; make sure the line moves.
    use std::io::Write;
    let _ = std::io::stdout().flush();
}

/// Parent-side handle on one spawned shard child process.
pub struct ShardProcess {
    /// Shard id — its slot on the hash ring.
    pub id: usize,
    /// Address the child announced.
    pub addr: String,
    child: Child,
}

impl ShardProcess {
    /// Spawns `exe` with `args` (which must put the child into shard
    /// mode), waits up to `ready_timeout` for the `CATS-SHARD-READY`
    /// line on its stdout, and returns the handle. The child's stdout
    /// keeps streaming to a drain thread afterwards so the pipe never
    /// fills and blocks it.
    pub fn spawn(
        id: usize,
        exe: &std::path::Path,
        args: &[String],
        ready_timeout: Duration,
    ) -> Result<ShardProcess, String> {
        let mut child = Command::new(exe)
            .args(args)
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn shard {id}: {e}"))?;
        let stdout = child.stdout.take().ok_or_else(|| format!("shard {id}: no stdout pipe"))?;
        let (tx, rx) = mpsc::channel();
        std::thread::Builder::new()
            .name(format!("cats-shard-{id}-stdout"))
            .spawn(move || {
                let reader = std::io::BufReader::new(stdout);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if let Some(addr) = line.strip_prefix(READY_PREFIX) {
                        let _ = tx.send(addr.trim().to_string());
                    }
                    // Other shard output is dropped; shards log to
                    // stderr, which stays inherited.
                }
            })
            .map_err(|e| format!("spawn shard {id} stdout drain: {e}"))?;
        match rx.recv_timeout(ready_timeout) {
            Ok(addr) => Ok(ShardProcess { id, addr, child }),
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(format!("shard {id}: no ready line within {ready_timeout:?}"))
            }
        }
    }

    /// SIGKILLs the child (no graceful drain — that is the point: the
    /// cluster must survive exactly this) and reaps it.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// True while the child has not exited.
    pub fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }
}

impl Drop for ShardProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_line_roundtrips_an_addr() {
        let line = format!("{READY_PREFIX}127.0.0.1:4321");
        assert_eq!(line.strip_prefix(READY_PREFIX), Some("127.0.0.1:4321"));
    }

    #[test]
    fn spawn_failure_is_a_typed_error() {
        let err = ShardProcess::spawn(
            0,
            std::path::Path::new("/nonexistent/cats-shard-binary"),
            &[],
            Duration::from_millis(100),
        )
        .err()
        .expect("spawn of a nonexistent binary must fail");
        assert!(err.contains("spawn shard 0"), "{err}");
    }

    #[test]
    fn silent_child_times_out_and_is_reaped() {
        // `sleep` never prints a ready line; spawn must time out and
        // kill it rather than hang.
        let started = Instant::now();
        let err = ShardProcess::spawn(
            1,
            std::path::Path::new("/bin/sleep"),
            &["5".to_string()],
            Duration::from_millis(200),
        )
        .err()
        .expect("silent child must time out");
        assert!(err.contains("no ready line"), "{err}");
        assert!(started.elapsed() < Duration::from_secs(4), "child was not awaited to term");
    }
}
